//! Aggregation pushdown (§3.1) — reference implementations used to validate
//! that the factorized plans equal the naive materialize-then-aggregate
//! plans, including the paper's worked Example 1 / Figure 3.

use crate::compute::{grouped_triples, triple_of, GroupedTriples};
use crate::covar::CovarTriple;
use crate::error::Result;
use mileena_relation::Relation;

/// Factorized evaluation of `γ((R_train ∪ R_u) ...)` — horizontal
/// augmentation: the pushed-down plan is just triple addition
/// (`γ(R ∪ A) = γ(R) + γ(A)`), O(1) in relation size once sketches exist.
pub fn union_pushdown(left: &CovarTriple, right: &CovarTriple) -> Result<CovarTriple> {
    left.add(right)
}

/// Factorized evaluation of `γ(R ⋈_j A)` — vertical augmentation: multiply
/// per-key triples and sum over the key intersection (`γ(γ_j(R) ⋈ γ_j(A))`),
/// O(d) in the number of distinct join keys.
pub fn join_pushdown(left: &GroupedTriples, right: &GroupedTriples) -> Result<CovarTriple> {
    let mut acc = CovarTriple::zero(&[]);
    // Iterate over the smaller side for the usual hash-join asymptotics.
    let (probe, build) = if left.len() <= right.len() { (left, right) } else { (right, left) };
    let flipped = left.len() > right.len();
    for (key, pt) in probe {
        if let Some(bt) = build.get(key) {
            // Keep feature order stable as (left ++ right) regardless of
            // which side we probed, so results are deterministic.
            let prod = if flipped { bt.mul(pt)? } else { pt.mul(bt)? };
            acc = acc.add(&prod)?;
        }
    }
    Ok(acc)
}

/// Naive evaluation used as the oracle in tests and as the slow path for the
/// retrain-based baselines: materialize `(R1 ∪ R2) ⋈_key R3`, then aggregate.
pub fn naive_union_join_triple(
    r1: &Relation,
    r2: &Relation,
    r3: &Relation,
    key: &str,
    columns: &[&str],
) -> Result<CovarTriple> {
    let unioned = r1.union(r2)?;
    let joined = unioned.hash_join(r3, &[key], &[key])?;
    triple_of(&joined, columns)
}

/// Factorized evaluation of the same query:
/// `γ((γ_A(R1) ∪ γ_A(R2)) ⋈_A γ_A(R3))` (the optimized plan of Figure 3).
pub fn factorized_union_join_triple(
    r1: &Relation,
    r2: &Relation,
    r3: &Relation,
    key: &str,
    left_columns: &[&str],
    right_columns: &[&str],
) -> Result<CovarTriple> {
    let g1 = grouped_triples(r1, &[key], left_columns)?;
    let g2 = grouped_triples(r2, &[key], left_columns)?;
    // Union of grouped sketches: add triples key-wise.
    let mut unioned = g1;
    for (k, t) in g2 {
        match unioned.get_mut(&k) {
            Some(existing) => *existing = existing.add(&t)?,
            None => {
                unioned.insert(k, t);
            }
        }
    }
    let g3 = grouped_triples(r3, &[key], right_columns)?;
    join_pushdown(&unioned, &g3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;

    /// The paper's Example 1 / Figure 3 shape: train linear regression on
    /// `(R1 ∪ R2) ⋈_A R3` with D as the feature and C as the target. The
    /// factorized plan must produce exactly the naive plan's statistics.
    #[test]
    fn example1_fig3_pushdown_equals_naive() {
        let r1 = RelationBuilder::new("R1")
            .int_col("A", &[1, 3])
            .float_col("B", &[2.0, 2.0])
            .float_col("C", &[2.0, 3.0])
            .build()
            .unwrap();
        let r2 = RelationBuilder::new("R2")
            .int_col("A", &[2, 3])
            .float_col("B", &[3.0, 4.0])
            .float_col("C", &[4.0, 4.0])
            .build()
            .unwrap();
        let r3 = RelationBuilder::new("R3")
            .int_col("A", &[2, 4, 3])
            .float_col("D", &[2.0, 6.0, 4.0])
            .build()
            .unwrap();

        let naive = naive_union_join_triple(&r1, &r2, &r3, "A", &["C", "D"]).unwrap();
        let fact = factorized_union_join_triple(&r1, &r2, &r3, "A", &["C"], &["D"]).unwrap();
        let fact = fact.align(&naive.feature_names()).unwrap();
        assert!(fact.approx_eq(&naive, 1e-9), "\nfact:  {fact:?}\nnaive: {naive:?}");
        // Join keeps A ∈ {2, 3}; R1∪R2 has rows A=2 (one), A=3 (two).
        assert_eq!(naive.c, 3.0);
    }

    #[test]
    fn union_pushdown_is_o1_triple_add() {
        let r1 = RelationBuilder::new("a").float_col("x", &[1.0, 2.0]).build().unwrap();
        let r2 = RelationBuilder::new("b").float_col("x", &[3.0]).build().unwrap();
        let t1 = triple_of(&r1, &["x"]).unwrap();
        let t2 = triple_of(&r2, &["x"]).unwrap();
        let pushed = union_pushdown(&t1, &t2).unwrap();
        let naive = triple_of(&r1.union(&r2).unwrap(), &["x"]).unwrap();
        assert!(pushed.approx_eq(&naive, 1e-12));
    }

    #[test]
    fn join_pushdown_handles_many_to_many() {
        let left = RelationBuilder::new("L")
            .int_col("k", &[1, 1, 2, 3])
            .float_col("x", &[1.0, 2.0, 3.0, 9.0])
            .build()
            .unwrap();
        let right = RelationBuilder::new("R")
            .int_col("k", &[1, 1, 2, 4])
            .float_col("z", &[5.0, 6.0, 7.0, 8.0])
            .build()
            .unwrap();
        let gl = grouped_triples(&left, &["k"], &["x"]).unwrap();
        let gr = grouped_triples(&right, &["k"], &["z"]).unwrap();
        let pushed = join_pushdown(&gl, &gr).unwrap();
        let naive =
            triple_of(&left.hash_join(&right, &["k"], &["k"]).unwrap(), &["x", "z"]).unwrap();
        let pushed = pushed.align(&naive.feature_names()).unwrap();
        assert!(pushed.approx_eq(&naive, 1e-9), "\n{pushed:?}\n{naive:?}");
        assert_eq!(naive.c, 5.0); // 2*2 + 1*1
    }

    #[test]
    fn join_pushdown_empty_intersection_is_zero() {
        let left =
            RelationBuilder::new("L").int_col("k", &[1]).float_col("x", &[1.0]).build().unwrap();
        let right =
            RelationBuilder::new("R").int_col("k", &[2]).float_col("z", &[5.0]).build().unwrap();
        let gl = grouped_triples(&left, &["k"], &["x"]).unwrap();
        let gr = grouped_triples(&right, &["k"], &["z"]).unwrap();
        let pushed = join_pushdown(&gl, &gr).unwrap();
        assert_eq!(pushed.c, 0.0);
    }
}
