//! The generic [`Semiring`] trait and simple instances.
//!
//! The covariance triple ([`crate::CovarTriple`]) is the production semi-ring;
//! the simple instances here (count, sum) exist because the paper's framework
//! ("semi-rings have been designed for common statistical aggregation
//! functions") is generic, and they give the property-test suite independent
//! witnesses of the algebraic laws.

use serde::{Deserialize, Serialize};

/// A commutative semi-ring `(D, +, ×, 0, 1)`.
///
/// `add` is used by group-by and union; `mul` by join. Implementations must
/// satisfy (checked by property tests in `tests/semiring_laws.rs`):
/// - `(D, +, 0)` is a commutative monoid,
/// - `(D, ×, 1)` is a commutative monoid,
/// - `×` distributes over `+`,
/// - `0` annihilates: `a × 0 = 0`.
pub trait Semiring: Clone + std::fmt::Debug + PartialEq {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Commutative addition (group-by / union).
    fn add(&self, other: &Self) -> Self;
    /// Commutative multiplication (join).
    fn mul(&self, other: &Self) -> Self;
}

/// Natural-number semi-ring: annotation = row multiplicity; expresses COUNT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountSemiring(pub u64);

impl Semiring for CountSemiring {
    fn zero() -> Self {
        CountSemiring(0)
    }
    fn one() -> Self {
        CountSemiring(1)
    }
    fn add(&self, other: &Self) -> Self {
        CountSemiring(self.0 + other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        CountSemiring(self.0 * other.0)
    }
}

/// (count, sum) semi-ring: expresses SUM over joins/unions.
///
/// The count component is required so that multiplication scales sums by the
/// partner's multiplicity: `(c₁,s₁)×(c₂,s₂) = (c₁c₂, c₂s₁ + c₁s₂)` — the
/// 1-feature shadow of the covariance triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SumSemiring {
    /// Row multiplicity.
    pub count: f64,
    /// Sum of the annotated value.
    pub sum: f64,
}

impl SumSemiring {
    /// Annotation of one row holding value `v`.
    pub fn of(v: f64) -> Self {
        SumSemiring { count: 1.0, sum: v }
    }
}

impl Semiring for SumSemiring {
    fn zero() -> Self {
        SumSemiring { count: 0.0, sum: 0.0 }
    }
    fn one() -> Self {
        SumSemiring { count: 1.0, sum: 0.0 }
    }
    fn add(&self, other: &Self) -> Self {
        SumSemiring { count: self.count + other.count, sum: self.sum + other.sum }
    }
    fn mul(&self, other: &Self) -> Self {
        SumSemiring {
            count: self.count * other.count,
            sum: other.count * self.sum + self.count * other.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_expresses_join_cardinality() {
        // 3 rows join 4 rows on one key → 12 rows.
        let a = CountSemiring(3);
        let b = CountSemiring(4);
        assert_eq!(a.mul(&b), CountSemiring(12));
        assert_eq!(a.add(&b), CountSemiring(7));
        assert_eq!(a.mul(&CountSemiring::one()), a);
        assert_eq!(a.mul(&CountSemiring::zero()), CountSemiring::zero());
    }

    #[test]
    fn sum_scales_by_partner_multiplicity() {
        // Group with sum 10 over 2 rows joined to 3 partner rows (sum 0):
        // every left row repeats 3 times → sum 30.
        let left = SumSemiring { count: 2.0, sum: 10.0 };
        let right = SumSemiring { count: 3.0, sum: 0.0 };
        let j = left.mul(&right);
        assert_eq!(j.count, 6.0);
        assert_eq!(j.sum, 30.0);
    }

    #[test]
    fn sum_identities() {
        let a = SumSemiring::of(5.0);
        assert_eq!(a.mul(&SumSemiring::one()), a);
        assert_eq!(a.add(&SumSemiring::zero()), a);
        assert_eq!(a.mul(&SumSemiring::zero()), SumSemiring::zero());
    }
}
