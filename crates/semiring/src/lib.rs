//! Semi-ring aggregation for Mileena (§3.1 of the paper).
//!
//! The annotated relational model maps each tuple to an element of a
//! commutative semi-ring `(D, +, ×, 0, 1)`. Group-by sums annotations within
//! a group, union adds annotations, and join multiplies them — which lets
//! aggregations be *pushed down* through joins and unions instead of
//! materializing the augmented relation.
//!
//! The workhorse is the **covariance-matrix semi-ring** ([`CovarTriple`]):
//! a triple `(c, s, Q)` of count, per-feature sums, and the matrix of
//! pairwise sums of products. It is exactly the sufficient statistic set for
//! linear regression (`XᵀX`, `Xᵀy`, `yᵀy` are sub-blocks), so a model can be
//! trained and evaluated over any join/union combination *without touching
//! the data* — the property Mileena's millisecond-latency search and its
//! Factorized Privacy Mechanism are both built on.
//!
//! # Example: pushdown equals materialization
//! ```
//! use mileena_relation::RelationBuilder;
//! use mileena_semiring::{triple_of, grouped_triples, CovarTriple};
//!
//! let train = RelationBuilder::new("train")
//!     .int_col("k", &[1, 2])
//!     .float_col("y", &[1.0, 2.0])
//!     .build().unwrap();
//! let aug = RelationBuilder::new("aug")
//!     .int_col("k", &[1, 2])
//!     .float_col("z", &[5.0, 7.0])
//!     .build().unwrap();
//!
//! // Pushdown: multiply per-key sketches, then sum.
//! let left = grouped_triples(&train, &["k"], &["y"]).unwrap();
//! let right = grouped_triples(&aug, &["k"], &["z"]).unwrap();
//! let mut total = CovarTriple::zero(&[]);
//! for (key, lt) in &left {
//!     if let Some(rt) = right.get(key) {
//!         total = total.add(&lt.mul(rt).unwrap()).unwrap();
//!     }
//! }
//!
//! // Naive: materialize the join, then aggregate.
//! let joined = train.hash_join(&aug, &["k"], &["k"]).unwrap();
//! let naive = triple_of(&joined, &["y", "z"]).unwrap();
//! assert!(total.approx_eq(&naive.align(&total.feature_names()).unwrap(), 1e-9));
//! ```

pub mod algebra;
pub mod arena;
pub mod compute;
pub mod covar;
pub mod error;
pub mod pushdown;

pub use algebra::{CountSemiring, Semiring, SumSemiring};
pub use arena::{
    pack_upper_row, packed_idx, packed_len, unpack_upper_row, GroupedArena, KeyId, KeyInterner,
};
pub use compute::{grouped_triples, triple_of, GroupedTriples};
pub use covar::{CovarTriple, LrSystem};
pub use error::{Result, SemiringError};
