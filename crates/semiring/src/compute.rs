//! Computing covariance triples from relations (the "γ" of the paper).

use crate::covar::CovarTriple;
use crate::error::{Result, SemiringError};
use mileena_relation::{FxHashMap, KeyValue, Relation};

/// Per-join-key triples: the pre-computed `γ_j(R)` sketch of §3.2.2.
pub type GroupedTriples = FxHashMap<Vec<KeyValue>, CovarTriple>;

/// Compute the covariance triple of `relation` over the given numeric
/// columns (`γ(R)` with no grouping — the horizontal-augmentation sketch).
///
/// Rows with a NULL in any of the requested columns are skipped, matching
/// the semantics of the materialized training path (`Relation::to_xy`).
pub fn triple_of(relation: &Relation, columns: &[&str]) -> Result<CovarTriple> {
    if columns.is_empty() {
        return Err(SemiringError::InvalidArgument("triple_of: no columns".into()));
    }
    let cols: Vec<&mileena_relation::Column> = columns
        .iter()
        .map(|c| relation.column(c))
        .collect::<std::result::Result<_, _>>()
        .map_err(SemiringError::from)?;
    for (c, name) in cols.iter().zip(columns) {
        if !c.data_type().is_numeric() {
            return Err(SemiringError::InvalidArgument(format!("column {name} is not numeric")));
        }
    }
    let m = columns.len();
    let mut c_total = 0.0f64;
    let mut s = vec![0.0f64; m];
    let mut q = vec![0.0f64; m * m];
    let mut buf = vec![0.0f64; m];
    'rows: for i in 0..relation.num_rows() {
        for (k, col) in cols.iter().enumerate() {
            match col.f64_at(i) {
                Some(v) => buf[k] = v,
                None => continue 'rows,
            }
        }
        c_total += 1.0;
        for a in 0..m {
            s[a] += buf[a];
            // Fill the upper triangle; mirror below the loop.
            for b in a..m {
                q[a * m + b] += buf[a] * buf[b];
            }
        }
    }
    for a in 0..m {
        for b in 0..a {
            q[a * m + b] = q[b * m + a];
        }
    }
    Ok(CovarTriple { features: columns.iter().map(|s| s.to_string()).collect(), c: c_total, s, q })
}

/// Compute per-key triples `γ_j(R)` for vertical augmentation (§3.2.2):
/// group by `key_columns`, then aggregate the covariance triple over
/// `feature_columns` within each group.
///
/// NULL keys are excluded (they can never join). Rows with NULL features are
/// skipped within their group; a group whose rows are all skipped still
/// appears with a zero triple so that join-key statistics remain faithful.
pub fn grouped_triples(
    relation: &Relation,
    key_columns: &[&str],
    feature_columns: &[&str],
) -> Result<GroupedTriples> {
    let groups = relation.group_by(key_columns).map_err(SemiringError::from)?;
    let cols: Vec<&mileena_relation::Column> = feature_columns
        .iter()
        .map(|c| relation.column(c))
        .collect::<std::result::Result<_, _>>()
        .map_err(SemiringError::from)?;
    let m = feature_columns.len();
    let mut out: GroupedTriples = FxHashMap::default();
    let mut buf = vec![0.0f64; m];
    for (key, rows) in groups {
        if key.contains(&KeyValue::Null) {
            continue;
        }
        let mut triple = CovarTriple::zero(feature_columns);
        'rows: for &i in &rows {
            let i = i as usize;
            for (k, col) in cols.iter().enumerate() {
                match col.f64_at(i) {
                    Some(v) => buf[k] = v,
                    None => continue 'rows,
                }
            }
            triple.c += 1.0;
            for a in 0..m {
                triple.s[a] += buf[a];
                for b in 0..m {
                    triple.q[a * m + b] += buf[a] * buf[b];
                }
            }
        }
        out.insert(key, triple);
    }
    Ok(out)
}

/// Sum all grouped triples back into a single triple (`γ(γ_j(R)) = γ(R)`
/// over the non-NULL-key rows) — used in tests and budget accounting.
pub fn total_of_groups(groups: &GroupedTriples) -> Result<CovarTriple> {
    let mut acc = CovarTriple::zero(&[]);
    for t in groups.values() {
        acc = acc.add(t)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;

    #[test]
    fn triple_of_matches_manual() {
        let r = RelationBuilder::new("t")
            .float_col("x", &[1.0, 2.0, 3.0])
            .float_col("y", &[2.0, 4.0, 6.0])
            .build()
            .unwrap();
        let t = triple_of(&r, &["x", "y"]).unwrap();
        assert_eq!(t.c, 3.0);
        assert_eq!(t.s, vec![6.0, 12.0]);
        assert_eq!(t.q_at(0, 0), 14.0); // 1+4+9
        assert_eq!(t.q_at(0, 1), 28.0); // 2+8+18
        assert_eq!(t.q_at(1, 1), 56.0); // 4+16+36
    }

    #[test]
    fn triple_of_skips_null_rows() {
        let r = RelationBuilder::new("t")
            .opt_float_col("x", &[Some(1.0), None])
            .float_col("y", &[10.0, 20.0])
            .build()
            .unwrap();
        let t = triple_of(&r, &["x", "y"]).unwrap();
        assert_eq!(t.c, 1.0);
        assert_eq!(t.s, vec![1.0, 10.0]);
    }

    #[test]
    fn triple_of_int_columns_widen() {
        let r = RelationBuilder::new("t").int_col("x", &[2, 4]).build().unwrap();
        let t = triple_of(&r, &["x"]).unwrap();
        assert_eq!(t.s, vec![6.0]);
        assert_eq!(t.q, vec![20.0]);
    }

    #[test]
    fn triple_of_rejects_strings_and_empty() {
        let r = RelationBuilder::new("t").str_col("s", &["a"]).build().unwrap();
        assert!(triple_of(&r, &["s"]).is_err());
        assert!(triple_of(&r, &[]).is_err());
    }

    #[test]
    fn grouped_triples_partition_and_total() {
        let r = RelationBuilder::new("t")
            .int_col("k", &[1, 1, 2])
            .float_col("x", &[1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let g = grouped_triples(&r, &["k"], &["x"]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[&vec![KeyValue::Int(1)]].c, 2.0);
        assert_eq!(g[&vec![KeyValue::Int(2)]].s, vec![3.0]);
        let total = total_of_groups(&g).unwrap();
        let direct = triple_of(&r, &["x"]).unwrap();
        assert!(total.approx_eq(&direct, 1e-12));
    }

    #[test]
    fn grouped_triples_drop_null_keys() {
        let r = RelationBuilder::new("t")
            .opt_int_col("k", &[Some(1), None])
            .float_col("x", &[1.0, 2.0])
            .build()
            .unwrap();
        let g = grouped_triples(&r, &["k"], &["x"]).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn grouped_triples_keep_empty_groups_for_null_features() {
        let r = RelationBuilder::new("t")
            .int_col("k", &[1])
            .opt_float_col("x", &[None])
            .build()
            .unwrap();
        let g = grouped_triples(&r, &["k"], &["x"]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[&vec![KeyValue::Int(1)]].c, 0.0);
    }
}
