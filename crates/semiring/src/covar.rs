//! The covariance-matrix semi-ring of Schleich et al. [44], the sufficient
//! statistics carrier for Mileena's proxy model.

use crate::error::{Result, SemiringError};
use serde::{Deserialize, Serialize};

/// The covariance semi-ring triple `(c, s, Q)` over a named feature set.
///
/// - `c` — row count (float so privatized/noisy counts stay representable),
/// - `s[i]` — sum of feature `i`,
/// - `q[i*m + j]` — sum of products `feature_i · feature_j` (symmetric, row
///   major, `m = features.len()`).
///
/// Addition requires identical feature lists (use [`CovarTriple::align`] to
/// reorder); multiplication requires *disjoint* feature lists and produces
/// the concatenated feature space — matching union and join respectively.
///
/// Fields are public so that the privacy layer can perturb them in place;
/// the invariants (`s.len() == m`, `q.len() == m*m`, `q` symmetric) must be
/// preserved by such edits. Noise injection keeps symmetry by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovarTriple {
    /// Ordered feature names (unique).
    pub features: Vec<String>,
    /// Row count.
    pub c: f64,
    /// Per-feature sums, length `m`.
    pub s: Vec<f64>,
    /// Sums of pairwise products, length `m*m`, row-major, symmetric.
    pub q: Vec<f64>,
}

impl CovarTriple {
    /// The additive identity over a given feature set.
    pub fn zero(features: &[&str]) -> Self {
        let m = features.len();
        CovarTriple {
            features: features.iter().map(|s| s.to_string()).collect(),
            c: 0.0,
            s: vec![0.0; m],
            q: vec![0.0; m * m],
        }
    }

    /// The multiplicative identity: one "row" with no features.
    pub fn one() -> Self {
        CovarTriple { features: Vec::new(), c: 1.0, s: Vec::new(), q: Vec::new() }
    }

    /// Annotation of a single row with the given feature values.
    pub fn of_row(features: &[&str], values: &[f64]) -> Result<Self> {
        if features.len() != values.len() {
            return Err(SemiringError::InvalidArgument(format!(
                "of_row: {} features but {} values",
                features.len(),
                values.len()
            )));
        }
        let m = values.len();
        let mut q = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                q[i * m + j] = values[i] * values[j];
            }
        }
        Ok(CovarTriple {
            features: features.iter().map(|s| s.to_string()).collect(),
            c: 1.0,
            s: values.to_vec(),
            q,
        })
    }

    /// Number of features `m`.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Feature names as `&str`s (for align/project calls).
    pub fn feature_names(&self) -> Vec<&str> {
        self.features.iter().map(|s| s.as_str()).collect()
    }

    /// Index of a feature.
    pub fn feature_index(&self, name: &str) -> Result<usize> {
        self.features
            .iter()
            .position(|f| f == name)
            .ok_or_else(|| SemiringError::FeatureNotFound(name.to_string()))
    }

    /// `Q[i,j]` accessor.
    #[inline]
    pub fn q_at(&self, i: usize, j: usize) -> f64 {
        self.q[i * self.features.len() + j]
    }

    /// Semi-ring addition (union / within-group accumulation).
    pub fn add(&self, other: &CovarTriple) -> Result<CovarTriple> {
        // Adding zero-with-no-features is always allowed: it adapts to the
        // partner's feature space (useful as a fold seed).
        if self.features.is_empty() && self.c == 0.0 {
            return Ok(other.clone());
        }
        if other.features.is_empty() && other.c == 0.0 {
            return Ok(self.clone());
        }
        if self.features != other.features {
            return Err(SemiringError::FeatureMismatch {
                left: self.features.clone(),
                right: other.features.clone(),
            });
        }
        let mut out = self.clone();
        out.c += other.c;
        for (a, b) in out.s.iter_mut().zip(&other.s) {
            *a += b;
        }
        for (a, b) in out.q.iter_mut().zip(&other.q) {
            *a += b;
        }
        Ok(out)
    }

    /// Semi-ring multiplication (join). Feature sets must be disjoint; the
    /// result covers `self.features ++ other.features`:
    ///
    /// `a×b = (c_a c_b, c_b s_a ∥ c_a s_b, blocks[c_b Q_a, s_a s_bᵀ; s_b s_aᵀ, c_a Q_b])`
    pub fn mul(&self, other: &CovarTriple) -> Result<CovarTriple> {
        let shared: Vec<String> =
            self.features.iter().filter(|f| other.features.contains(f)).cloned().collect();
        if !shared.is_empty() {
            return Err(SemiringError::FeatureOverlap(shared));
        }
        let ma = self.features.len();
        let mb = other.features.len();
        let m = ma + mb;
        let mut features = Vec::with_capacity(m);
        features.extend(self.features.iter().cloned());
        features.extend(other.features.iter().cloned());

        let c = self.c * other.c;
        let mut s = Vec::with_capacity(m);
        s.extend(self.s.iter().map(|v| v * other.c));
        s.extend(other.s.iter().map(|v| v * self.c));

        let mut q = vec![0.0; m * m];
        // top-left: c_b * Q_a
        for i in 0..ma {
            for j in 0..ma {
                q[i * m + j] = other.c * self.q[i * ma + j];
            }
        }
        // bottom-right: c_a * Q_b
        for i in 0..mb {
            for j in 0..mb {
                q[(ma + i) * m + (ma + j)] = self.c * other.q[i * mb + j];
            }
        }
        // cross blocks: s_a s_bᵀ and its transpose
        for i in 0..ma {
            for j in 0..mb {
                let v = self.s[i] * other.s[j];
                q[i * m + (ma + j)] = v;
                q[(ma + j) * m + i] = v;
            }
        }
        Ok(CovarTriple { features, c, s, q })
    }

    /// Reorder features to the given order (a permutation of the current
    /// feature set). Needed before `add` when operands were built in
    /// different column orders.
    pub fn align(&self, order: &[&str]) -> Result<CovarTriple> {
        if order.len() != self.features.len() {
            return Err(SemiringError::FeatureMismatch {
                left: self.features.clone(),
                right: order.iter().map(|s| s.to_string()).collect(),
            });
        }
        let perm: Vec<usize> =
            order.iter().map(|f| self.feature_index(f)).collect::<Result<_>>()?;
        Ok(self.permuted(&perm, order))
    }

    /// Keep only the named features (subset; any order): the semi-ring
    /// analogue of projection, used to select model features at train time.
    pub fn project(&self, keep: &[&str]) -> Result<CovarTriple> {
        let perm: Vec<usize> = keep.iter().map(|f| self.feature_index(f)).collect::<Result<_>>()?;
        Ok(self.permuted(&perm, keep))
    }

    fn permuted(&self, perm: &[usize], names: &[&str]) -> CovarTriple {
        let m0 = self.features.len();
        let m = perm.len();
        let s = perm.iter().map(|&i| self.s[i]).collect();
        let mut q = vec![0.0; m * m];
        for (ni, &oi) in perm.iter().enumerate() {
            for (nj, &oj) in perm.iter().enumerate() {
                q[ni * m + nj] = self.q[oi * m0 + oj];
            }
        }
        CovarTriple { features: names.iter().map(|s| s.to_string()).collect(), c: self.c, s, q }
    }

    /// Rename features via a mapping function (used when join would collide
    /// column names, mirroring the relational operator's prefixing).
    pub fn rename_features(&self, f: impl Fn(&str) -> String) -> CovarTriple {
        let mut out = self.clone();
        out.features = self.features.iter().map(|n| f(n)).collect();
        out
    }

    /// Approximate equality (same features in same order, values within
    /// `tol` absolutely or 1e-9 relatively).
    pub fn approx_eq(&self, other: &CovarTriple, tol: f64) -> bool {
        fn close(a: f64, b: f64, tol: f64) -> bool {
            let diff = (a - b).abs();
            diff <= tol || diff <= 1e-9 * a.abs().max(b.abs())
        }
        self.features == other.features
            && close(self.c, other.c, tol)
            && self.s.iter().zip(&other.s).all(|(a, b)| close(*a, *b, tol))
            && self.q.iter().zip(&other.q).all(|(a, b)| close(*a, *b, tol))
    }

    /// Extract the normal-equation system for ridge regression of `target`
    /// on `features` (optionally with an intercept term).
    ///
    /// Returns [`LrSystem`] holding `XᵀX` (with the intercept as the leading
    /// dimension when requested), `Xᵀy`, `yᵀy` and `n` — everything a solver
    /// needs, straight from the triple with no data access.
    pub fn lr_system(&self, features: &[&str], target: &str, intercept: bool) -> Result<LrSystem> {
        let fidx: Vec<usize> =
            features.iter().map(|f| self.feature_index(f)).collect::<Result<_>>()?;
        let ti = self.feature_index(target)?;
        let k = fidx.len() + usize::from(intercept);
        let mut xtx = vec![0.0; k * k];
        let mut xty = vec![0.0; k];
        let off = usize::from(intercept);
        if intercept {
            xtx[0] = self.c;
            for (a, &i) in fidx.iter().enumerate() {
                xtx[a + 1] = self.s[i];
                xtx[(a + 1) * k] = self.s[i];
            }
            xty[0] = self.s[ti];
        }
        for (a, &i) in fidx.iter().enumerate() {
            for (b, &j) in fidx.iter().enumerate() {
                xtx[(a + off) * k + (b + off)] = self.q_at(i, j);
            }
            xty[a + off] = self.q_at(i, ti);
        }
        Ok(LrSystem { xtx, xty, yty: self.q_at(ti, ti), y_sum: self.s[ti], n: self.c, k })
    }
}

/// Normal-equation view of a [`CovarTriple`] for one regression task.
#[derive(Debug, Clone, PartialEq)]
pub struct LrSystem {
    /// `XᵀX`, `k × k` row-major (leading row/col is the intercept if used).
    pub xtx: Vec<f64>,
    /// `Xᵀy`, length `k`.
    pub xty: Vec<f64>,
    /// `yᵀy` scalar.
    pub yty: f64,
    /// `Σy` (needed for test-time R² around the mean).
    pub y_sum: f64,
    /// Row count.
    pub n: f64,
    /// System dimension `k` (features + intercept).
    pub k: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(features: &[&str], data: &[&[f64]]) -> CovarTriple {
        let mut acc = CovarTriple::zero(features);
        for r in data {
            acc = acc.add(&CovarTriple::of_row(features, r).unwrap()).unwrap();
        }
        acc
    }

    #[test]
    fn of_row_builds_outer_product() {
        let t = CovarTriple::of_row(&["x", "y"], &[2.0, 3.0]).unwrap();
        assert_eq!(t.c, 1.0);
        assert_eq!(t.s, vec![2.0, 3.0]);
        assert_eq!(t.q, vec![4.0, 6.0, 6.0, 9.0]);
    }

    #[test]
    fn add_accumulates_sufficient_stats() {
        let t = rows(&["x", "y"], &[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.c, 2.0);
        assert_eq!(t.s, vec![4.0, 6.0]);
        // Q = [[1+9, 2+12],[2+12, 4+16]]
        assert_eq!(t.q, vec![10.0, 14.0, 14.0, 20.0]);
    }

    #[test]
    fn add_rejects_mismatched_features() {
        let a = CovarTriple::zero(&["x"]);
        let b = CovarTriple::zero(&["y"]);
        assert!(a.add(&b).is_err());
        // but empty-zero is a universal seed
        let z = CovarTriple::zero(&[]);
        assert_eq!(z.add(&a).unwrap(), a);
        assert_eq!(a.add(&z).unwrap(), a);
    }

    #[test]
    fn mul_matches_materialized_cross_product() {
        // Left group: rows x ∈ {1, 2}; right group: rows z ∈ {10}.
        // Join (cross product within the key group) has rows (1,10),(2,10).
        let left = rows(&["x"], &[&[1.0], &[2.0]]);
        let right = rows(&["z"], &[&[10.0]]);
        let prod = left.mul(&right).unwrap();
        let expect = rows(&["x", "z"], &[&[1.0, 10.0], &[2.0, 10.0]]);
        assert!(prod.approx_eq(&expect, 1e-12), "{prod:?} vs {expect:?}");
    }

    #[test]
    fn mul_many_to_many() {
        let left = rows(&["x"], &[&[1.0], &[2.0]]);
        let right = rows(&["z"], &[&[10.0], &[20.0], &[30.0]]);
        let prod = left.mul(&right).unwrap();
        let expect = rows(
            &["x", "z"],
            &[&[1.0, 10.0], &[1.0, 20.0], &[1.0, 30.0], &[2.0, 10.0], &[2.0, 20.0], &[2.0, 30.0]],
        );
        assert!(prod.approx_eq(&expect, 1e-12));
        assert_eq!(prod.c, 6.0);
    }

    #[test]
    fn mul_rejects_overlap_and_identity_holds() {
        let a = rows(&["x"], &[&[1.0]]);
        assert!(a.mul(&a).is_err());
        let prod = a.mul(&CovarTriple::one()).unwrap();
        assert!(prod.approx_eq(&a, 1e-12));
    }

    #[test]
    fn align_and_project() {
        let t = rows(&["x", "y", "z"], &[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let a = t.align(&["z", "x", "y"]).unwrap();
        assert_eq!(a.features, vec!["z", "x", "y"]);
        assert_eq!(a.s, vec![9.0, 5.0, 7.0]);
        assert_eq!(a.q_at(0, 1), t.q_at(2, 0)); // (z,x) == (x,z)
        let p = t.project(&["y"]).unwrap();
        assert_eq!(p.s, vec![7.0]);
        assert_eq!(p.q, vec![4.0 + 25.0]);
        assert!(t.align(&["x", "y"]).is_err());
        assert!(t.project(&["nope"]).is_err());
    }

    #[test]
    fn lr_system_blocks() {
        // y = 2x exactly on two points.
        let t = rows(&["x", "y"], &[&[1.0, 2.0], &[2.0, 4.0]]);
        let sys = t.lr_system(&["x"], "y", true).unwrap();
        assert_eq!(sys.k, 2);
        // XᵀX = [[n, Σx],[Σx, Σx²]] = [[2,3],[3,5]]
        assert_eq!(sys.xtx, vec![2.0, 3.0, 3.0, 5.0]);
        // Xᵀy = [Σy, Σxy] = [6, 10]
        assert_eq!(sys.xty, vec![6.0, 10.0]);
        assert_eq!(sys.yty, 20.0);
        assert_eq!(sys.y_sum, 6.0);
        let sys = t.lr_system(&["x"], "y", false).unwrap();
        assert_eq!(sys.k, 1);
        assert_eq!(sys.xtx, vec![5.0]);
        assert_eq!(sys.xty, vec![10.0]);
    }

    #[test]
    fn rename_features_applies_mapping() {
        let t = rows(&["x"], &[&[1.0]]);
        let r = t.rename_features(|n| format!("aug.{n}"));
        assert_eq!(r.features, vec!["aug.x"]);
        assert_eq!(r.s, t.s);
    }
}
