//! Property suite pinning the indexed discovery tier to the retained
//! linear-scan reference, bit for bit:
//!
//! - schema-fingerprint-bucketed union discovery == the full linear scan;
//! - the exact join sweep == the linear join reference;
//! - an index maintained incrementally through register/remove/replace
//!   churn answers identically to one rebuilt exactly from its surviving
//!   profiles via `from_profiles` (the crash-recovery path) — for both the
//!   exact and the LSH join plans.
//!
//! Equality is full structural equality on the ranked candidate lists,
//! f64 scores included: any drift in postings maintenance, bucket
//! bookkeeping, or scoring order shows up as a bit difference here.

use mileena_discovery::{DatasetProfile, DiscoveryConfig, DiscoveryIndex};
use mileena_relation::{Relation, RelationBuilder};
use proptest::prelude::*;

const WORDS: &[&str] = &["red", "blue", "green", "violet", "amber", "teal", "umber", "coral"];

/// (schema template, value offset, rows).
type Spec = (usize, i64, usize);

fn build_relation(name: &str, spec: Spec) -> Relation {
    let (template, off, rows) = spec;
    let keys: Vec<i64> = (0..rows as i64).map(|i| (i * 3 + off) % 30).collect();
    let vals: Vec<f64> = (0..rows as i64).map(|i| ((i * 7 + off) % 13) as f64 / 13.0).collect();
    match template % 4 {
        // Two templates share the (k:int, v:float) schema so union buckets
        // actually collect multiple datasets.
        0 | 1 => RelationBuilder::new(name).int_col("k", &keys).float_col("v", &vals),
        2 => {
            let words: Vec<&str> = (0..rows as i64)
                .map(|i| WORDS[((i + off) % WORDS.len() as i64) as usize])
                .collect();
            RelationBuilder::new(name).str_col("s", &words).float_col("v", &vals)
        }
        _ => {
            let k2: Vec<i64> = keys.iter().map(|k| (k + 11) % 30).collect();
            RelationBuilder::new(name).int_col("k", &keys).int_col("k2", &k2).float_col("v", &vals)
        }
    }
    .build()
    .unwrap()
}

fn profile(r: &Relation) -> DatasetProfile {
    DatasetProfile::of(r, 64)
}

fn spec() -> impl Strategy<Value = Spec> {
    (0usize..4, 0i64..20, 3usize..20)
}

/// Apply a churn script (0 = remove, 1 = replace, 2 = register-new) to an
/// index seeded from `initial`, mirroring a platform's mutation history.
fn churned_index(
    cfg: DiscoveryConfig,
    prefix: &str,
    initial: &[Spec],
    churn: &[(usize, usize, Spec)],
) -> DiscoveryIndex {
    let mut idx = DiscoveryIndex::new(cfg);
    let mut names: Vec<String> = Vec::new();
    for (i, s) in initial.iter().enumerate() {
        let name = format!("{prefix}-p{i}");
        idx.register(profile(&build_relation(&name, *s)));
        names.push(name);
    }
    let mut extra = 0usize;
    for (op, target, s) in churn {
        match op % 3 {
            0 if !names.is_empty() => {
                idx.remove(&names[target % names.len()]);
            }
            1 if !names.is_empty() => {
                // Replace re-derives in place (inserts if the name was
                // removed earlier in the script — both paths must hold).
                let name = names[target % names.len()].clone();
                idx.replace(profile(&build_relation(&name, *s)));
            }
            _ => {
                let name = format!("{prefix}-x{extra}");
                extra += 1;
                idx.register(profile(&build_relation(&name, *s)));
                names.push(name);
            }
        }
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Default config (exact join plan): indexed vs linear on the churned
    /// index, and churned vs `from_profiles` rebuild.
    #[test]
    fn indexed_discovery_matches_linear_reference_under_churn(
        initial in prop::collection::vec(spec(), 2..8),
        churn in prop::collection::vec((0usize..3, 0usize..8, spec()), 0..6),
        query in spec(),
    ) {
        let cfg = DiscoveryConfig::default();
        let idx = churned_index(cfg.clone(), "parity", &initial, &churn);
        let q = profile(&build_relation("parity-query", query));

        // Bucketed union discovery == the linear scan, on the same index.
        prop_assert_eq!(
            idx.find_union_candidates(&q),
            idx.find_union_candidates_linear(&q),
            "schema-fingerprint buckets must not change union results"
        );
        // Exact join sweep == the linear join reference.
        prop_assert_eq!(
            idx.find_join_candidates(&q),
            idx.find_join_candidates_linear(&q),
            "exact join plan must equal the linear reference"
        );

        // Incremental churn == exact rebuild from the surviving profiles
        // (the recovery path).
        let rebuilt = DiscoveryIndex::from_profiles(
            cfg,
            idx.profiles().cloned().collect::<Vec<_>>(),
        );
        prop_assert_eq!(idx.find_union_candidates(&q), rebuilt.find_union_candidates(&q));
        prop_assert_eq!(idx.find_join_candidates(&q), rebuilt.find_join_candidates(&q));
        prop_assert_eq!(idx.stats(), rebuilt.stats(), "index shape must rebuild exactly");
    }

    /// LSH join plan (`brute_force_limit: 0`): a band table maintained
    /// incrementally through churn answers identically to one rebuilt from
    /// scratch over the survivors.
    #[test]
    fn lsh_table_churn_matches_fresh_rebuild(
        initial in prop::collection::vec(spec(), 2..8),
        churn in prop::collection::vec((0usize..3, 0usize..8, spec()), 0..6),
        query in spec(),
    ) {
        let cfg = DiscoveryConfig { brute_force_limit: 0, ..Default::default() };
        let idx = churned_index(cfg.clone(), "lshp", &initial, &churn);
        let q = profile(&build_relation("lshp-query", query));

        let rebuilt = DiscoveryIndex::from_profiles(
            cfg,
            idx.profiles().cloned().collect::<Vec<_>>(),
        );
        prop_assert_eq!(
            idx.find_join_candidates(&q),
            rebuilt.find_join_candidates(&q),
            "churned LSH table must answer like a fresh one"
        );
        prop_assert_eq!(idx.stats(), rebuilt.stats());
    }
}
