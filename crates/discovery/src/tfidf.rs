//! Term-frequency vectors over column contents, scored with corpus IDF.
//!
//! Used for the cosine-similarity side of Aurum-style discovery: two columns
//! whose value distributions are close (cosine of their TF-IDF vectors ≥ τ)
//! are union-compatible evidence; averaged across a schema they rank union
//! candidates.

use mileena_relation::{Column, FxHashMap};
use serde::{Deserialize, Serialize};

/// A sparse term-frequency vector for one column.
///
/// Tokens: string values are lower-cased and split on non-alphanumerics;
/// numeric values are bucketed by order of magnitude and leading digit
/// (`"num:3:1e2"` for 300-ish) so numeric columns with similar ranges look
/// similar without leaking exact values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TermVector {
    /// term → occurrence count.
    pub counts: FxHashMap<String, f64>,
    /// Total tokens (for TF normalization).
    pub total: f64,
}

/// Tokenize one string cell.
fn tokenize_str(s: &str, out: &mut Vec<String>) {
    for tok in s.split(|c: char| !c.is_alphanumeric()) {
        if !tok.is_empty() {
            out.push(tok.to_lowercase());
        }
    }
}

/// Bucket a numeric cell into tokens: a coarse magnitude token (shared by
/// all values of the same order of magnitude — the unionability signal) and
/// a finer leading-digit token (distribution shape within the magnitude).
fn tokenize_num(v: f64, out: &mut Vec<String>) {
    if !v.is_finite() {
        out.push("num:nan".to_string());
        return;
    }
    if v == 0.0 {
        out.push("num:0".to_string());
        return;
    }
    let sign = if v < 0.0 { "-" } else { "" };
    let a = v.abs();
    let mag = a.log10().floor() as i32;
    let lead = (a / 10f64.powi(mag)).floor() as i64; // leading digit 1..9
    out.push(format!("num:{sign}1e{mag}"));
    out.push(format!("num:{sign}{lead}:1e{mag}"));
}

impl TermVector {
    /// Build from a column's non-NULL values.
    pub fn from_column(column: &Column) -> Self {
        let mut counts: FxHashMap<String, f64> = FxHashMap::default();
        let mut total = 0.0;
        let mut toks = Vec::new();
        let validity = column.validity();
        for i in 0..column.len() {
            if !validity.get(i) {
                continue;
            }
            toks.clear();
            match column {
                Column::Str { data, .. } => tokenize_str(&data[i], &mut toks),
                Column::Int { data, .. } => tokenize_num(data[i] as f64, &mut toks),
                Column::Float { data, .. } => tokenize_num(data[i], &mut toks),
            }
            for t in toks.drain(..) {
                *counts.entry(t).or_insert(0.0) += 1.0;
                total += 1.0;
            }
        }
        TermVector { counts, total }
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.counts.len()
    }

    /// Cosine similarity of the two TF-IDF-weighted vectors. `idf` maps a
    /// term to its inverse document frequency; unseen terms weigh
    /// `default_idf` (the most-informative weight, for never-indexed terms).
    pub fn cosine(
        &self,
        other: &TermVector,
        idf: &FxHashMap<String, f64>,
        default_idf: f64,
    ) -> f64 {
        if self.total == 0.0 || other.total == 0.0 {
            return 0.0;
        }
        let weight = |tv: &TermVector, term: &str, count: f64| {
            let tf = count / tv.total;
            tf * idf.get(term).copied().unwrap_or(default_idf)
        };
        let mut dot = 0.0;
        for (term, &ca) in &self.counts {
            if let Some(&cb) = other.counts.get(term) {
                dot += weight(self, term, ca) * weight(other, term, cb);
            }
        }
        if dot == 0.0 {
            return 0.0;
        }
        let norm = |tv: &TermVector| {
            tv.counts
                .iter()
                .map(|(t, &c)| {
                    let w = weight(tv, t, c);
                    w * w
                })
                .sum::<f64>()
                .sqrt()
        };
        let na = norm(self);
        let nb = norm(other);
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_idf() -> FxHashMap<String, f64> {
        FxHashMap::default() // all terms fall back to default_idf
    }

    #[test]
    fn identical_string_columns_cosine_one() {
        let c = Column::from_strs(&["brooklyn heights", "park slope", "brooklyn"]);
        let a = TermVector::from_column(&c);
        let b = TermVector::from_column(&c);
        let cos = a.cosine(&b, &uniform_idf(), 1.0);
        assert!((cos - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_vocabularies_cosine_zero() {
        let a = TermVector::from_column(&Column::from_strs(&["alpha beta"]));
        let b = TermVector::from_column(&Column::from_strs(&["gamma delta"]));
        assert_eq!(a.cosine(&b, &uniform_idf(), 1.0), 0.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = TermVector::from_column(&Column::from_strs(&["red blue", "red"]));
        let b = TermVector::from_column(&Column::from_strs(&["red green"]));
        let cos = a.cosine(&b, &uniform_idf(), 1.0);
        assert!(cos > 0.2 && cos < 0.95, "{cos}");
    }

    #[test]
    fn numeric_bucketing_groups_similar_ranges() {
        let a = TermVector::from_column(&Column::from_floats(&[110.0, 120.0, 130.0]));
        let b = TermVector::from_column(&Column::from_floats(&[115.0, 125.0]));
        let c = TermVector::from_column(&Column::from_floats(&[0.001, 0.002]));
        let idf = uniform_idf();
        assert!(a.cosine(&b, &idf, 1.0) > 0.9);
        assert_eq!(a.cosine(&c, &idf, 1.0), 0.0);
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        // Both share "the"; only one pair shares "tribeca". With idf making
        // "the" worthless, similarity should collapse for the "the"-only pair.
        let a = TermVector::from_column(&Column::from_strs(&["the tribeca"]));
        let b = TermVector::from_column(&Column::from_strs(&["the tribeca"]));
        let c = TermVector::from_column(&Column::from_strs(&["the bronx"]));
        let mut idf = FxHashMap::default();
        idf.insert("the".to_string(), 0.0);
        idf.insert("tribeca".to_string(), 3.0);
        idf.insert("bronx".to_string(), 3.0);
        assert!(a.cosine(&b, &idf, 1.0) > 0.99);
        assert_eq!(a.cosine(&c, &idf, 1.0), 0.0);
    }

    #[test]
    fn nulls_and_empty() {
        let e = TermVector::from_column(&Column::from_opt_strs(&[None]));
        assert_eq!(e.num_terms(), 0);
        let a = TermVector::from_column(&Column::from_strs(&["x"]));
        assert_eq!(e.cosine(&a, &uniform_idf(), 1.0), 0.0);
    }

    #[test]
    fn zero_and_negative_numbers_tokenize() {
        fn toks(v: f64) -> Vec<String> {
            let mut out = Vec::new();
            tokenize_num(v, &mut out);
            out
        }
        assert_eq!(toks(0.0), vec!["num:0"]);
        assert_eq!(toks(-250.0), vec!["num:-1e2", "num:-2:1e2"]);
        assert_eq!(toks(250.0), vec!["num:1e2", "num:2:1e2"]);
        assert_eq!(toks(f64::NAN), vec!["num:nan"]);
    }

    #[test]
    fn same_magnitude_different_digits_partially_similar() {
        let a = TermVector::from_column(&Column::from_floats(&[1.0, 2.0, 3.0]));
        let b = TermVector::from_column(&Column::from_floats(&[4.0, 5.0, 6.0]));
        let cos = a.cosine(&b, &uniform_idf(), 1.0);
        assert!(cos > 0.4 && cos < 0.95, "{cos}");
    }
}
