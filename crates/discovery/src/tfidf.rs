//! Term-frequency vectors over column contents, scored with corpus IDF.
//!
//! Used for the cosine-similarity side of Aurum-style discovery: two columns
//! whose value distributions are close (cosine of their TF-IDF vectors ≥ τ)
//! are union-compatible evidence; averaged across a schema they rank union
//! candidates.

use mileena_relation::{Column, FxHashMap};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, RwLock};

/// A sparse term-frequency vector for one column.
///
/// Tokens: string values are lower-cased and split on non-alphanumerics;
/// numeric values are bucketed by order of magnitude and leading digit
/// (`"num:3:1e2"` for 300-ish) so numeric columns with similar ranges look
/// similar without leaking exact values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TermVector {
    /// term → occurrence count.
    pub counts: FxHashMap<String, f64>,
    /// Total tokens (for TF normalization).
    pub total: f64,
}

/// Tokenize one string cell.
fn tokenize_str(s: &str, out: &mut Vec<String>) {
    for tok in s.split(|c: char| !c.is_alphanumeric()) {
        if !tok.is_empty() {
            out.push(tok.to_lowercase());
        }
    }
}

/// Bucket a numeric cell into tokens: a coarse magnitude token (shared by
/// all values of the same order of magnitude — the unionability signal) and
/// a finer leading-digit token (distribution shape within the magnitude).
fn tokenize_num(v: f64, out: &mut Vec<String>) {
    if !v.is_finite() {
        out.push("num:nan".to_string());
        return;
    }
    if v == 0.0 {
        out.push("num:0".to_string());
        return;
    }
    let sign = if v < 0.0 { "-" } else { "" };
    let a = v.abs();
    let mag = a.log10().floor() as i32;
    let lead = (a / 10f64.powi(mag)).floor() as i64; // leading digit 1..9
    out.push(format!("num:{sign}1e{mag}"));
    out.push(format!("num:{sign}{lead}:1e{mag}"));
}

impl TermVector {
    /// Build from a column's non-NULL values.
    pub fn from_column(column: &Column) -> Self {
        let mut counts: FxHashMap<String, f64> = FxHashMap::default();
        let mut total = 0.0;
        let mut toks = Vec::new();
        let validity = column.validity();
        for i in 0..column.len() {
            if !validity.get(i) {
                continue;
            }
            toks.clear();
            match column {
                Column::Str { data, .. } => tokenize_str(&data[i], &mut toks),
                Column::Int { data, .. } => tokenize_num(data[i] as f64, &mut toks),
                Column::Float { data, .. } => tokenize_num(data[i], &mut toks),
            }
            for t in toks.drain(..) {
                *counts.entry(t).or_insert(0.0) += 1.0;
                total += 1.0;
            }
        }
        TermVector { counts, total }
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.counts.len()
    }

    /// Cosine similarity of the two TF-IDF-weighted vectors. `idf` maps a
    /// term to its inverse document frequency; unseen terms weigh
    /// `default_idf` (the most-informative weight, for never-indexed terms).
    pub fn cosine(
        &self,
        other: &TermVector,
        idf: &FxHashMap<String, f64>,
        default_idf: f64,
    ) -> f64 {
        self.cosine_prenormed(other, idf, default_idf, self.weighted_norm(idf, default_idf))
    }

    /// The L2 norm of this vector's TF-IDF weighting under `idf` — the
    /// query-side half of [`TermVector::cosine`], split out so a discovery
    /// query computes each of its columns' norms **once** and reuses them
    /// across every bucket candidate (identical bits: same expression, same
    /// map iteration).
    pub fn weighted_norm(&self, idf: &FxHashMap<String, f64>, default_idf: f64) -> f64 {
        self.counts
            .iter()
            .map(|(t, &c)| {
                let w = self.weight(t, c, idf, default_idf);
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }

    /// [`TermVector::cosine`] with `self`'s norm supplied by the caller
    /// (hoisted per query column). Bit-identical to `cosine`.
    pub fn cosine_prenormed(
        &self,
        other: &TermVector,
        idf: &FxHashMap<String, f64>,
        default_idf: f64,
        self_norm: f64,
    ) -> f64 {
        if self.total == 0.0 || other.total == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0;
        for (term, &ca) in &self.counts {
            if let Some(&cb) = other.counts.get(term) {
                dot += self.weight(term, ca, idf, default_idf)
                    * other.weight(term, cb, idf, default_idf);
            }
        }
        if dot == 0.0 {
            return 0.0;
        }
        let nb = other.weighted_norm(idf, default_idf);
        if self_norm == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (self_norm * nb)).clamp(0.0, 1.0)
        }
    }

    #[inline]
    fn weight(
        &self,
        term: &str,
        count: f64,
        idf: &FxHashMap<String, f64>,
        default_idf: f64,
    ) -> f64 {
        (count / self.total) * idf.get(term).copied().unwrap_or(default_idf)
    }
}

/// Incrementally-maintained term postings over the indexed corpus: one
/// document per indexed *column*, each posting a `term → document
/// frequency` row. This is what backs TF-IDF scoring — the IDF table is
/// derived from it (and memoized by the index until the postings change),
/// and register/remove/replace adjust the counts in place instead of
/// rescanning the corpus.
///
/// Counts are integer-valued f64s (exact under ±1 updates far below 2^53),
/// so an incrementally-maintained table is bit-identical to one rebuilt
/// from scratch over the same documents.
#[derive(Debug, Clone, Default)]
pub struct TermPostings {
    df: FxHashMap<String, f64>,
    num_docs: f64,
}

impl TermPostings {
    /// Add one document (column) to the postings.
    pub fn add_document(&mut self, terms: &TermVector) {
        self.num_docs += 1.0;
        for term in terms.counts.keys() {
            *self.df.entry(term.clone()).or_insert(0.0) += 1.0;
        }
    }

    /// Remove one document; its terms' frequencies drop by one and rows
    /// that hit zero are deleted (so a churned postings table is identical
    /// to a freshly-built one).
    pub fn remove_document(&mut self, terms: &TermVector) {
        self.num_docs -= 1.0;
        for term in terms.counts.keys() {
            if let Some(df) = self.df.get_mut(term) {
                *df -= 1.0;
                if *df <= 0.0 {
                    self.df.remove(term);
                }
            }
        }
    }

    /// Total documents (columns) indexed.
    pub fn num_docs(&self) -> f64 {
        self.num_docs
    }

    /// Distinct posting terms.
    pub fn num_terms(&self) -> usize {
        self.df.len()
    }

    /// The IDF weight a term absent from every posting gets.
    pub fn default_idf(&self) -> f64 {
        (1.0 + self.num_docs).ln()
    }

    /// Materialize the IDF table `ln(1 + N/df)` for the current postings.
    pub fn idf_table(&self) -> FxHashMap<String, f64> {
        self.df
            .iter()
            .map(|(t, &df)| (t.clone(), (1.0 + self.num_docs / df.max(1.0)).ln()))
            .collect()
    }
}

/// A shareable term-statistics space: [`TermPostings`] plus the memoized
/// IDF table derived from them, behind interior mutability so several
/// [`DiscoveryIndex`](crate::DiscoveryIndex)es can score against **one**
/// corpus-wide document-frequency census.
///
/// This is what makes sharded discovery bit-identical to a central index:
/// union cosine scores depend on corpus-global IDF, so shard-local indexes
/// must share the term space of the whole corpus, not their own partition.
/// df counts are ±1 integer-valued f64 updates (order-independent far below
/// 2^53), so the shared census equals a central one over the same columns
/// regardless of which shard added which document when.
///
/// Cloning a `TermSpace` clones the handle, not the census — clones see
/// each other's updates.
#[derive(Debug, Clone, Default)]
pub struct TermSpace {
    inner: Arc<TermSpaceInner>,
}

#[derive(Debug, Default)]
struct TermSpaceInner {
    postings: RwLock<TermPostings>,
    /// Memoized IDF table; readers share it via one `RwLock` read, writers
    /// rebuild only after an invalidating postings mutation.
    idf: RwLock<Option<Arc<FxHashMap<String, f64>>>>,
}

impl TermSpace {
    /// A fresh, empty term space.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff `other` is the same underlying census (handle identity).
    pub fn same_space(&self, other: &TermSpace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Add one document (column) and invalidate the memoized IDF.
    pub fn add_document(&self, terms: &TermVector) {
        let mut postings = self.inner.postings.write().unwrap_or_else(|e| e.into_inner());
        postings.add_document(terms);
        drop(postings);
        self.invalidate();
    }

    /// Remove one document and invalidate the memoized IDF.
    pub fn remove_document(&self, terms: &TermVector) {
        let mut postings = self.inner.postings.write().unwrap_or_else(|e| e.into_inner());
        postings.remove_document(terms);
        drop(postings);
        self.invalidate();
    }

    /// Current IDF table, memoized until the next mutation.
    pub fn idf(&self) -> Arc<FxHashMap<String, f64>> {
        if let Some(idf) = self.inner.idf.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            return Arc::clone(idf);
        }
        let mut cache = self.inner.idf.write().unwrap_or_else(|e| e.into_inner());
        if let Some(idf) = cache.as_ref() {
            return Arc::clone(idf); // raced with another rebuilder
        }
        let idf =
            Arc::new(self.inner.postings.read().unwrap_or_else(|e| e.into_inner()).idf_table());
        *cache = Some(Arc::clone(&idf));
        idf
    }

    /// The IDF weight a term absent from every posting gets.
    pub fn default_idf(&self) -> f64 {
        self.inner.postings.read().unwrap_or_else(|e| e.into_inner()).default_idf()
    }

    /// Distinct posting terms.
    pub fn num_terms(&self) -> usize {
        self.inner.postings.read().unwrap_or_else(|e| e.into_inner()).num_terms()
    }

    /// Total documents (columns) indexed.
    pub fn num_docs(&self) -> f64 {
        self.inner.postings.read().unwrap_or_else(|e| e.into_inner()).num_docs()
    }

    fn invalidate(&self) {
        *self.inner.idf.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_idf() -> FxHashMap<String, f64> {
        FxHashMap::default() // all terms fall back to default_idf
    }

    #[test]
    fn identical_string_columns_cosine_one() {
        let c = Column::from_strs(&["brooklyn heights", "park slope", "brooklyn"]);
        let a = TermVector::from_column(&c);
        let b = TermVector::from_column(&c);
        let cos = a.cosine(&b, &uniform_idf(), 1.0);
        assert!((cos - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_vocabularies_cosine_zero() {
        let a = TermVector::from_column(&Column::from_strs(&["alpha beta"]));
        let b = TermVector::from_column(&Column::from_strs(&["gamma delta"]));
        assert_eq!(a.cosine(&b, &uniform_idf(), 1.0), 0.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = TermVector::from_column(&Column::from_strs(&["red blue", "red"]));
        let b = TermVector::from_column(&Column::from_strs(&["red green"]));
        let cos = a.cosine(&b, &uniform_idf(), 1.0);
        assert!(cos > 0.2 && cos < 0.95, "{cos}");
    }

    #[test]
    fn numeric_bucketing_groups_similar_ranges() {
        let a = TermVector::from_column(&Column::from_floats(&[110.0, 120.0, 130.0]));
        let b = TermVector::from_column(&Column::from_floats(&[115.0, 125.0]));
        let c = TermVector::from_column(&Column::from_floats(&[0.001, 0.002]));
        let idf = uniform_idf();
        assert!(a.cosine(&b, &idf, 1.0) > 0.9);
        assert_eq!(a.cosine(&c, &idf, 1.0), 0.0);
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        // Both share "the"; only one pair shares "tribeca". With idf making
        // "the" worthless, similarity should collapse for the "the"-only pair.
        let a = TermVector::from_column(&Column::from_strs(&["the tribeca"]));
        let b = TermVector::from_column(&Column::from_strs(&["the tribeca"]));
        let c = TermVector::from_column(&Column::from_strs(&["the bronx"]));
        let mut idf = FxHashMap::default();
        idf.insert("the".to_string(), 0.0);
        idf.insert("tribeca".to_string(), 3.0);
        idf.insert("bronx".to_string(), 3.0);
        assert!(a.cosine(&b, &idf, 1.0) > 0.99);
        assert_eq!(a.cosine(&c, &idf, 1.0), 0.0);
    }

    #[test]
    fn nulls_and_empty() {
        let e = TermVector::from_column(&Column::from_opt_strs(&[None]));
        assert_eq!(e.num_terms(), 0);
        let a = TermVector::from_column(&Column::from_strs(&["x"]));
        assert_eq!(e.cosine(&a, &uniform_idf(), 1.0), 0.0);
    }

    #[test]
    fn zero_and_negative_numbers_tokenize() {
        fn toks(v: f64) -> Vec<String> {
            let mut out = Vec::new();
            tokenize_num(v, &mut out);
            out
        }
        assert_eq!(toks(0.0), vec!["num:0"]);
        assert_eq!(toks(-250.0), vec!["num:-1e2", "num:-2:1e2"]);
        assert_eq!(toks(250.0), vec!["num:1e2", "num:2:1e2"]);
        assert_eq!(toks(f64::NAN), vec!["num:nan"]);
    }

    #[test]
    fn postings_churn_matches_fresh_build() {
        let a = TermVector::from_column(&Column::from_strs(&["red blue", "red"]));
        let b = TermVector::from_column(&Column::from_strs(&["red green"]));
        let c = TermVector::from_column(&Column::from_strs(&["blue violet"]));
        let mut churned = TermPostings::default();
        churned.add_document(&a);
        churned.add_document(&b);
        churned.add_document(&c);
        churned.remove_document(&b);
        let mut fresh = TermPostings::default();
        fresh.add_document(&a);
        fresh.add_document(&c);
        assert_eq!(churned.num_docs(), fresh.num_docs());
        assert_eq!(churned.num_terms(), fresh.num_terms());
        assert_eq!(churned.idf_table(), fresh.idf_table());
        assert_eq!(churned.default_idf(), fresh.default_idf());
        assert!(!churned.idf_table().contains_key("green"), "zero rows must be deleted");
    }

    #[test]
    fn prenormed_cosine_matches_plain() {
        let a = TermVector::from_column(&Column::from_strs(&["red blue", "red"]));
        let b = TermVector::from_column(&Column::from_strs(&["red green"]));
        let idf = uniform_idf();
        let na = a.weighted_norm(&idf, 1.0);
        assert_eq!(a.cosine(&b, &idf, 1.0), a.cosine_prenormed(&b, &idf, 1.0, na));
    }

    #[test]
    fn same_magnitude_different_digits_partially_similar() {
        let a = TermVector::from_column(&Column::from_floats(&[1.0, 2.0, 3.0]));
        let b = TermVector::from_column(&Column::from_floats(&[4.0, 5.0, 6.0]));
        let cos = a.cosine(&b, &uniform_idf(), 1.0);
        assert!(cos > 0.4 && cos < 0.95, "{cos}");
    }
}
