//! Data discovery for Mileena — the Aurum [16] role in the architecture.
//!
//! The paper: *"We currently use min-hash and TF-IDF sketches based on Aurum
//! to search for augmentation datasets based on column similarity"* and the
//! central search *"retrieves augmentable data based on the column Jaccard
//! similarity (minhash sketches) and cosine similarity (TF-IDF sketches)"*.
//!
//! This crate implements exactly that, from scratch:
//! - [`MinHashSignature`] — k-hash MinHash over a column's distinct values;
//!   Jaccard ≥ τ between key-like columns ⇒ **join candidate**;
//! - [`TermVector`] — TF vectors over column tokens, scored with corpus IDF
//!   maintained by the index; cosine ≥ τ across a whole schema ⇒ **union
//!   candidate**;
//! - [`DiscoveryIndex`] — the registry with LSH banding so join-candidate
//!   lookup does not scan every column pair.
//!
//! Discovery sees only column *sketches*, never raw rows — consistent with
//! the trust model (raw data stays in the provider's local store).

pub mod index;
pub mod minhash;
pub mod profile;
pub mod tfidf;

pub use index::{
    schema_fingerprint, DiscoveryConfig, DiscoveryIndex, DiscoveryTierStats, JoinCandidate,
    UnionCandidate,
};
pub use minhash::MinHashSignature;
pub use profile::{ColumnProfile, DatasetProfile};
pub use tfidf::{TermPostings, TermSpace, TermVector};

// Re-exported so discovery consumers name dataset identities without a
// direct `mileena-relation` dependency.
pub use mileena_relation::{DatasetId, DatasetInterner};
