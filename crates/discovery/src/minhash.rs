//! MinHash signatures for Jaccard similarity between column value sets.

use mileena_relation::hash::fx_hash64;
use mileena_relation::Column;
use serde::{Deserialize, Serialize};

/// A MinHash signature: for each of `k` hash functions, the minimum hash
/// over the column's distinct values. `E[matches/k] = Jaccard(A, B)`.
///
/// The `k` hash functions are derived from one base hash via the standard
/// multiply-xor reseeding `h_i(x) = mix(h(x) ^ seed_i)`, which is cheap and
/// adequate for similarity estimation (not adversarial settings).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    mins: Vec<u64>,
}

/// 64-bit finalizer (splitmix64) used to derive independent hash functions
/// (also reused by the index's schema fingerprints).
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MinHashSignature {
    /// Signature length.
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// The raw per-bucket minima — the signature's whole state, exposed so
    /// binary snapshots can persist it as a zero-parse u64 slab.
    pub fn mins(&self) -> &[u64] {
        &self.mins
    }

    /// Rebuild from raw minima (inverse of [`Self::mins`]).
    pub fn from_mins(mins: Vec<u64>) -> Self {
        MinHashSignature { mins }
    }

    /// Build from an iterator of element hashes.
    pub fn from_hashes(hashes: impl Iterator<Item = u64>, k: usize) -> Self {
        let mut mins = vec![u64::MAX; k];
        for h in hashes {
            for (i, m) in mins.iter_mut().enumerate() {
                let hi = mix(h ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f));
                if hi < *m {
                    *m = hi;
                }
            }
        }
        MinHashSignature { mins }
    }

    /// Build from the distinct non-NULL values of a column.
    pub fn from_column(column: &Column, k: usize) -> Self {
        let validity = column.validity();
        let hashes = (0..column.len()).filter(|&i| validity.get(i)).map(|i| match column {
            Column::Int { data, .. } => fx_hash64(&data[i]),
            Column::Str { data, .. } => fx_hash64(&data[i]),
            Column::Float { data, .. } => fx_hash64(&data[i].to_bits()),
        });
        Self::from_hashes(hashes, k)
    }

    /// Estimated Jaccard similarity with another signature (same `k`).
    pub fn jaccard(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.k(), other.k(), "mismatched signature lengths");
        if self.k() == 0 {
            return 0.0;
        }
        let matches = self.mins.iter().zip(&other.mins).filter(|(a, b)| a == b).count();
        matches as f64 / self.k() as f64
    }

    /// True iff the signature saw no elements (empty column).
    pub fn is_empty(&self) -> bool {
        self.mins.iter().all(|&m| m == u64::MAX)
    }

    /// LSH band hashes: split the signature into `bands` groups and hash
    /// each; two columns sharing any band bucket are candidate pairs.
    pub fn band_hashes(&self, bands: usize) -> Vec<u64> {
        let bands = bands.max(1).min(self.mins.len().max(1));
        let rows = (self.mins.len() / bands).max(1);
        (0..bands)
            .map(|b| {
                let start = b * rows;
                let end = ((b + 1) * rows).min(self.mins.len());
                let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ (b as u64);
                for &m in &self.mins[start..end] {
                    acc = mix(acc ^ m);
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(values: &[i64]) -> Column {
        Column::from_ints(values)
    }

    #[test]
    fn identical_columns_jaccard_one() {
        let a = MinHashSignature::from_column(&int_col(&[1, 2, 3, 4, 5]), 128);
        let b = MinHashSignature::from_column(&int_col(&[5, 4, 3, 2, 1]), 128);
        assert_eq!(a.jaccard(&b), 1.0); // order/multiplicity irrelevant
    }

    #[test]
    fn disjoint_columns_jaccard_near_zero() {
        let a = MinHashSignature::from_column(&int_col(&(0..100).collect::<Vec<_>>()), 128);
        let b = MinHashSignature::from_column(&int_col(&(1000..1100).collect::<Vec<_>>()), 128);
        assert!(a.jaccard(&b) < 0.05, "{}", a.jaccard(&b));
    }

    #[test]
    fn estimates_half_overlap() {
        // |A∩B| = 100, |A∪B| = 300 → J = 1/3.
        let a: Vec<i64> = (0..200).collect();
        let b: Vec<i64> = (100..300).collect();
        let sa = MinHashSignature::from_column(&int_col(&a), 256);
        let sb = MinHashSignature::from_column(&int_col(&b), 256);
        let j = sa.jaccard(&sb);
        assert!((j - 1.0 / 3.0).abs() < 0.12, "estimate {j} too far from 1/3");
    }

    #[test]
    fn nulls_ignored_and_duplicates_collapse() {
        let with_nulls = Column::from_opt_ints(&[Some(1), None, Some(2), Some(1)]);
        let plain = int_col(&[1, 2]);
        let a = MinHashSignature::from_column(&with_nulls, 64);
        let b = MinHashSignature::from_column(&plain, 64);
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn empty_column_detected() {
        let sig = MinHashSignature::from_column(&Column::from_opt_ints(&[None, None]), 32);
        assert!(sig.is_empty());
    }

    #[test]
    fn band_hashes_match_for_identical_sigs() {
        let a = MinHashSignature::from_column(&int_col(&[1, 2, 3]), 64);
        let b = MinHashSignature::from_column(&int_col(&[3, 2, 1]), 64);
        assert_eq!(a.band_hashes(8), b.band_hashes(8));
        assert_eq!(a.band_hashes(8).len(), 8);
    }

    #[test]
    fn string_and_int_columns_hash_independently() {
        let s = Column::from_strs(&["1", "2"]);
        let i = int_col(&[1, 2]);
        let ss = MinHashSignature::from_column(&s, 64);
        let si = MinHashSignature::from_column(&i, 64);
        // "1" and 1i64 are different elements; similarity should be low.
        assert!(ss.jaccard(&si) < 0.2);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_k_panics() {
        let a = MinHashSignature::from_column(&int_col(&[1]), 16);
        let b = MinHashSignature::from_column(&int_col(&[1]), 32);
        a.jaccard(&b);
    }
}
