//! The discovery index: `Discover(R, augType)` from Problem 1.
//!
//! Join candidates come from MinHash-LSH over keyable columns; union
//! candidates from schema compatibility plus TF-IDF cosine over columns.

use crate::profile::{ColumnProfile, DatasetProfile};
use mileena_relation::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Tuning knobs for discovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// MinHash signature length.
    pub minhash_k: usize,
    /// LSH bands (more bands = more recall, more candidate noise).
    pub lsh_bands: usize,
    /// Jaccard threshold for join candidates.
    pub join_threshold: f64,
    /// Mean-cosine threshold for union candidates.
    pub union_threshold: f64,
    /// A join key column must have at least this many distinct values.
    pub min_key_distinct: usize,
    /// Below this many indexed key columns, candidate pairing scans all
    /// columns exactly instead of using LSH buckets. LSH trades recall for
    /// scale; small corpora get the exact answer (hybrid, as deployed
    /// discovery systems do).
    pub brute_force_limit: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            minhash_k: 128,
            lsh_bands: 16,
            join_threshold: 0.3,
            union_threshold: 0.5,
            min_key_distinct: 2,
            brute_force_limit: 10_000,
        }
    }
}

/// A discovered join opportunity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinCandidate {
    /// Provider dataset name.
    pub dataset: String,
    /// Column in the *query* (requester) dataset to join on.
    pub query_column: String,
    /// Column in the provider dataset to join on.
    pub candidate_column: String,
    /// Estimated Jaccard similarity of the two key sets.
    pub jaccard: f64,
}

/// A discovered union opportunity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnionCandidate {
    /// Provider dataset name.
    pub dataset: String,
    /// Mean TF-IDF cosine over matched columns.
    pub score: f64,
}

/// Key for the LSH bucket table: (band index, band hash).
type LshKey = (u32, u64);
/// Bucket entry: (dataset index, column index).
type ColRef = (u32, u32);

/// The Aurum-style discovery index.
#[derive(Debug, Default)]
pub struct DiscoveryIndex {
    config: DiscoveryConfig,
    datasets: Vec<DatasetProfile>,
    by_name: FxHashMap<String, usize>,
    /// LSH buckets over keyable columns.
    lsh: FxHashMap<LshKey, Vec<ColRef>>,
    /// All key-like columns (for the small-corpus exact path).
    key_columns: Vec<ColRef>,
    /// Document frequency per term (documents = columns), for IDF.
    doc_freq: FxHashMap<String, f64>,
    /// Total indexed columns (documents).
    num_docs: f64,
    /// Memoized IDF table; rebuilt lazily after registrations invalidate it
    /// (previously recomputed from scratch on every union-candidate query).
    idf_cache: std::sync::Mutex<Option<std::sync::Arc<FxHashMap<String, f64>>>>,
}

impl DiscoveryIndex {
    /// New index with the given config.
    pub fn new(config: DiscoveryConfig) -> Self {
        DiscoveryIndex {
            config,
            datasets: Vec::new(),
            by_name: FxHashMap::default(),
            lsh: FxHashMap::default(),
            key_columns: Vec::new(),
            doc_freq: FxHashMap::default(),
            num_docs: 0.0,
            idf_cache: std::sync::Mutex::new(None),
        }
    }

    /// Build an index over an existing set of profiles — the platform's
    /// recovery path, which rebuilds discovery state from the durable
    /// store instead of re-profiling raw relations.
    pub fn from_profiles(
        config: DiscoveryConfig,
        profiles: impl IntoIterator<Item = DatasetProfile>,
    ) -> Self {
        let mut index = DiscoveryIndex::new(config);
        for profile in profiles {
            index.register(profile);
        }
        index
    }

    /// The active config.
    pub fn config(&self) -> &DiscoveryConfig {
        &self.config
    }

    /// All indexed profiles, in registration order.
    pub fn profiles(&self) -> &[DatasetProfile] {
        &self.datasets
    }

    /// The profile registered under `name`.
    pub fn profile(&self, name: &str) -> Option<&DatasetProfile> {
        self.by_name.get(name).map(|&i| &self.datasets[i])
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True iff no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Register a dataset profile. Re-registering a name replaces nothing —
    /// duplicate names are ignored (first registration wins) to keep LSH
    /// bookkeeping simple; use distinct dataset names.
    pub fn register(&mut self, profile: DatasetProfile) {
        if self.by_name.contains_key(&profile.name) {
            return;
        }
        // New documents change document frequencies: drop the memoized IDF.
        *self.idf_cache.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        let di = self.datasets.len() as u32;
        self.by_name.insert(profile.name.clone(), self.datasets.len());
        for (ci, col) in profile.columns.iter().enumerate() {
            // IDF corpus over all columns.
            self.num_docs += 1.0;
            let mut seen: FxHashSet<&str> = FxHashSet::default();
            for term in col.terms.counts.keys() {
                if seen.insert(term) {
                    *self.doc_freq.entry(term.clone()).or_insert(0.0) += 1.0;
                }
            }
            // LSH only for plausible key columns.
            if self.is_key_like(col) {
                self.key_columns.push((di, ci as u32));
                for (b, h) in col.minhash.band_hashes(self.config.lsh_bands).into_iter().enumerate()
                {
                    self.lsh.entry((b as u32, h)).or_default().push((di, ci as u32));
                }
            }
        }
        self.datasets.push(profile);
    }

    /// Remove a dataset's profile; returns false when the name is unknown.
    ///
    /// LSH buckets, document frequencies, and the IDF cache are rebuilt
    /// from the remaining profiles: removal is a rare administrative
    /// operation, so an O(corpus) rebuild buys exact bookkeeping (no
    /// tombstones drifting the IDF corpus or stale bucket entries).
    pub fn remove(&mut self, name: &str) -> bool {
        if !self.by_name.contains_key(name) {
            return false;
        }
        let retained: Vec<DatasetProfile> =
            std::mem::take(&mut self.datasets).into_iter().filter(|p| p.name != name).collect();
        self.rebuild(retained);
        true
    }

    /// Replace (or insert) a dataset's profile in place, keeping
    /// registration order; derived state is rebuilt exactly as for
    /// [`DiscoveryIndex::remove`].
    pub fn replace(&mut self, profile: DatasetProfile) {
        if !self.by_name.contains_key(&profile.name) {
            self.register(profile);
            return;
        }
        let mut retained: Vec<DatasetProfile> = std::mem::take(&mut self.datasets);
        let slot = retained.iter_mut().find(|p| p.name == profile.name).expect("checked above");
        *slot = profile;
        self.rebuild(retained);
    }

    /// Reset to an empty index on the same config, then re-register.
    fn rebuild(&mut self, profiles: Vec<DatasetProfile>) {
        *self = DiscoveryIndex::from_profiles(self.config.clone(), profiles);
    }

    fn is_key_like(&self, col: &ColumnProfile) -> bool {
        col.data_type.is_keyable()
            && col.distinct >= self.config.min_key_distinct
            && !col.minhash.is_empty()
    }

    /// Current IDF table (`ln(1 + N/df)`), memoized until the next
    /// registration (it was previously rebuilt on every union query).
    fn idf(&self) -> std::sync::Arc<FxHashMap<String, f64>> {
        let mut cache = self.idf_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(idf) = cache.as_ref() {
            return std::sync::Arc::clone(idf);
        }
        let idf: std::sync::Arc<FxHashMap<String, f64>> = std::sync::Arc::new(
            self.doc_freq
                .iter()
                .map(|(t, &df)| (t.clone(), (1.0 + self.num_docs / df.max(1.0)).ln()))
                .collect(),
        );
        *cache = Some(std::sync::Arc::clone(&idf));
        idf
    }

    /// `Discover(R, ⋈)`: join candidates for a query dataset, best column
    /// pair per provider dataset, sorted by descending Jaccard.
    pub fn find_join_candidates(&self, query: &DatasetProfile) -> Vec<JoinCandidate> {
        let mut best: FxHashMap<u32, JoinCandidate> = FxHashMap::default();
        for qcol in query.keyable_columns() {
            if !self.is_key_like(qcol) {
                continue;
            }
            // Candidate pairs: exact scan for small corpora, LSH at scale.
            let mut seen: FxHashSet<ColRef> = FxHashSet::default();
            if self.key_columns.len() <= self.config.brute_force_limit {
                seen.extend(self.key_columns.iter().copied());
            } else {
                for (b, h) in
                    qcol.minhash.band_hashes(self.config.lsh_bands).into_iter().enumerate()
                {
                    if let Some(bucket) = self.lsh.get(&(b as u32, h)) {
                        for &cref in bucket {
                            seen.insert(cref);
                        }
                    }
                }
            }
            for (di, ci) in seen {
                let ds = &self.datasets[di as usize];
                if ds.name == query.name {
                    continue; // don't join a dataset with itself
                }
                let cand_col = &ds.columns[ci as usize];
                if cand_col.data_type != qcol.data_type {
                    continue; // int keys join int keys, str join str
                }
                let j = qcol.minhash.jaccard(&cand_col.minhash);
                if j < self.config.join_threshold {
                    continue;
                }
                let entry = JoinCandidate {
                    dataset: ds.name.clone(),
                    query_column: qcol.name.clone(),
                    candidate_column: cand_col.name.clone(),
                    jaccard: j,
                };
                match best.get(&di) {
                    Some(existing) if existing.jaccard >= j => {}
                    _ => {
                        best.insert(di, entry);
                    }
                }
            }
        }
        let mut out: Vec<JoinCandidate> = best.into_values().collect();
        out.sort_by(|a, b| {
            b.jaccard
                .partial_cmp(&a.jaccard)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.dataset.cmp(&b.dataset))
        });
        out
    }

    /// `Discover(R, ∪)`: union candidates — datasets whose schema matches the
    /// query's (same column names and types) with mean column cosine ≥ τ.
    pub fn find_union_candidates(&self, query: &DatasetProfile) -> Vec<UnionCandidate> {
        let idf = self.idf();
        let default_idf = (1.0 + self.num_docs).ln();
        let mut out = Vec::new();
        'ds: for ds in &self.datasets {
            if ds.name == query.name || ds.columns.len() != query.columns.len() {
                continue;
            }
            let mut cos_sum = 0.0;
            for qcol in &query.columns {
                let Some(ccol) = ds.column(&qcol.name) else { continue 'ds };
                if ccol.data_type != qcol.data_type {
                    continue 'ds;
                }
                cos_sum += qcol.terms.cosine(&ccol.terms, &idf, default_idf);
            }
            let score = cos_sum / query.columns.len() as f64;
            if score >= self.config.union_threshold {
                out.push(UnionCandidate { dataset: ds.name.clone(), score });
            }
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.dataset.cmp(&b.dataset))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::{Relation, RelationBuilder};

    fn profile(r: &Relation) -> DatasetProfile {
        DatasetProfile::of(r, 128)
    }

    fn index_with(relations: &[&Relation]) -> DiscoveryIndex {
        let mut idx = DiscoveryIndex::new(DiscoveryConfig::default());
        for r in relations {
            idx.register(profile(r));
        }
        idx
    }

    fn train() -> Relation {
        RelationBuilder::new("train")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("y", &(0..50).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn finds_join_candidate_on_shared_keys() {
        let prov = RelationBuilder::new("weather")
            .int_col("zone_id", &(0..50).collect::<Vec<_>>())
            .float_col("temp", &(0..50).map(|i| i as f64 * 0.5).collect::<Vec<_>>())
            .build()
            .unwrap();
        let idx = index_with(&[&prov]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].dataset, "weather");
        assert_eq!(cands[0].query_column, "zone");
        assert_eq!(cands[0].candidate_column, "zone_id");
        assert!(cands[0].jaccard > 0.9);
    }

    #[test]
    fn no_join_candidate_for_disjoint_keys() {
        let prov = RelationBuilder::new("other")
            .int_col("id", &(1000..1050).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let idx = index_with(&[&prov]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn self_join_excluded() {
        let t = train();
        let idx = index_with(&[&t]);
        assert!(idx.find_join_candidates(&profile(&t)).is_empty());
    }

    #[test]
    fn best_column_pair_reported_per_dataset() {
        // Provider has two int columns; one overlaps much more.
        let prov = RelationBuilder::new("p")
            .int_col("good", &(0..50).collect::<Vec<_>>())
            .int_col("bad", &(40..90).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let idx = index_with(&[&prov]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].candidate_column, "good");
    }

    #[test]
    fn finds_union_candidates_with_same_schema() {
        let t = RelationBuilder::new("train")
            .str_col("boro", &["brooklyn", "queens", "bronx"])
            .float_col("y", &[1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let same = RelationBuilder::new("more_rows")
            .str_col("boro", &["brooklyn", "manhattan", "queens"])
            .float_col("y", &[4.0, 5.0, 6.0])
            .build()
            .unwrap();
        let unrelated = RelationBuilder::new("unrelated")
            .str_col("boro", &["tokyo", "osaka", "kyoto"])
            .float_col("y", &[1e6, 2e6, 3e6])
            .build()
            .unwrap();
        let wrong_schema = RelationBuilder::new("wrong")
            .str_col("city", &["brooklyn"])
            .float_col("y", &[1.0])
            .build()
            .unwrap();
        let idx = index_with(&[&same, &unrelated, &wrong_schema]);
        let cands = idx.find_union_candidates(&profile(&t));
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert_eq!(cands[0].dataset, "more_rows");
        assert!(cands[0].score > 0.5);
    }

    #[test]
    fn lsh_path_finds_high_similarity_pairs() {
        // Force the LSH path (no brute force) and check that near-identical
        // key columns still collide in some band.
        let cfg = DiscoveryConfig { brute_force_limit: 0, ..Default::default() };
        let mut idx = DiscoveryIndex::new(cfg);
        let prov = RelationBuilder::new("prov")
            .int_col("zone", &(0..200).collect::<Vec<_>>())
            .float_col("v", &[0.0; 200])
            .build()
            .unwrap();
        idx.register(profile(&prov));
        let q = RelationBuilder::new("q")
            .int_col("zone", &(0..200).collect::<Vec<_>>())
            .float_col("y", &[0.0; 200])
            .build()
            .unwrap();
        let cands = idx.find_join_candidates(&profile(&q));
        assert_eq!(cands.len(), 1, "identical key sets must LSH-collide");
        assert!(cands[0].jaccard > 0.95);
    }

    #[test]
    fn lsh_path_prunes_low_similarity_pairs() {
        // Under pure LSH, a weakly-similar pair (J ≈ 0.1) should almost
        // never surface — that's the scalability trade documented on
        // `brute_force_limit`.
        let cfg = DiscoveryConfig { brute_force_limit: 0, ..Default::default() };
        let mut idx = DiscoveryIndex::new(cfg);
        let prov = RelationBuilder::new("prov")
            .int_col("zone", &(180..380).collect::<Vec<_>>())
            .float_col("v", &[0.0; 200])
            .build()
            .unwrap();
        idx.register(profile(&prov));
        let q = RelationBuilder::new("q")
            .int_col("zone", &(0..200).collect::<Vec<_>>())
            .float_col("y", &[0.0; 200])
            .build()
            .unwrap();
        let cands = idx.find_join_candidates(&profile(&q));
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn idf_cache_invalidated_by_registration() {
        let t = RelationBuilder::new("q")
            .str_col("boro", &["brooklyn", "queens", "bronx"])
            .float_col("y", &[1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let same = |name: &str| {
            RelationBuilder::new(name)
                .str_col("boro", &["brooklyn", "manhattan", "queens"])
                .float_col("y", &[4.0, 5.0, 6.0])
                .build()
                .unwrap()
        };
        let mut idx = index_with(&[&same("a")]);
        // Prime the cache.
        let first = idx.find_union_candidates(&profile(&t));
        assert_eq!(first.len(), 1);
        // A new registration must be visible (stale IDF would miss it or
        // keep stale weights).
        idx.register(profile(&same("b")));
        let second = idx.find_union_candidates(&profile(&t));
        assert_eq!(second.len(), 2, "{second:?}");
        // Cached and fresh IDF agree on identical corpora.
        let idx2 = index_with(&[&same("a"), &same("b")]);
        let fresh = idx2.find_union_candidates(&profile(&t));
        let cached: Vec<f64> = second.iter().map(|c| c.score).collect();
        let fresh_scores: Vec<f64> = fresh.iter().map(|c| c.score).collect();
        assert_eq!(cached, fresh_scores);
    }

    #[test]
    fn remove_and_replace_rebuild_derived_state() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let weak = RelationBuilder::new("weak")
            .int_col("zone", &(15..65).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let mut idx = index_with(&[&strong, &weak]);
        assert_eq!(idx.find_join_candidates(&profile(&train())).len(), 2);

        // Remove: the candidate disappears; unknown names are a no-op.
        assert!(idx.remove("strong"));
        assert!(!idx.remove("strong"));
        assert_eq!(idx.len(), 1);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].dataset, "weak");
        assert!(idx.profile("strong").is_none());

        // Replace: weak's keys become disjoint → no candidates at all.
        let disjoint = RelationBuilder::new("weak")
            .int_col("zone", &(1000..1050).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        idx.replace(profile(&disjoint));
        assert_eq!(idx.len(), 1);
        assert!(idx.find_join_candidates(&profile(&train())).is_empty());
        // Replace of an unknown name inserts.
        idx.replace(profile(&strong));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.find_join_candidates(&profile(&train())).len(), 1);
    }

    #[test]
    fn from_profiles_matches_incremental_registration() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let incremental = index_with(&[&strong]);
        let rebuilt = DiscoveryIndex::from_profiles(
            DiscoveryConfig::default(),
            incremental.profiles().to_vec(),
        );
        let a = incremental.find_join_candidates(&profile(&train()));
        let b = rebuilt.find_join_candidates(&profile(&train()));
        assert_eq!(a, b, "rebuilt index must discover identically");
    }

    #[test]
    fn duplicate_registration_ignored() {
        let t = train();
        let mut idx = DiscoveryIndex::new(DiscoveryConfig::default());
        idx.register(profile(&t));
        idx.register(profile(&t));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn candidates_sorted_by_similarity() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        // J = 35/65 ≈ 0.54: comfortably above threshold (0.3) even under
        // MinHash estimation noise, and clearly below strong's ≈ 1.0.
        let weak = RelationBuilder::new("weak")
            .int_col("zone", &(15..65).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let idx = index_with(&[&weak, &strong]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].dataset, "strong");
        assert!(cands[0].jaccard > cands[1].jaccard);
    }
}
