//! The discovery index: `Discover(R, augType)` from Problem 1.
//!
//! Join candidates come from MinHash-LSH over keyable columns; union
//! candidates from schema compatibility plus TF-IDF cosine over columns.
//!
//! Both tiers are *indexed*, not scanned:
//!
//! - **Union** candidates are served from a **schema-fingerprint bucket
//!   index**: datasets are grouped by the hash of their sorted
//!   `(column name, type)` multiset, so a query is one bucket lookup plus
//!   cosine scoring over the (tiny) bucket — never a pass over the corpus.
//!   TF-IDF weights come from incrementally-maintained
//!   [`TermPostings`](crate::tfidf::TermPostings) with a memoized IDF
//!   table, and each query column's weighted norm is computed once and
//!   shared across every bucket member.
//! - **Join** candidates use the LSH band table at scale and an exact
//!   column sweep below [`DiscoveryConfig::brute_force_limit`]. The LSH
//!   table is built **lazily**, only when the corpus first crosses that
//!   limit — small corpora never hash a band — and the query path reuses
//!   one `seen` arena across query columns instead of allocating a
//!   candidate set per column.
//!
//! All index state is maintained incrementally through
//! [`DiscoveryIndex::register`] / [`DiscoveryIndex::remove`] /
//! [`DiscoveryIndex::replace`], and [`DiscoveryIndex::from_profiles`]
//! (the recovery path) rebuilds it exactly: the indexed query methods are
//! pinned bit-identical to the retained linear-scan references
//! ([`DiscoveryIndex::find_join_candidates_linear`],
//! [`DiscoveryIndex::find_union_candidates_linear`]) by the
//! `index_parity` property suite.
//!
//! Datasets are identified by interned [`DatasetId`]s (process-local,
//! never serialized); candidates carry ids plus `Arc<str>` column names,
//! so downstream layers never clone a `String` per candidate.

use crate::minhash::mix;
use crate::profile::{ColumnProfile, DatasetProfile};
use crate::tfidf::TermSpace;
use mileena_relation::hash::fx_hash64;
use mileena_relation::{DataType, DatasetId, DatasetInterner, FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tuning knobs for discovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// MinHash signature length.
    pub minhash_k: usize,
    /// LSH bands (more bands = more recall, more candidate noise).
    pub lsh_bands: usize,
    /// Jaccard threshold for join candidates.
    pub join_threshold: f64,
    /// Mean-cosine threshold for union candidates.
    pub union_threshold: f64,
    /// A join key column must have at least this many distinct values.
    pub min_key_distinct: usize,
    /// Below this many indexed key columns, candidate pairing scans all
    /// columns exactly instead of using LSH buckets. LSH trades recall for
    /// scale; small corpora get the exact answer (hybrid, as deployed
    /// discovery systems do). The LSH band table is only materialized once
    /// the corpus crosses this limit.
    pub brute_force_limit: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            minhash_k: 128,
            lsh_bands: 16,
            join_threshold: 0.3,
            union_threshold: 0.5,
            min_key_distinct: 2,
            brute_force_limit: 10_000,
        }
    }
}

/// A discovered join opportunity.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// Provider dataset (resolve via [`DiscoveryIndex::name_of`]).
    pub dataset: DatasetId,
    /// Column in the *query* (requester) dataset to join on.
    pub query_column: Arc<str>,
    /// Column in the provider dataset to join on.
    pub candidate_column: Arc<str>,
    /// Estimated Jaccard similarity of the two key sets.
    pub jaccard: f64,
}

/// A discovered union opportunity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnionCandidate {
    /// Provider dataset (resolve via [`DiscoveryIndex::name_of`]).
    pub dataset: DatasetId,
    /// Mean TF-IDF cosine over matched columns.
    pub score: f64,
}

/// Index-size counters surfaced through the platform's `stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiscoveryTierStats {
    /// Live indexed datasets.
    pub datasets: usize,
    /// Indexed key-like columns (the join tier's document count).
    pub key_columns: usize,
    /// Live LSH band buckets (0 until the corpus crosses
    /// `brute_force_limit` — small corpora never build the table).
    pub lsh_buckets: usize,
    /// Schema-fingerprint buckets (the union tier's index).
    pub schema_buckets: usize,
    /// Distinct TF-IDF posting terms.
    pub posting_terms: usize,
}

/// Key for the LSH bucket table: (band index, band hash).
type LshKey = (u32, u64);
/// Bucket entry: (dataset slot, column index).
type ColRef = (u32, u32);

/// Per-dataset best join pair during a query (indices only — names are
/// materialized once, after ranking).
#[derive(Debug, Clone, Copy)]
struct BestPair {
    jaccard: f64,
    query_col: u32,
    cand_col: u32,
}

/// One indexed dataset, pinned to a slot for the lifetime of its
/// registration (replace reuses the slot; remove frees it).
#[derive(Debug)]
struct IndexedDataset {
    id: DatasetId,
    fingerprint: u64,
    profile: DatasetProfile,
}

/// Stable tag per column type for schema fingerprints.
fn type_tag(t: DataType) -> u64 {
    match t {
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

/// Hash of a profile's sorted `(column name, type)` multiset: two profiles
/// are union-compatible (same column names, same types, same arity) iff
/// their fingerprints match — modulo hash collisions, which the query path
/// re-verifies per bucket member.
pub fn schema_fingerprint(profile: &DatasetProfile) -> u64 {
    let mut cols: Vec<(&str, u64)> =
        profile.columns.iter().map(|c| (c.name.as_str(), type_tag(c.data_type))).collect();
    cols.sort_unstable();
    let mut acc = mix(0x5c4e_3af1_9b1d_7e2bu64 ^ cols.len() as u64);
    for (name, tag) in cols {
        acc = mix(acc ^ fx_hash64(&name));
        acc = mix(acc ^ tag);
    }
    acc
}

/// The Aurum-style discovery index.
#[derive(Debug)]
pub struct DiscoveryIndex {
    config: DiscoveryConfig,
    /// Dataset identity space (shared, by default process-global, with the
    /// sketch store so discovered ids resolve there directly).
    ids: Arc<DatasetInterner>,
    /// Slot-stable dataset storage; `None` = freed by a removal.
    slots: Vec<Option<IndexedDataset>>,
    by_name: FxHashMap<String, u32>,
    by_id: FxHashMap<DatasetId, u32>,
    free_slots: Vec<u32>,
    live: usize,
    /// LSH buckets over keyable columns (lazily built at scale).
    lsh: FxHashMap<LshKey, Vec<ColRef>>,
    lsh_built: bool,
    /// Indexed key-like columns (drives the exact-vs-LSH path choice).
    num_key_columns: usize,
    /// Union tier: schema fingerprint → ascending live slots.
    schema_buckets: FxHashMap<u64, Vec<u32>>,
    /// Term statistics (documents = columns) backing TF-IDF, with the
    /// memoized IDF table. Private per index by default; a sharded
    /// deployment passes one shared [`TermSpace`] to every shard's index
    /// so union scores see corpus-global document frequencies.
    terms: TermSpace,
}

impl Default for DiscoveryIndex {
    fn default() -> Self {
        DiscoveryIndex::new(DiscoveryConfig::default())
    }
}

impl DiscoveryIndex {
    /// New index with the given config, on the process-global dataset
    /// identity space.
    pub fn new(config: DiscoveryConfig) -> Self {
        Self::with_interner(config, Arc::clone(DatasetInterner::global()))
    }

    /// New index on an isolated identity space (must be shared with the
    /// sketch store that serves its candidates).
    pub fn with_interner(config: DiscoveryConfig, ids: Arc<DatasetInterner>) -> Self {
        Self::with_term_space(config, ids, TermSpace::new())
    }

    /// New index on an isolated identity space *and* an externally-owned
    /// term space. Several indexes sharing one `TermSpace` score TF-IDF
    /// against the union of everything they all indexed — the sharded
    /// platform's corpus-global IDF census.
    pub fn with_term_space(
        config: DiscoveryConfig,
        ids: Arc<DatasetInterner>,
        terms: TermSpace,
    ) -> Self {
        DiscoveryIndex {
            config,
            ids,
            slots: Vec::new(),
            by_name: FxHashMap::default(),
            by_id: FxHashMap::default(),
            free_slots: Vec::new(),
            live: 0,
            lsh: FxHashMap::default(),
            lsh_built: false,
            num_key_columns: 0,
            schema_buckets: FxHashMap::default(),
            terms,
        }
    }

    /// Build an index over an existing set of profiles — the platform's
    /// recovery path, which rebuilds discovery state from the durable
    /// store instead of re-profiling raw relations. Registration is the
    /// same incremental path, so a rebuilt index answers queries
    /// identically to the incrementally-maintained one it replaces.
    pub fn from_profiles(
        config: DiscoveryConfig,
        profiles: impl IntoIterator<Item = DatasetProfile>,
    ) -> Self {
        let mut index = DiscoveryIndex::new(config);
        for profile in profiles {
            index.register(profile);
        }
        index
    }

    /// The active config.
    pub fn config(&self) -> &DiscoveryConfig {
        &self.config
    }

    /// The dataset identity space this index interns into.
    pub fn dataset_interner(&self) -> &Arc<DatasetInterner> {
        &self.ids
    }

    /// All live indexed profiles, in slot order.
    pub fn profiles(&self) -> impl Iterator<Item = &DatasetProfile> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|ds| &ds.profile))
    }

    /// The profile registered under `name`.
    pub fn profile(&self, name: &str) -> Option<&DatasetProfile> {
        self.by_name.get(name).map(|&slot| &self.slots[slot as usize].as_ref().unwrap().profile)
    }

    /// The id of a live registered dataset.
    pub fn id_of(&self, name: &str) -> Option<DatasetId> {
        self.by_name.get(name).map(|&slot| self.slots[slot as usize].as_ref().unwrap().id)
    }

    /// The name of a live registered dataset.
    pub fn name_of(&self, id: DatasetId) -> Option<&str> {
        self.by_id
            .get(&id)
            .map(|&slot| self.slots[slot as usize].as_ref().unwrap().profile.name.as_str())
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Index-size counters.
    pub fn stats(&self) -> DiscoveryTierStats {
        DiscoveryTierStats {
            datasets: self.live,
            key_columns: self.num_key_columns,
            lsh_buckets: self.lsh.len(),
            schema_buckets: self.schema_buckets.len(),
            posting_terms: self.terms.num_terms(),
        }
    }

    /// Register a dataset profile, returning its interned id.
    /// Re-registering a name is ignored (first registration wins) to keep
    /// budget accounting upstream honest; use replace for re-uploads.
    pub fn register(&mut self, profile: DatasetProfile) -> DatasetId {
        if let Some(&slot) = self.by_name.get(&profile.name) {
            return self.slots[slot as usize].as_ref().unwrap().id;
        }
        let id = self.ids.intern(&profile.name);
        let slot = match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        let fingerprint = schema_fingerprint(&profile);
        self.index_derived(slot, &profile, fingerprint);
        self.by_name.insert(profile.name.clone(), slot);
        self.by_id.insert(id, slot);
        self.slots[slot as usize] = Some(IndexedDataset { id, fingerprint, profile });
        self.live += 1;
        id
    }

    /// Remove a dataset's profile; returns false when the name is unknown.
    /// All derived state (postings, schema buckets, LSH refs) is adjusted
    /// incrementally — no corpus rescan — and ends identical to a fresh
    /// rebuild over the survivors (pinned by the parity property tests).
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(slot) = self.by_name.remove(name) else {
            return false;
        };
        let ds = self.slots[slot as usize].take().expect("by_name points at a live slot");
        self.by_id.remove(&ds.id);
        self.unindex_derived(slot, &ds.profile, ds.fingerprint);
        self.free_slots.push(slot);
        self.live -= 1;
        true
    }

    /// Replace (or insert) a dataset's profile in place: the dataset keeps
    /// its slot and id, and only its own derived entries are swapped.
    pub fn replace(&mut self, profile: DatasetProfile) {
        let Some(&slot) = self.by_name.get(&profile.name) else {
            self.register(profile);
            return;
        };
        let old = self.slots[slot as usize].take().expect("by_name points at a live slot");
        self.unindex_derived(slot, &old.profile, old.fingerprint);
        let fingerprint = schema_fingerprint(&profile);
        self.index_derived(slot, &profile, fingerprint);
        self.slots[slot as usize] = Some(IndexedDataset { id: old.id, fingerprint, profile });
    }

    /// Add one profile's derived entries (postings, key columns, LSH refs,
    /// schema bucket). Called before the profile lands in its slot.
    fn index_derived(&mut self, slot: u32, profile: &DatasetProfile, fingerprint: u64) {
        for (ci, col) in profile.columns.iter().enumerate() {
            self.terms.add_document(&col.terms);
            if self.is_key_like(col) {
                self.num_key_columns += 1;
                if self.lsh_built {
                    self.lsh_insert(slot, ci as u32, col);
                }
            }
        }
        // Lazy LSH: small corpora never hash a band. The build backfills
        // every live slot plus the profile being registered.
        if !self.lsh_built && self.num_key_columns > self.config.brute_force_limit {
            self.build_lsh(slot, profile);
        }
        let bucket = self.schema_buckets.entry(fingerprint).or_default();
        let pos = bucket.partition_point(|&s| s < slot);
        bucket.insert(pos, slot);
    }

    /// Remove one profile's derived entries. Called after the profile left
    /// its slot.
    fn unindex_derived(&mut self, slot: u32, profile: &DatasetProfile, fingerprint: u64) {
        for (ci, col) in profile.columns.iter().enumerate() {
            self.terms.remove_document(&col.terms);
            if self.is_key_like(col) {
                self.num_key_columns -= 1;
                if self.lsh_built {
                    self.lsh_remove(slot, ci as u32, col);
                }
            }
        }
        if let Some(bucket) = self.schema_buckets.get_mut(&fingerprint) {
            bucket.retain(|&s| s != slot);
            let empty = bucket.is_empty();
            if empty {
                self.schema_buckets.remove(&fingerprint);
            }
        }
    }

    fn lsh_insert(&mut self, slot: u32, ci: u32, col: &ColumnProfile) {
        for (b, h) in col.minhash.band_hashes(self.config.lsh_bands).into_iter().enumerate() {
            self.lsh.entry((b as u32, h)).or_default().push((slot, ci));
        }
    }

    fn lsh_remove(&mut self, slot: u32, ci: u32, col: &ColumnProfile) {
        for (b, h) in col.minhash.band_hashes(self.config.lsh_bands).into_iter().enumerate() {
            let key = (b as u32, h);
            let mut now_empty = false;
            if let Some(bucket) = self.lsh.get_mut(&key) {
                bucket.retain(|&r| r != (slot, ci));
                now_empty = bucket.is_empty();
            }
            if now_empty {
                self.lsh.remove(&key);
            }
        }
    }

    /// First crossing of `brute_force_limit`: materialize the band table
    /// from every live profile plus the one mid-registration.
    fn build_lsh(&mut self, pending_slot: u32, pending: &DatasetProfile) {
        self.lsh_built = true;
        let mut refs: Vec<(u32, u32)> = Vec::new();
        for (slot, ds) in self.slots.iter().enumerate() {
            let Some(ds) = ds.as_ref() else { continue };
            for (ci, col) in ds.profile.columns.iter().enumerate() {
                if self.is_key_like(col) {
                    refs.push((slot as u32, ci as u32));
                }
            }
        }
        for (slot, ci) in refs {
            let col = &self.slots[slot as usize].as_ref().unwrap().profile.columns[ci as usize];
            for (b, h) in col.minhash.band_hashes(self.config.lsh_bands).into_iter().enumerate() {
                self.lsh.entry((b as u32, h)).or_default().push((slot, ci));
            }
        }
        for (ci, col) in pending.columns.iter().enumerate() {
            if self.is_key_like(col) {
                self.lsh_insert(pending_slot, ci as u32, col);
            }
        }
    }

    fn is_key_like(&self, col: &ColumnProfile) -> bool {
        col.data_type.is_keyable()
            && col.distinct >= self.config.min_key_distinct
            && !col.minhash.is_empty()
    }

    /// The term space this index censuses into (shared handle).
    pub fn term_space(&self) -> &TermSpace {
        &self.terms
    }

    /// Current IDF table, memoized by the term space until the next
    /// mutation (of *any* index sharing the space). The warm path takes
    /// only a read lock; the table is rebuilt from the postings only after
    /// an invalidation.
    fn idf(&self) -> Arc<FxHashMap<String, f64>> {
        self.terms.idf()
    }

    /// Live `(slot, dataset)` pairs in ascending slot order — the canonical
    /// deterministic iteration both the exact join path and the linear
    /// references use.
    fn live(&self) -> impl Iterator<Item = (u32, &IndexedDataset)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|ds| (i as u32, ds)))
    }

    /// `Discover(R, ⋈)`: join candidates for a query dataset, best column
    /// pair per provider dataset, sorted by descending Jaccard (name
    /// ascending on ties). Exact column sweep below `brute_force_limit`,
    /// LSH banding above it.
    pub fn find_join_candidates(&self, query: &DatasetProfile) -> Vec<JoinCandidate> {
        let use_lsh = self.num_key_columns > self.config.brute_force_limit;
        debug_assert!(!use_lsh || self.lsh_built, "crossing the limit builds the table");
        self.join_candidates_impl(query, use_lsh)
    }

    /// Retained linear-scan reference for the join tier: always the exact
    /// sweep over every indexed key column, regardless of corpus size. The
    /// indexed path must match it bit for bit whenever it, too, runs exact
    /// (pinned by the `index_parity` property suite); the LSH path trades
    /// recall for scale by design.
    pub fn find_join_candidates_linear(&self, query: &DatasetProfile) -> Vec<JoinCandidate> {
        self.join_candidates_impl(query, false)
    }

    fn join_candidates_impl(&self, query: &DatasetProfile, use_lsh: bool) -> Vec<JoinCandidate> {
        let mut best: FxHashMap<u32, BestPair> = FxHashMap::default();
        // One candidate arena shared across all query columns (cleared, not
        // reallocated, per column).
        let mut seen: FxHashSet<ColRef> = FxHashSet::default();
        let mut refs: Vec<ColRef> = Vec::new();
        for (qi, qcol) in query.columns.iter().enumerate() {
            if qcol.non_null == 0 || !self.is_key_like(qcol) {
                continue;
            }
            if use_lsh {
                seen.clear();
                refs.clear();
                for (b, h) in
                    qcol.minhash.band_hashes(self.config.lsh_bands).into_iter().enumerate()
                {
                    if let Some(bucket) = self.lsh.get(&(b as u32, h)) {
                        for &cref in bucket {
                            if seen.insert(cref) {
                                refs.push(cref);
                            }
                        }
                    }
                }
                // Ascending (slot, column) order: deterministic, and equal
                // to the exact sweep's order on the same candidate set.
                refs.sort_unstable();
                for &(slot, ci) in &refs {
                    self.consider_pair(query, qi as u32, qcol, slot, ci, &mut best);
                }
            } else {
                for (slot, ds) in self.live() {
                    for (ci, ccol) in ds.profile.columns.iter().enumerate() {
                        if self.is_key_like(ccol) {
                            self.consider_pair(query, qi as u32, qcol, slot, ci as u32, &mut best);
                        }
                    }
                }
            }
        }
        self.rank_join_candidates(query, best)
    }

    /// Score one (query column, candidate column) pair and fold it into the
    /// per-dataset best map. Ties keep the earliest pair in iteration order
    /// (query columns in schema order, candidates in ascending (slot, col)),
    /// which makes the result independent of hash-set iteration order.
    fn consider_pair(
        &self,
        query: &DatasetProfile,
        qi: u32,
        qcol: &ColumnProfile,
        slot: u32,
        ci: u32,
        best: &mut FxHashMap<u32, BestPair>,
    ) {
        let ds = self.slots[slot as usize].as_ref().expect("candidate refs are live");
        if ds.profile.name == query.name {
            return; // don't join a dataset with itself
        }
        let ccol = &ds.profile.columns[ci as usize];
        if ccol.data_type != qcol.data_type {
            return; // int keys join int keys, str join str
        }
        let j = qcol.minhash.jaccard(&ccol.minhash);
        if j < self.config.join_threshold {
            return;
        }
        match best.get(&slot) {
            Some(existing) if existing.jaccard >= j => {}
            _ => {
                best.insert(slot, BestPair { jaccard: j, query_col: qi, cand_col: ci });
            }
        }
    }

    fn rank_join_candidates(
        &self,
        query: &DatasetProfile,
        best: FxHashMap<u32, BestPair>,
    ) -> Vec<JoinCandidate> {
        let mut ranked: Vec<(u32, BestPair)> = best.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.jaccard.partial_cmp(&a.1.jaccard).unwrap_or(std::cmp::Ordering::Equal).then_with(
                || {
                    let name =
                        |slot: u32| &self.slots[slot as usize].as_ref().unwrap().profile.name;
                    name(a.0).cmp(name(b.0))
                },
            )
        });
        // Query-column names are shared across candidates on the same key.
        let mut qnames: Vec<Option<Arc<str>>> = vec![None; query.columns.len()];
        ranked
            .into_iter()
            .map(|(slot, bp)| {
                let ds = self.slots[slot as usize].as_ref().unwrap();
                let qname = qnames[bp.query_col as usize]
                    .get_or_insert_with(|| {
                        Arc::from(query.columns[bp.query_col as usize].name.as_str())
                    })
                    .clone();
                JoinCandidate {
                    dataset: ds.id,
                    query_column: qname,
                    candidate_column: Arc::from(
                        ds.profile.columns[bp.cand_col as usize].name.as_str(),
                    ),
                    jaccard: bp.jaccard,
                }
            })
            .collect()
    }

    /// `Discover(R, ∪)`: union candidates — datasets whose schema matches
    /// the query's (same column names and types) with mean column cosine
    /// ≥ τ. Served from the schema-fingerprint bucket: one hash lookup,
    /// then cosine scoring over the bucket members only.
    pub fn find_union_candidates(&self, query: &DatasetProfile) -> Vec<UnionCandidate> {
        let Some(bucket) = self.schema_buckets.get(&schema_fingerprint(query)) else {
            return Vec::new();
        };
        let idf = self.idf();
        let default_idf = self.terms.default_idf();
        // Each query column's TF-IDF norm, once — not once per candidate.
        let qnorms: Vec<f64> =
            query.columns.iter().map(|c| c.terms.weighted_norm(&idf, default_idf)).collect();
        let mut out = Vec::new();
        'ds: for &slot in bucket {
            let ds = self.slots[slot as usize].as_ref().expect("buckets hold live slots");
            // Re-verify compatibility (fingerprint collisions must not leak
            // through); same checks as the linear reference.
            if ds.profile.name == query.name || ds.profile.columns.len() != query.columns.len() {
                continue;
            }
            let mut cos_sum = 0.0;
            for (qcol, &qnorm) in query.columns.iter().zip(&qnorms) {
                let Some(ccol) = ds.profile.column(&qcol.name) else { continue 'ds };
                if ccol.data_type != qcol.data_type {
                    continue 'ds;
                }
                cos_sum += qcol.terms.cosine_prenormed(&ccol.terms, &idf, default_idf, qnorm);
            }
            let score = cos_sum / query.columns.len() as f64;
            if score >= self.config.union_threshold {
                out.push(UnionCandidate { dataset: ds.id, score });
            }
        }
        self.rank_union_candidates(out)
    }

    /// Retained linear-scan reference for the union tier: the original
    /// full pass over every dataset. The bucket index must match it bit
    /// for bit (pinned by the `index_parity` property suite).
    pub fn find_union_candidates_linear(&self, query: &DatasetProfile) -> Vec<UnionCandidate> {
        let idf = self.idf();
        let default_idf = self.terms.default_idf();
        let mut out = Vec::new();
        'ds: for (_, ds) in self.live() {
            if ds.profile.name == query.name || ds.profile.columns.len() != query.columns.len() {
                continue;
            }
            let mut cos_sum = 0.0;
            for qcol in &query.columns {
                let Some(ccol) = ds.profile.column(&qcol.name) else { continue 'ds };
                if ccol.data_type != qcol.data_type {
                    continue 'ds;
                }
                cos_sum += qcol.terms.cosine(&ccol.terms, &idf, default_idf);
            }
            let score = cos_sum / query.columns.len() as f64;
            if score >= self.config.union_threshold {
                out.push(UnionCandidate { dataset: ds.id, score });
            }
        }
        self.rank_union_candidates(out)
    }

    fn rank_union_candidates(&self, mut out: Vec<UnionCandidate>) -> Vec<UnionCandidate> {
        out.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then_with(|| {
                let name = |id: DatasetId| self.name_of(id).unwrap_or_default();
                name(a.dataset).cmp(name(b.dataset))
            })
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::{Relation, RelationBuilder};

    fn profile(r: &Relation) -> DatasetProfile {
        DatasetProfile::of(r, 128)
    }

    fn index_with(relations: &[&Relation]) -> DiscoveryIndex {
        let mut idx = DiscoveryIndex::new(DiscoveryConfig::default());
        for r in relations {
            idx.register(profile(r));
        }
        idx
    }

    fn name(idx: &DiscoveryIndex, id: DatasetId) -> &str {
        idx.name_of(id).expect("candidate id resolves")
    }

    fn train() -> Relation {
        RelationBuilder::new("train")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("y", &(0..50).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn finds_join_candidate_on_shared_keys() {
        let prov = RelationBuilder::new("weather")
            .int_col("zone_id", &(0..50).collect::<Vec<_>>())
            .float_col("temp", &(0..50).map(|i| i as f64 * 0.5).collect::<Vec<_>>())
            .build()
            .unwrap();
        let idx = index_with(&[&prov]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 1);
        assert_eq!(name(&idx, cands[0].dataset), "weather");
        assert_eq!(&*cands[0].query_column, "zone");
        assert_eq!(&*cands[0].candidate_column, "zone_id");
        assert!(cands[0].jaccard > 0.9);
    }

    #[test]
    fn no_join_candidate_for_disjoint_keys() {
        let prov = RelationBuilder::new("other")
            .int_col("id", &(1000..1050).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let idx = index_with(&[&prov]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn self_join_excluded() {
        let t = train();
        let idx = index_with(&[&t]);
        assert!(idx.find_join_candidates(&profile(&t)).is_empty());
    }

    #[test]
    fn best_column_pair_reported_per_dataset() {
        // Provider has two int columns; one overlaps much more.
        let prov = RelationBuilder::new("p")
            .int_col("good", &(0..50).collect::<Vec<_>>())
            .int_col("bad", &(40..90).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let idx = index_with(&[&prov]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 1);
        assert_eq!(&*cands[0].candidate_column, "good");
    }

    #[test]
    fn finds_union_candidates_with_same_schema() {
        let t = RelationBuilder::new("train")
            .str_col("boro", &["brooklyn", "queens", "bronx"])
            .float_col("y", &[1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let same = RelationBuilder::new("more_rows")
            .str_col("boro", &["brooklyn", "manhattan", "queens"])
            .float_col("y", &[4.0, 5.0, 6.0])
            .build()
            .unwrap();
        let unrelated = RelationBuilder::new("unrelated")
            .str_col("boro", &["tokyo", "osaka", "kyoto"])
            .float_col("y", &[1e6, 2e6, 3e6])
            .build()
            .unwrap();
        let wrong_schema = RelationBuilder::new("wrong")
            .str_col("city", &["brooklyn"])
            .float_col("y", &[1.0])
            .build()
            .unwrap();
        let idx = index_with(&[&same, &unrelated, &wrong_schema]);
        let cands = idx.find_union_candidates(&profile(&t));
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert_eq!(name(&idx, cands[0].dataset), "more_rows");
        assert!(cands[0].score > 0.5);
    }

    #[test]
    fn lsh_path_finds_high_similarity_pairs() {
        // Force the LSH path (no brute force) and check that near-identical
        // key columns still collide in some band.
        let cfg = DiscoveryConfig { brute_force_limit: 0, ..Default::default() };
        let mut idx = DiscoveryIndex::new(cfg);
        let prov = RelationBuilder::new("prov")
            .int_col("zone", &(0..200).collect::<Vec<_>>())
            .float_col("v", &[0.0; 200])
            .build()
            .unwrap();
        idx.register(profile(&prov));
        let q = RelationBuilder::new("q")
            .int_col("zone", &(0..200).collect::<Vec<_>>())
            .float_col("y", &[0.0; 200])
            .build()
            .unwrap();
        let cands = idx.find_join_candidates(&profile(&q));
        assert_eq!(cands.len(), 1, "identical key sets must LSH-collide");
        assert!(cands[0].jaccard > 0.95);
    }

    #[test]
    fn lsh_path_prunes_low_similarity_pairs() {
        // Under pure LSH, a weakly-similar pair (J ≈ 0.1) should almost
        // never surface — that's the scalability trade documented on
        // `brute_force_limit`.
        let cfg = DiscoveryConfig { brute_force_limit: 0, ..Default::default() };
        let mut idx = DiscoveryIndex::new(cfg);
        let prov = RelationBuilder::new("prov")
            .int_col("zone", &(180..380).collect::<Vec<_>>())
            .float_col("v", &[0.0; 200])
            .build()
            .unwrap();
        idx.register(profile(&prov));
        let q = RelationBuilder::new("q")
            .int_col("zone", &(0..200).collect::<Vec<_>>())
            .float_col("y", &[0.0; 200])
            .build()
            .unwrap();
        let cands = idx.find_join_candidates(&profile(&q));
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn small_corpora_never_touch_the_lsh_table() {
        // Regression for `brute_force_limit` honoring: below the limit no
        // band is ever hashed into the table — not at registration, not by
        // queries (the exact path serves them) — and the table only
        // materializes when the corpus crosses the limit.
        let cfg = DiscoveryConfig { brute_force_limit: 3, ..Default::default() };
        let mut idx = DiscoveryIndex::new(cfg);
        let mk = |name: &str, off: i64| {
            RelationBuilder::new(name)
                .int_col("zone", &(off..off + 50).collect::<Vec<_>>())
                .float_col("v", &[0.0; 50])
                .build()
                .unwrap()
        };
        for i in 0..3 {
            idx.register(profile(&mk(&format!("d{i}"), i * 10)));
        }
        assert!(!idx.find_join_candidates(&profile(&train())).is_empty());
        assert_eq!(idx.stats().lsh_buckets, 0, "below the limit the table stays empty");
        assert_eq!(idx.stats().key_columns, 3);

        // The 4th key column crosses the limit: the table backfills all
        // registered columns at once.
        idx.register(profile(&mk("d3", 5)));
        assert!(idx.stats().lsh_buckets > 0, "crossing the limit builds the table");
        let q = profile(&train());
        let exact_like: Vec<String> = idx
            .find_join_candidates(&q)
            .iter()
            .map(|c| idx.name_of(c.dataset).unwrap().to_string())
            .collect();
        assert!(exact_like.contains(&"d0".to_string()), "{exact_like:?}");
    }

    #[test]
    fn indexed_union_matches_linear_reference() {
        let t = RelationBuilder::new("q")
            .str_col("boro", &["brooklyn", "queens", "bronx"])
            .float_col("y", &[1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let mk = |name: &str, words: [&str; 3]| {
            RelationBuilder::new(name)
                .str_col("boro", &words)
                .float_col("y", &[4.0, 5.0, 6.0])
                .build()
                .unwrap()
        };
        let a = mk("a", ["brooklyn", "manhattan", "queens"]);
        let b = mk("b", ["brooklyn", "queens", "bronx"]);
        let c = mk("c", ["tokyo", "osaka", "kyoto"]);
        let idx = index_with(&[&a, &b, &c]);
        let indexed = idx.find_union_candidates(&profile(&t));
        let linear = idx.find_union_candidates_linear(&profile(&t));
        assert_eq!(indexed, linear, "bucket index must be bit-identical to the scan");
        assert_eq!(indexed.len(), 2);
    }

    #[test]
    fn idf_cache_invalidated_by_registration() {
        let t = RelationBuilder::new("q")
            .str_col("boro", &["brooklyn", "queens", "bronx"])
            .float_col("y", &[1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let same = |name: &str| {
            RelationBuilder::new(name)
                .str_col("boro", &["brooklyn", "manhattan", "queens"])
                .float_col("y", &[4.0, 5.0, 6.0])
                .build()
                .unwrap()
        };
        let mut idx = index_with(&[&same("a")]);
        // Prime the cache.
        let first = idx.find_union_candidates(&profile(&t));
        assert_eq!(first.len(), 1);
        // A new registration must be visible (stale IDF would miss it or
        // keep stale weights).
        idx.register(profile(&same("b")));
        let second = idx.find_union_candidates(&profile(&t));
        assert_eq!(second.len(), 2, "{second:?}");
        // Cached and fresh IDF agree on identical corpora.
        let idx2 = index_with(&[&same("a"), &same("b")]);
        let fresh = idx2.find_union_candidates(&profile(&t));
        let cached: Vec<f64> = second.iter().map(|c| c.score).collect();
        let fresh_scores: Vec<f64> = fresh.iter().map(|c| c.score).collect();
        assert_eq!(cached, fresh_scores);
    }

    #[test]
    fn remove_and_replace_rebuild_derived_state() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let weak = RelationBuilder::new("weak")
            .int_col("zone", &(15..65).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let mut idx = index_with(&[&strong, &weak]);
        assert_eq!(idx.find_join_candidates(&profile(&train())).len(), 2);

        // Remove: the candidate disappears; unknown names are a no-op.
        assert!(idx.remove("strong"));
        assert!(!idx.remove("strong"));
        assert_eq!(idx.len(), 1);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 1);
        assert_eq!(name(&idx, cands[0].dataset), "weak");
        assert!(idx.profile("strong").is_none());

        // Replace: weak's keys become disjoint → no candidates at all.
        let disjoint = RelationBuilder::new("weak")
            .int_col("zone", &(1000..1050).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        idx.replace(profile(&disjoint));
        assert_eq!(idx.len(), 1);
        assert!(idx.find_join_candidates(&profile(&train())).is_empty());
        // Replace of an unknown name inserts.
        idx.replace(profile(&strong));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.find_join_candidates(&profile(&train())).len(), 1);
    }

    #[test]
    fn ids_stable_across_remove_replace_churn() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let mut idx = index_with(&[&strong]);
        let id = idx.id_of("strong").unwrap();
        idx.remove("strong");
        assert_eq!(idx.id_of("strong"), None);
        idx.register(profile(&strong));
        assert_eq!(idx.id_of("strong"), Some(id), "re-registering a name keeps its id");
        idx.replace(profile(&strong));
        assert_eq!(idx.id_of("strong"), Some(id));
        assert_eq!(idx.name_of(id), Some("strong"));
    }

    #[test]
    fn from_profiles_matches_incremental_registration() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let incremental = index_with(&[&strong]);
        let rebuilt = DiscoveryIndex::from_profiles(
            DiscoveryConfig::default(),
            incremental.profiles().cloned().collect::<Vec<_>>(),
        );
        let a = incremental.find_join_candidates(&profile(&train()));
        let b = rebuilt.find_join_candidates(&profile(&train()));
        assert_eq!(a, b, "rebuilt index must discover identically");
    }

    #[test]
    fn duplicate_registration_ignored() {
        let t = train();
        let mut idx = DiscoveryIndex::new(DiscoveryConfig::default());
        let id1 = idx.register(profile(&t));
        let id2 = idx.register(profile(&t));
        assert_eq!(idx.len(), 1);
        assert_eq!(id1, id2);
    }

    #[test]
    fn candidates_sorted_by_similarity() {
        let strong = RelationBuilder::new("strong")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        // J = 35/65 ≈ 0.54: comfortably above threshold (0.3) even under
        // MinHash estimation noise, and clearly below strong's ≈ 1.0.
        let weak = RelationBuilder::new("weak")
            .int_col("zone", &(15..65).collect::<Vec<_>>())
            .float_col("v", &[0.0; 50])
            .build()
            .unwrap();
        let idx = index_with(&[&weak, &strong]);
        let cands = idx.find_join_candidates(&profile(&train()));
        assert_eq!(cands.len(), 2);
        assert_eq!(name(&idx, cands[0].dataset), "strong");
        assert!(cands[0].jaccard > cands[1].jaccard);
    }

    #[test]
    fn stats_track_index_shape() {
        let idx = index_with(&[&train()]);
        let stats = idx.stats();
        assert_eq!(stats.datasets, 1);
        assert_eq!(stats.key_columns, 1, "zone is the only key-like column");
        assert_eq!(stats.schema_buckets, 1);
        assert!(stats.posting_terms > 0);
        assert_eq!(stats.lsh_buckets, 0);
    }
}
