//! Column/dataset profiles: the sketch bundle discovery operates on.

use crate::minhash::MinHashSignature;
use crate::tfidf::TermVector;
use mileena_relation::{DataType, Relation};
use serde::{Deserialize, Serialize};

/// Discovery sketch of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Distinct non-NULL values.
    pub distinct: usize,
    /// Non-NULL row count.
    pub non_null: usize,
    /// MinHash over distinct values (join-key similarity).
    pub minhash: MinHashSignature,
    /// TF vector over tokens (unionability similarity).
    pub terms: TermVector,
}

/// Discovery sketches for a whole dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Per-column profiles, in schema order.
    pub columns: Vec<ColumnProfile>,
}

impl DatasetProfile {
    /// Build the profile of a relation (`k` = MinHash signature length).
    pub fn of(relation: &Relation, k: usize) -> Self {
        let columns = relation
            .schema()
            .fields()
            .iter()
            .zip(relation.columns())
            .map(|(f, col)| ColumnProfile {
                name: f.name.clone(),
                data_type: f.data_type,
                distinct: col.distinct_count(),
                non_null: col.len() - col.null_count(),
                minhash: MinHashSignature::from_column(col, k),
                terms: TermVector::from_column(col),
            })
            .collect();
        DatasetProfile { name: relation.name().to_string(), rows: relation.num_rows(), columns }
    }

    /// Profile of a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Columns that could serve as join keys (keyable type, mostly distinct
    /// enough to carry information, mostly non-NULL).
    pub fn keyable_columns(&self) -> impl Iterator<Item = &ColumnProfile> {
        self.columns.iter().filter(|c| c.data_type.is_keyable() && c.non_null > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;

    #[test]
    fn profiles_every_column() {
        let r = RelationBuilder::new("d")
            .int_col("k", &[1, 1, 2])
            .float_col("x", &[0.5, 1.5, 2.5])
            .opt_str_col("s", &[Some("a".into()), None, Some("b".into())])
            .build()
            .unwrap();
        let p = DatasetProfile::of(&r, 32);
        assert_eq!(p.rows, 3);
        assert_eq!(p.columns.len(), 3);
        let k = p.column("k").unwrap();
        assert_eq!(k.distinct, 2);
        assert_eq!(k.non_null, 3);
        let s = p.column("s").unwrap();
        assert_eq!(s.non_null, 2);
        assert!(p.column("zz").is_none());
        // keyable: k (int) and s (str); x (float) excluded.
        let keyables: Vec<&str> = p.keyable_columns().map(|c| c.name.as_str()).collect();
        assert_eq!(keyables, vec!["k", "s"]);
    }

    #[test]
    fn serde_roundtrip() {
        let r = RelationBuilder::new("d").int_col("k", &[1]).build().unwrap();
        let p = DatasetProfile::of(&r, 16);
        let json = serde_json::to_string(&p).unwrap();
        let back: DatasetProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
