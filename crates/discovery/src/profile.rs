//! Column/dataset profiles: the sketch bundle discovery operates on.

use crate::minhash::MinHashSignature;
use crate::tfidf::TermVector;
use mileena_relation::{Column, DataType, Relation};
use serde::{Deserialize, Serialize};

/// Discovery sketch of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Distinct non-NULL values.
    pub distinct: usize,
    /// Non-NULL row count.
    pub non_null: usize,
    /// MinHash over distinct values (join-key similarity).
    pub minhash: MinHashSignature,
    /// TF vector over tokens (unionability similarity).
    pub terms: TermVector,
}

/// Discovery sketches for a whole dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Per-column profiles, in schema order.
    pub columns: Vec<ColumnProfile>,
}

/// Profile one column; `redact_strings` withholds the term vector of
/// string-valued columns (their tokens are raw cell values).
fn profile_column(
    name: &str,
    data_type: DataType,
    col: &Column,
    k: usize,
    redact_strings: bool,
) -> ColumnProfile {
    ColumnProfile {
        name: name.to_string(),
        data_type,
        distinct: col.distinct_count(),
        non_null: col.len() - col.null_count(),
        minhash: MinHashSignature::from_column(col, k),
        terms: if redact_strings && matches!(col, Column::Str { .. }) {
            TermVector::default()
        } else {
            TermVector::from_column(col)
        },
    }
}

impl DatasetProfile {
    /// Build the profile of a relation (`k` = MinHash signature length).
    pub fn of(relation: &Relation, k: usize) -> Self {
        let columns = relation
            .schema()
            .fields()
            .iter()
            .zip(relation.columns())
            .map(|(f, col)| profile_column(&f.name, f.data_type, col, k, false))
            .collect();
        DatasetProfile { name: relation.name().to_string(), rows: relation.num_rows(), columns }
    }

    /// Requester-side profile: only columns the requester exposes to the
    /// platform are profiled — the task columns plus every keyable (join
    /// probe) column — and **string-valued columns carry no term vector**
    /// (raw string tokens would otherwise cross the boundary; MinHash
    /// signatures are already hashed, matching the public-key-domain
    /// assumption). Numeric term vectors are magnitude buckets, never
    /// exact values, so they stay.
    ///
    /// All keyable columns are kept — not just join keys the requester
    /// offers for sketching — because union discovery matches profiles by
    /// full schema shape; what crosses for an un-offered keyable column is
    /// schema metadata plus hashed signatures only.
    pub fn of_requester(relation: &Relation, task_columns: &[&str], k: usize) -> Self {
        let columns = relation
            .schema()
            .fields()
            .iter()
            .zip(relation.columns())
            .filter(|(f, _)| task_columns.contains(&f.name.as_str()) || f.data_type.is_keyable())
            .map(|(f, col)| profile_column(&f.name, f.data_type, col, k, true))
            .collect();
        DatasetProfile { name: relation.name().to_string(), rows: relation.num_rows(), columns }
    }

    /// Profile of a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Columns that could serve as join keys (keyable type, mostly distinct
    /// enough to carry information, mostly non-NULL).
    pub fn keyable_columns(&self) -> impl Iterator<Item = &ColumnProfile> {
        self.columns.iter().filter(|c| c.data_type.is_keyable() && c.non_null > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;

    #[test]
    fn profiles_every_column() {
        let r = RelationBuilder::new("d")
            .int_col("k", &[1, 1, 2])
            .float_col("x", &[0.5, 1.5, 2.5])
            .opt_str_col("s", &[Some("a".into()), None, Some("b".into())])
            .build()
            .unwrap();
        let p = DatasetProfile::of(&r, 32);
        assert_eq!(p.rows, 3);
        assert_eq!(p.columns.len(), 3);
        let k = p.column("k").unwrap();
        assert_eq!(k.distinct, 2);
        assert_eq!(k.non_null, 3);
        let s = p.column("s").unwrap();
        assert_eq!(s.non_null, 2);
        assert!(p.column("zz").is_none());
        // keyable: k (int) and s (str); x (float) excluded.
        let keyables: Vec<&str> = p.keyable_columns().map(|c| c.name.as_str()).collect();
        assert_eq!(keyables, vec!["k", "s"]);
    }

    #[test]
    fn requester_profile_redacts_strings_and_hidden_columns() {
        let r = RelationBuilder::new("train")
            .int_col("zone", &[1, 2, 3])
            .float_col("y", &[0.1, 0.2, 0.3])
            .float_col("hidden_metric", &[9.0, 9.5, 9.9])
            .str_col("note", &["Top Secret A", "Top Secret B", "Top Secret C"])
            .build()
            .unwrap();
        let p = DatasetProfile::of_requester(&r, &["y"], 32);
        // zone (keyable), y (task), note (keyable str); hidden_metric is
        // neither and must not be profiled.
        assert!(p.column("hidden_metric").is_none());
        let note = p.column("note").unwrap();
        assert_eq!(note.terms.num_terms(), 0, "string tokens must not cross the boundary");
        assert!(p.column("zone").unwrap().terms.num_terms() > 0, "numeric buckets stay");
        // Numeric profiles are identical to the full-profile form, so
        // discovery behaves the same for numeric-only requesters.
        let full = DatasetProfile::of(&r, 32);
        assert_eq!(p.column("zone"), full.column("zone"));
        assert_eq!(p.column("y"), full.column("y"));
    }

    #[test]
    fn serde_roundtrip() {
        let r = RelationBuilder::new("d").int_col("k", &[1]).build().unwrap();
        let p = DatasetProfile::of(&r, 16);
        let json = serde_json::to_string(&p).unwrap();
        let back: DatasetProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
