//! Differential privacy for Mileena (§2.1, §3.3 of the paper).
//!
//! Three mechanisms cover the paper's Figure 5 comparison:
//!
//! - **FPM** ([`fpm`]) — the paper's *Factorized Privacy Mechanism*: apply
//!   the Gaussian mechanism to semi-ring sketches **once, locally, before
//!   upload**. Privatized sketches are then composable (through semi-ring
//!   operators) and reusable (post-processing is free), so search cost in
//!   privacy budget is *zero per request* — the property that lets FPM
//!   "scale to arbitrary corpus sizes and numbers of requests".
//! - **APM** ([`apm`]) — the global-trust baseline [47]: every search-time
//!   aggregate over a materialized join/union consumes fresh budget, so a
//!   provider's ε must be divided across all evaluations of all requests.
//! - **TPM** ([`tpm`]) — the local-DP baseline [50]: noise every tuple at
//!   upload; variance grows with the number of rows.
//!
//! Assumptions documented per the DP literature for factorized/keyed
//! releases (and inherited from the paper's Saibot lineage [20]):
//! join-key *domains* are treated as public (group identities are released;
//! only group contents are protected), and feature values are clipped to
//! known bounds before sketching so sensitivities are finite.

pub mod apm;
pub mod budget;
pub mod error;
pub mod fpm;
pub mod histogram;
pub mod mechanism;
pub mod noise;
pub mod sensitivity;
pub mod tpm;

pub use apm::AggregateMechanism;
pub use budget::{BudgetAccountant, PrivacyBudget};
pub use error::{PrivacyError, Result};
pub use fpm::{FactorizedMechanism, FpmConfig, PrivatizedSketch};
pub use histogram::{noisy_histogram, Histogram};
pub use mechanism::{gaussian_sigma, laplace_scale};
pub use noise::NoiseRng;
pub use sensitivity::{clip_relation, triple_l2_sensitivity, FeatureBounds};
pub use tpm::TupleMechanism;
