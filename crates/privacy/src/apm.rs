//! APM — the Aggregate Privacy Mechanism baseline ([47] in the paper).
//!
//! APM assumes the global trust model: the central search computes exact
//! aggregates over materialized join/union results and adds noise *per
//! query*. Every candidate evaluation of every request consumes fresh
//! budget from each involved dataset, so per-query ε shrinks as
//! `ε_i / (expected queries)` — utility collapses as corpus size or request
//! count grows, which is precisely Figure 5(b,c)'s comparison axis.

use crate::budget::{BudgetAccountant, PrivacyBudget};
use crate::error::{PrivacyError, Result};
use crate::fpm::noise_triple;
use crate::mechanism::gaussian_sigma;
use crate::noise::NoiseRng;
use crate::sensitivity::{triple_l2_sensitivity, FeatureBounds};
use mileena_semiring::CovarTriple;

/// The per-query aggregate mechanism.
#[derive(Debug, Clone)]
pub struct AggregateMechanism {
    bound: f64,
    accountant: BudgetAccountant,
    per_query: mileena_relation::FxHashMap<String, PrivacyBudget>,
    rng: NoiseRng,
}

impl AggregateMechanism {
    /// New mechanism; `bound` is the feature clip bound, `seed` drives the
    /// noise stream.
    pub fn new(bound: f64, seed: u64) -> Self {
        AggregateMechanism {
            bound,
            accountant: BudgetAccountant::new(),
            per_query: mileena_relation::FxHashMap::default(),
            rng: NoiseRng::seeded(seed),
        }
    }

    /// Register a dataset with its total budget, pre-divided across the
    /// expected number of queries (how APM deployments provision: the
    /// workload size must be fixed up front — itself a practical weakness
    /// FPM does not share).
    pub fn register(
        &mut self,
        dataset: &str,
        total: PrivacyBudget,
        expected_queries: usize,
    ) -> Result<()> {
        if expected_queries == 0 {
            return Err(PrivacyError::InvalidArgument("expected_queries must be > 0".into()));
        }
        self.accountant.register(dataset, total)?;
        self.per_query.insert(dataset.to_string(), total.split(expected_queries)?);
        Ok(())
    }

    /// Remaining budget for a dataset.
    pub fn remaining(&self, dataset: &str) -> Result<PrivacyBudget> {
        self.accountant.remaining(dataset)
    }

    /// Answer one query: privatize `triple` (the exact aggregate of a
    /// materialized augmented relation), charging every involved dataset
    /// one per-query budget unit. Errors — without releasing anything — if
    /// any involved dataset is exhausted.
    ///
    /// Noise variance is the sum over involved datasets of each dataset's
    /// calibrated variance (one neighboring-row change in any single input
    /// dataset must be masked).
    pub fn privatize_query(
        &mut self,
        triple: &CovarTriple,
        involved: &[&str],
    ) -> Result<CovarTriple> {
        if involved.is_empty() {
            return Err(PrivacyError::InvalidArgument("no datasets involved".into()));
        }
        let m = triple.num_features();
        let delta2 = triple_l2_sensitivity(&FeatureBounds::uniform(m, self.bound))?;

        // First pass: check affordability and compute total variance.
        let mut var = 0.0f64;
        for ds in involved {
            let pq = self
                .per_query
                .get(*ds)
                .ok_or_else(|| PrivacyError::InvalidArgument(format!("unknown dataset {ds}")))?;
            let rem = self.accountant.remaining(ds)?;
            if pq.epsilon > rem.epsilon + 1e-12 {
                return Err(PrivacyError::BudgetExhausted {
                    dataset: ds.to_string(),
                    requested: pq.epsilon,
                    remaining: rem.epsilon,
                });
            }
            let sigma = gaussian_sigma(delta2, *pq)?;
            var += sigma * sigma;
        }
        // Second pass: actually charge.
        for ds in involved {
            let pq = self.per_query[*ds];
            self.accountant.charge(ds, pq)?;
        }
        let mut out = triple.clone();
        noise_triple(&mut out, var.sqrt(), &mut self.rng, true);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple() -> CovarTriple {
        let mut t = CovarTriple::zero(&["x", "y"]);
        for i in 0..100 {
            let x = (i % 10) as f64 / 10.0;
            t = t.add(&CovarTriple::of_row(&["x", "y"], &[x, x * 0.5]).unwrap()).unwrap();
        }
        t
    }

    #[test]
    fn noise_grows_with_expected_queries() {
        let t = triple();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let mut few = AggregateMechanism::new(1.0, 1);
        few.register("d", b, 2).unwrap();
        let mut many = AggregateMechanism::new(1.0, 1);
        many.register("d", b, 500).unwrap();
        // Averaged over repeats, the many-queries mechanism is far noisier.
        let mut err_few = 0.0;
        let mut err_many = 0.0;
        for _ in 0..2 {
            err_few += (few.privatize_query(&t, &["d"]).unwrap().s[0] - t.s[0]).abs();
        }
        for _ in 0..2 {
            err_many += (many.privatize_query(&t, &["d"]).unwrap().s[0] - t.s[0]).abs();
        }
        assert!(err_many > err_few, "{err_many} vs {err_few}");
    }

    #[test]
    fn budget_exhausts_after_expected_queries() {
        let t = triple();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let mut apm = AggregateMechanism::new(1.0, 2);
        apm.register("d", b, 3).unwrap();
        for _ in 0..3 {
            apm.privatize_query(&t, &["d"]).unwrap();
        }
        assert!(matches!(
            apm.privatize_query(&t, &["d"]),
            Err(PrivacyError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn multi_dataset_queries_charge_everyone() {
        let t = triple();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let mut apm = AggregateMechanism::new(1.0, 3);
        apm.register("a", b, 10).unwrap();
        apm.register("b", b, 10).unwrap();
        apm.privatize_query(&t, &["a", "b"]).unwrap();
        let ra = apm.remaining("a").unwrap().epsilon;
        let rb = apm.remaining("b").unwrap().epsilon;
        assert!((ra - 0.9).abs() < 1e-9);
        assert!((rb - 0.9).abs() < 1e-9);
    }

    #[test]
    fn exhausted_partner_blocks_before_any_charge() {
        let t = triple();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let mut apm = AggregateMechanism::new(1.0, 4);
        apm.register("rich", b, 100).unwrap();
        apm.register("poor", b, 1).unwrap();
        apm.privatize_query(&t, &["poor"]).unwrap(); // exhausts "poor"
        let before = apm.remaining("rich").unwrap().epsilon;
        assert!(apm.privatize_query(&t, &["rich", "poor"]).is_err());
        // "rich" must not have been charged by the failed query.
        assert_eq!(apm.remaining("rich").unwrap().epsilon, before);
    }

    #[test]
    fn validation() {
        let mut apm = AggregateMechanism::new(1.0, 5);
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        assert!(apm.register("d", b, 0).is_err());
        apm.register("d", b, 1).unwrap();
        let t = triple();
        assert!(apm.privatize_query(&t, &[]).is_err());
        assert!(apm.privatize_query(&t, &["nope"]).is_err());
    }
}
