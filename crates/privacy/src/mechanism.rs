//! Noise calibration for the Gaussian and Laplace mechanisms.

use crate::budget::PrivacyBudget;
use crate::error::{PrivacyError, Result};

/// Gaussian-mechanism noise scale for L2 sensitivity `delta2`:
/// `σ = Δ₂ · √(2 ln(1.25/δ)) / ε` (Dwork et al. [12]).
///
/// The classic analysis requires ε ≤ 1; for ε > 1 this formula remains a
/// conservative, commonly used calibration (analytic-Gaussian would be
/// tighter) — documented rather than rejected because dataset-search budgets
/// of ε ∈ [1, 10] are the regime the paper evaluates.
pub fn gaussian_sigma(delta2: f64, budget: PrivacyBudget) -> Result<f64> {
    if budget.delta <= 0.0 {
        return Err(PrivacyError::InvalidBudget(
            "Gaussian mechanism requires δ > 0 (use Laplace for pure ε-DP)".into(),
        ));
    }
    if !delta2.is_finite() || delta2 < 0.0 {
        return Err(PrivacyError::UnboundedSensitivity(format!("Δ₂ = {delta2}")));
    }
    Ok(delta2 * (2.0 * (1.25 / budget.delta).ln()).sqrt() / budget.epsilon)
}

/// Laplace-mechanism scale for L1 sensitivity `delta1`: `b = Δ₁/ε`.
pub fn laplace_scale(delta1: f64, epsilon: f64) -> Result<f64> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(PrivacyError::InvalidBudget(format!("ε must be > 0, got {epsilon}")));
    }
    if !delta1.is_finite() || delta1 < 0.0 {
        return Err(PrivacyError::UnboundedSensitivity(format!("Δ₁ = {delta1}")));
    }
    Ok(delta1 / epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_sigma_scales_inversely_with_epsilon() {
        let b1 = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let b2 = PrivacyBudget::new(2.0, 1e-6).unwrap();
        let s1 = gaussian_sigma(1.0, b1).unwrap();
        let s2 = gaussian_sigma(1.0, b2).unwrap();
        assert!((s1 / s2 - 2.0).abs() < 1e-12);
        // Known value: σ = √(2 ln(1.25e6)) ≈ 5.29 for Δ=1, ε=1, δ=1e-6.
        assert!((s1 - (2.0 * (1.25e6f64).ln()).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn gaussian_sigma_scales_with_sensitivity() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let s1 = gaussian_sigma(1.0, b).unwrap();
        let s3 = gaussian_sigma(3.0, b).unwrap();
        assert!((s3 / s1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_requires_positive_delta() {
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        assert!(gaussian_sigma(1.0, b).is_err());
    }

    #[test]
    fn laplace_scale_basic() {
        assert_eq!(laplace_scale(2.0, 0.5).unwrap(), 4.0);
        assert!(laplace_scale(1.0, 0.0).is_err());
        assert!(laplace_scale(f64::INFINITY, 1.0).is_err());
    }
}
