//! (ε, δ) budgets and sequential-composition accounting.

use crate::error::{PrivacyError, Result};
use mileena_relation::FxHashMap;
use serde::{Deserialize, Serialize};

/// An (ε, δ) differential-privacy budget (Definition 2.1 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    /// Privacy-loss bound ε > 0.
    pub epsilon: f64,
    /// Approximation slack δ ∈ [0, 1).
    pub delta: f64,
}

impl PrivacyBudget {
    /// Validated constructor.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidBudget(format!("ε must be > 0, got {epsilon}")));
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(PrivacyError::InvalidBudget(format!("δ must be in [0,1), got {delta}")));
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// Split evenly into `parts` sub-budgets (basic sequential composition
    /// in reverse: releasing each part sums back to the whole).
    pub fn split(&self, parts: usize) -> Result<PrivacyBudget> {
        if parts == 0 {
            return Err(PrivacyError::InvalidArgument("split into 0 parts".into()));
        }
        Ok(PrivacyBudget { epsilon: self.epsilon / parts as f64, delta: self.delta / parts as f64 })
    }

    /// A weighted fraction of this budget (`0 < w ≤ 1`).
    pub fn fraction(&self, w: f64) -> Result<PrivacyBudget> {
        if !(0.0..=1.0).contains(&w) || w == 0.0 {
            return Err(PrivacyError::InvalidArgument(format!("fraction {w} not in (0,1]")));
        }
        Ok(PrivacyBudget { epsilon: self.epsilon * w, delta: self.delta * w })
    }
}

/// Tracks, per dataset, how much budget has been spent under basic
/// sequential composition (ε and δ add across releases).
///
/// The central platform holds one accountant; FPM charges it exactly once
/// per dataset (at upload), APM charges it on every query — which is exactly
/// the asymmetry Figure 5(b,c) measures.
#[derive(Debug, Default, Clone)]
pub struct BudgetAccountant {
    limits: FxHashMap<String, PrivacyBudget>,
    spent: FxHashMap<String, PrivacyBudget>,
}

impl BudgetAccountant {
    /// New, empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dataset with its total budget. Re-registration is
    /// rejected (budgets are not renewable).
    pub fn register(&mut self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        if self.limits.contains_key(dataset) {
            return Err(PrivacyError::InvalidArgument(format!(
                "dataset {dataset} already has a budget"
            )));
        }
        self.limits.insert(dataset.to_string(), budget);
        self.spent.insert(dataset.to_string(), PrivacyBudget { epsilon: 0.0, delta: 0.0 });
        Ok(())
    }

    /// Remaining budget for a dataset.
    pub fn remaining(&self, dataset: &str) -> Result<PrivacyBudget> {
        let limit = self
            .limits
            .get(dataset)
            .ok_or_else(|| PrivacyError::InvalidArgument(format!("unknown dataset {dataset}")))?;
        let spent = &self.spent[dataset];
        Ok(PrivacyBudget {
            epsilon: (limit.epsilon - spent.epsilon).max(0.0),
            delta: (limit.delta - spent.delta).max(0.0),
        })
    }

    /// Register a dataset and immediately charge its entire budget — the
    /// FPM upload flow, where the one-time release consumes everything at
    /// registration. Atomic: any failure leaves the accountant unchanged,
    /// so a rejected upload never leaks spent budget.
    pub fn register_and_charge(&mut self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        self.register(dataset, budget)?;
        if let Err(e) = self.charge(dataset, budget) {
            self.limits.remove(dataset);
            self.spent.remove(dataset);
            return Err(e);
        }
        Ok(())
    }

    /// Charge a release against a dataset's budget; errors (and charges
    /// nothing) if insufficient.
    pub fn charge(&mut self, dataset: &str, cost: PrivacyBudget) -> Result<()> {
        let rem = self.remaining(dataset)?;
        // ε governs exhaustion; δ is checked too but with tolerance for
        // float accumulation across many small charges.
        if cost.epsilon > rem.epsilon + 1e-12 || cost.delta > rem.delta + 1e-15 {
            return Err(PrivacyError::BudgetExhausted {
                dataset: dataset.to_string(),
                requested: cost.epsilon,
                remaining: rem.epsilon,
            });
        }
        let s = self.spent.get_mut(dataset).expect("registered above");
        s.epsilon += cost.epsilon;
        s.delta += cost.delta;
        Ok(())
    }

    /// Total ε spent for a dataset.
    pub fn spent(&self, dataset: &str) -> Option<PrivacyBudget> {
        self.spent.get(dataset).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_validation() {
        assert!(PrivacyBudget::new(1.0, 1e-6).is_ok());
        assert!(PrivacyBudget::new(0.0, 1e-6).is_err());
        assert!(PrivacyBudget::new(-1.0, 1e-6).is_err());
        assert!(PrivacyBudget::new(1.0, 1.0).is_err());
        assert!(PrivacyBudget::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn split_and_fraction() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let s = b.split(4).unwrap();
        assert_eq!(s.epsilon, 0.25);
        assert_eq!(s.delta, 2.5e-7);
        let f = b.fraction(0.5).unwrap();
        assert_eq!(f.epsilon, 0.5);
        assert!(b.split(0).is_err());
        assert!(b.fraction(0.0).is_err());
        assert!(b.fraction(1.5).is_err());
    }

    #[test]
    fn accountant_charges_until_exhausted() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        acc.register("d", b).unwrap();
        let half = b.fraction(0.5).unwrap();
        acc.charge("d", half).unwrap();
        acc.charge("d", half).unwrap();
        let e = acc.charge("d", b.fraction(0.1).unwrap());
        assert!(matches!(e, Err(PrivacyError::BudgetExhausted { .. })));
        let rem = acc.remaining("d").unwrap();
        assert!(rem.epsilon.abs() < 1e-12);
    }

    #[test]
    fn failed_charge_spends_nothing() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(0.5, 1e-6).unwrap();
        acc.register("d", b).unwrap();
        assert!(acc.charge("d", PrivacyBudget::new(1.0, 1e-7).unwrap()).is_err());
        assert_eq!(acc.spent("d").unwrap().epsilon, 0.0);
    }

    #[test]
    fn register_and_charge_is_atomic() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        acc.register_and_charge("d", b).unwrap();
        assert!(acc.remaining("d").unwrap().epsilon.abs() < 1e-12);
        // Duplicate registration fails without disturbing the first.
        assert!(acc.register_and_charge("d", b).is_err());
        assert_eq!(acc.spent("d").unwrap().epsilon, 1.0);
    }

    #[test]
    fn unknown_and_duplicate_datasets() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        assert!(acc.remaining("x").is_err());
        acc.register("d", b).unwrap();
        assert!(acc.register("d", b).is_err());
    }
}
