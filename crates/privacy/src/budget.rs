//! (ε, δ) budgets and sequential-composition accounting.

use crate::error::{PrivacyError, Result};
use mileena_relation::FxHashMap;
use serde::{Deserialize, Serialize};

/// An (ε, δ) differential-privacy budget (Definition 2.1 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    /// Privacy-loss bound ε > 0.
    pub epsilon: f64,
    /// Approximation slack δ ∈ [0, 1).
    pub delta: f64,
}

impl PrivacyBudget {
    /// Validated constructor.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidBudget(format!("ε must be > 0, got {epsilon}")));
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(PrivacyError::InvalidBudget(format!("δ must be in [0,1), got {delta}")));
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// Split evenly into `parts` sub-budgets (basic sequential composition
    /// in reverse: releasing each part sums back to the whole).
    pub fn split(&self, parts: usize) -> Result<PrivacyBudget> {
        if parts == 0 {
            return Err(PrivacyError::InvalidArgument("split into 0 parts".into()));
        }
        Ok(PrivacyBudget { epsilon: self.epsilon / parts as f64, delta: self.delta / parts as f64 })
    }

    /// A weighted fraction of this budget (`0 < w ≤ 1`).
    pub fn fraction(&self, w: f64) -> Result<PrivacyBudget> {
        if !(0.0..=1.0).contains(&w) || w == 0.0 {
            return Err(PrivacyError::InvalidArgument(format!("fraction {w} not in (0,1]")));
        }
        Ok(PrivacyBudget { epsilon: self.epsilon * w, delta: self.delta * w })
    }
}

/// Tracks, per dataset, how much budget has been spent under basic
/// sequential composition (ε and δ add across releases).
///
/// The central platform holds one accountant; FPM charges it exactly once
/// per dataset (at upload), APM charges it on every query — which is exactly
/// the asymmetry Figure 5(b,c) measures.
#[derive(Debug, Default, Clone)]
pub struct BudgetAccountant {
    limits: FxHashMap<String, PrivacyBudget>,
    spent: FxHashMap<String, PrivacyBudget>,
}

impl BudgetAccountant {
    /// New, empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dataset with its total budget.
    ///
    /// Idempotent for crash recovery: re-registering a dataset that is
    /// already known **with the identical limit** is a no-op that leaves
    /// the spent amount untouched — a replayed registration record must
    /// never reset accounting. Re-registering with a *different* limit is
    /// rejected (budgets are not renewable).
    pub fn register(&mut self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        if let Some(existing) = self.limits.get(dataset) {
            if *existing == budget {
                return Ok(());
            }
            return Err(PrivacyError::InvalidArgument(format!(
                "dataset {dataset} already has a budget"
            )));
        }
        self.limits.insert(dataset.to_string(), budget);
        self.spent.insert(dataset.to_string(), PrivacyBudget { epsilon: 0.0, delta: 0.0 });
        Ok(())
    }

    /// Hydrate one ledger entry from durable storage, overwriting any
    /// in-memory value. Recovery-only: normal registration goes through
    /// [`BudgetAccountant::register`] / [`BudgetAccountant::charge`].
    pub fn restore(&mut self, dataset: &str, limit: PrivacyBudget, spent: PrivacyBudget) {
        self.limits.insert(dataset.to_string(), limit);
        self.spent.insert(dataset.to_string(), spent);
    }

    /// Every ledger entry as `(dataset, limit, spent)`, name-sorted so
    /// snapshots serialize deterministically.
    pub fn entries(&self) -> Vec<(String, PrivacyBudget, PrivacyBudget)> {
        let mut out: Vec<_> = self
            .limits
            .iter()
            .map(|(name, limit)| (name.clone(), *limit, self.spent[name]))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Whether the ledger knows this dataset.
    pub fn contains(&self, dataset: &str) -> bool {
        self.limits.contains_key(dataset)
    }

    /// Grant budget headroom without charging it: register the dataset
    /// when unknown, extend its limit otherwise. The APM-style flow, where
    /// releases are charged per query against the granted total.
    pub fn grant(&mut self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        if !self.limits.contains_key(dataset) {
            return self.register(dataset, budget);
        }
        let limit = self.limits.get_mut(dataset).expect("checked above");
        limit.epsilon += budget.epsilon;
        limit.delta += budget.delta;
        Ok(())
    }

    /// Grant additional budget to an existing dataset and charge it in the
    /// same step — the re-upload flow, where each new privatized release
    /// adds its (ε, δ) to the dataset's cumulative privacy loss under
    /// sequential composition. Unknown datasets register-and-charge.
    pub fn top_up_and_charge(&mut self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        if !self.limits.contains_key(dataset) {
            return self.register_and_charge(dataset, budget);
        }
        let limit = self.limits.get_mut(dataset).expect("checked above");
        limit.epsilon += budget.epsilon;
        limit.delta += budget.delta;
        let spent = self.spent.get_mut(dataset).expect("limits and spent stay in step");
        spent.epsilon += budget.epsilon;
        spent.delta += budget.delta;
        Ok(())
    }

    /// Remaining budget for a dataset.
    pub fn remaining(&self, dataset: &str) -> Result<PrivacyBudget> {
        let limit = self
            .limits
            .get(dataset)
            .ok_or_else(|| PrivacyError::InvalidArgument(format!("unknown dataset {dataset}")))?;
        let spent = &self.spent[dataset];
        Ok(PrivacyBudget {
            epsilon: (limit.epsilon - spent.epsilon).max(0.0),
            delta: (limit.delta - spent.delta).max(0.0),
        })
    }

    /// Register a dataset and immediately charge its entire budget — the
    /// FPM upload flow, where the one-time release consumes everything at
    /// registration. Atomic: any failure leaves the accountant unchanged,
    /// so a rejected upload never leaks spent budget.
    pub fn register_and_charge(&mut self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        let inserted = !self.limits.contains_key(dataset);
        self.register(dataset, budget)?;
        if let Err(e) = self.charge(dataset, budget) {
            // Roll back only what this call created: an idempotent
            // re-registration must not destroy the pre-existing entry.
            if inserted {
                self.limits.remove(dataset);
                self.spent.remove(dataset);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Validate a charge without applying it — the write-ahead-log path
    /// needs to know a charge will succeed *before* journaling it.
    pub fn check_charge(&self, dataset: &str, cost: PrivacyBudget) -> Result<()> {
        let rem = self.remaining(dataset)?;
        // ε governs exhaustion; δ is checked too but with tolerance for
        // float accumulation across many small charges.
        if cost.epsilon > rem.epsilon + 1e-12 || cost.delta > rem.delta + 1e-15 {
            return Err(PrivacyError::BudgetExhausted {
                dataset: dataset.to_string(),
                requested: cost.epsilon,
                remaining: rem.epsilon,
            });
        }
        Ok(())
    }

    /// Charge a release against a dataset's budget; errors (and charges
    /// nothing) if insufficient.
    pub fn charge(&mut self, dataset: &str, cost: PrivacyBudget) -> Result<()> {
        self.check_charge(dataset, cost)?;
        let s = self.spent.get_mut(dataset).expect("validated by check_charge");
        s.epsilon += cost.epsilon;
        s.delta += cost.delta;
        Ok(())
    }

    /// Total ε spent for a dataset.
    pub fn spent(&self, dataset: &str) -> Option<PrivacyBudget> {
        self.spent.get(dataset).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_validation() {
        assert!(PrivacyBudget::new(1.0, 1e-6).is_ok());
        assert!(PrivacyBudget::new(0.0, 1e-6).is_err());
        assert!(PrivacyBudget::new(-1.0, 1e-6).is_err());
        assert!(PrivacyBudget::new(1.0, 1.0).is_err());
        assert!(PrivacyBudget::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn split_and_fraction() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let s = b.split(4).unwrap();
        assert_eq!(s.epsilon, 0.25);
        assert_eq!(s.delta, 2.5e-7);
        let f = b.fraction(0.5).unwrap();
        assert_eq!(f.epsilon, 0.5);
        assert!(b.split(0).is_err());
        assert!(b.fraction(0.0).is_err());
        assert!(b.fraction(1.5).is_err());
    }

    #[test]
    fn accountant_charges_until_exhausted() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        acc.register("d", b).unwrap();
        let half = b.fraction(0.5).unwrap();
        acc.charge("d", half).unwrap();
        acc.charge("d", half).unwrap();
        let e = acc.charge("d", b.fraction(0.1).unwrap());
        assert!(matches!(e, Err(PrivacyError::BudgetExhausted { .. })));
        let rem = acc.remaining("d").unwrap();
        assert!(rem.epsilon.abs() < 1e-12);
    }

    #[test]
    fn failed_charge_spends_nothing() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(0.5, 1e-6).unwrap();
        acc.register("d", b).unwrap();
        assert!(acc.charge("d", PrivacyBudget::new(1.0, 1e-7).unwrap()).is_err());
        assert_eq!(acc.spent("d").unwrap().epsilon, 0.0);
    }

    #[test]
    fn register_and_charge_is_atomic() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        acc.register_and_charge("d", b).unwrap();
        assert!(acc.remaining("d").unwrap().epsilon.abs() < 1e-12);
        // Duplicate registration fails without disturbing the first.
        assert!(acc.register_and_charge("d", b).is_err());
        assert_eq!(acc.spent("d").unwrap().epsilon, 1.0);
    }

    #[test]
    fn unknown_and_conflicting_datasets() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        assert!(acc.remaining("x").is_err());
        acc.register("d", b).unwrap();
        // A different limit is a conflict, not a replay.
        assert!(acc.register("d", PrivacyBudget::new(2.0, 0.0).unwrap()).is_err());
    }

    #[test]
    fn replayed_registration_is_a_noop() {
        // Regression: recovery replays registration records; re-registering
        // an already-known dataset with the same limit must not error and
        // must not reset the spent amount.
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        acc.register("d", b).unwrap();
        acc.charge("d", b.fraction(0.75).unwrap()).unwrap();
        acc.register("d", b).unwrap();
        assert_eq!(acc.spent("d").unwrap().epsilon, 0.75, "replay must not reset spent");
        assert_eq!(acc.remaining("d").unwrap().epsilon, 0.25);
        // A failed duplicate register_and_charge must not destroy the
        // existing entry either.
        assert!(acc.charge("d", b).is_err());
        assert!(acc.contains("d"));
        assert_eq!(acc.spent("d").unwrap().epsilon, 0.75);
    }

    #[test]
    fn restore_and_entries_roundtrip() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(2.0, 1e-6).unwrap();
        acc.register("beta", b).unwrap();
        acc.charge("beta", b.fraction(0.5).unwrap()).unwrap();
        acc.register("alpha", b).unwrap();
        let entries = acc.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "alpha", "entries are name-sorted");

        let mut rebuilt = BudgetAccountant::new();
        for (name, limit, spent) in &entries {
            rebuilt.restore(name, *limit, *spent);
        }
        assert_eq!(rebuilt.spent("beta"), acc.spent("beta"));
        assert_eq!(rebuilt.remaining("alpha").unwrap(), acc.remaining("alpha").unwrap());
    }

    #[test]
    fn grant_extends_headroom_without_charging() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        acc.grant("d", b).unwrap();
        assert_eq!(acc.spent("d").unwrap().epsilon, 0.0);
        acc.charge("d", b.fraction(0.5).unwrap()).unwrap();
        acc.grant("d", b).unwrap();
        assert_eq!(acc.remaining("d").unwrap().epsilon, 1.5);
        assert_eq!(acc.spent("d").unwrap().epsilon, 0.5, "grant never touches spent");
    }

    #[test]
    fn top_up_adds_under_sequential_composition() {
        let mut acc = BudgetAccountant::new();
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        // Unknown dataset: behaves as register_and_charge.
        acc.top_up_and_charge("d", b).unwrap();
        assert_eq!(acc.spent("d").unwrap().epsilon, 1.0);
        // Known dataset: limit and spent both grow (each release adds).
        acc.top_up_and_charge("d", b).unwrap();
        assert_eq!(acc.spent("d").unwrap().epsilon, 2.0);
        assert!(acc.remaining("d").unwrap().epsilon.abs() < 1e-12);
    }
}
