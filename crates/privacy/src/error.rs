//! Errors for the privacy layer.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PrivacyError>;

/// Errors raised by DP mechanisms and accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// ε or δ out of range.
    InvalidBudget(String),
    /// The dataset's budget is exhausted (further releases forbidden).
    BudgetExhausted {
        /// Dataset whose budget ran out.
        dataset: String,
        /// ε requested.
        requested: f64,
        /// ε remaining.
        remaining: f64,
    },
    /// Sensitivity could not be established (unbounded/unclipped features).
    UnboundedSensitivity(String),
    /// Underlying sketch error.
    Sketch(String),
    /// Underlying relational error.
    Relation(String),
    /// Invalid argument.
    InvalidArgument(String),
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidBudget(m) => write!(f, "invalid privacy budget: {m}"),
            PrivacyError::BudgetExhausted { dataset, requested, remaining } => write!(
                f,
                "budget exhausted for {dataset}: requested ε={requested}, remaining ε={remaining}"
            ),
            PrivacyError::UnboundedSensitivity(m) => write!(f, "unbounded sensitivity: {m}"),
            PrivacyError::Sketch(m) => write!(f, "sketch error: {m}"),
            PrivacyError::Relation(m) => write!(f, "relation error: {m}"),
            PrivacyError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for PrivacyError {}

impl From<mileena_sketch::SketchError> for PrivacyError {
    fn from(e: mileena_sketch::SketchError) -> Self {
        PrivacyError::Sketch(e.to_string())
    }
}

impl From<mileena_relation::RelationError> for PrivacyError {
    fn from(e: mileena_relation::RelationError) -> Self {
        PrivacyError::Relation(e.to_string())
    }
}

impl From<mileena_semiring::SemiringError> for PrivacyError {
    fn from(e: mileena_semiring::SemiringError) -> Self {
        PrivacyError::Sketch(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn display() {
        let e = super::PrivacyError::BudgetExhausted {
            dataset: "d".into(),
            requested: 1.0,
            remaining: 0.5,
        };
        assert!(e.to_string().contains("0.5"));
    }
}
