//! TPM — the Tuple (local-DP) Privacy Mechanism baseline ([50] in the
//! paper): every tuple's values are perturbed *before* any aggregation.
//!
//! Under the local model no aggregator is trusted, so each of the `n` rows
//! carries its own noise; aggregate error grows like `√n · σ_tuple` (and
//! second moments pick up an additive bias of `n·σ²`), which is why TPM's
//! task utility in Figure 5 is near zero regardless of corpus size or
//! request count — privatization happens once, but at ruinous noise.

use crate::budget::PrivacyBudget;
use crate::error::{PrivacyError, Result};
use crate::noise::NoiseRng;
use mileena_relation::{Column, Relation};

/// The per-tuple (local DP) mechanism.
#[derive(Debug, Clone)]
pub struct TupleMechanism {
    /// Feature clip bound `B` (values assumed in `[-B, B]`).
    bound: f64,
}

impl TupleMechanism {
    /// New mechanism for features clipped to `[-bound, bound]`.
    pub fn new(bound: f64) -> Self {
        TupleMechanism { bound }
    }

    /// Privatize the listed numeric columns of a relation tuple-by-tuple
    /// with the Laplace mechanism.
    ///
    /// Per-value L1 sensitivity is the domain width `2B`; the per-tuple
    /// budget ε is split evenly across the `k` released columns (sequential
    /// composition within one tuple). δ is unused (pure ε-LDP).
    pub fn privatize_relation(
        &self,
        relation: &Relation,
        columns: &[&str],
        budget: PrivacyBudget,
        seed: u64,
    ) -> Result<Relation> {
        if columns.is_empty() {
            return Err(PrivacyError::InvalidArgument("no columns to privatize".into()));
        }
        let eps_col = budget.epsilon / columns.len() as f64;
        let scale = crate::mechanism::laplace_scale(2.0 * self.bound, eps_col)?;
        let mut rng = NoiseRng::seeded(seed);
        let mut out = relation.clone();
        for name in columns {
            let col = relation.column(name)?;
            let noisy = match col {
                Column::Float { data, validity } => Column::Float {
                    data: data
                        .iter()
                        .enumerate()
                        .map(|(i, v)| if validity.get(i) { v + rng.laplace(scale) } else { *v })
                        .collect(),
                    validity: validity.clone(),
                },
                Column::Int { data, validity } => Column::Float {
                    // Int features become float after noising.
                    data: data
                        .iter()
                        .enumerate()
                        .map(
                            |(i, v)| {
                                if validity.get(i) {
                                    *v as f64 + rng.laplace(scale)
                                } else {
                                    0.0
                                }
                            },
                        )
                        .collect(),
                    validity: validity.clone(),
                },
                Column::Str { .. } => {
                    return Err(PrivacyError::InvalidArgument(format!(
                        "cannot tuple-privatize string column {name}"
                    )))
                }
            };
            let idx = relation.schema().index_of(name)?;
            let mut fields = out.schema().fields().to_vec();
            fields[idx].data_type = mileena_relation::DataType::Float;
            let mut cols = out.columns().to_vec();
            cols[idx] = noisy;
            out = Relation::new(out.name(), mileena_relation::Schema::new(fields)?, cols)?;
        }
        Ok(out)
    }

    /// Expected per-value noise standard deviation for a given budget and
    /// column count (`√2 · b` for Laplace(b)) — used by benches to report
    /// the noise regime.
    pub fn tuple_noise_std(&self, budget: PrivacyBudget, num_columns: usize) -> Result<f64> {
        let eps_col = budget.epsilon / num_columns.max(1) as f64;
        let b = crate::mechanism::laplace_scale(2.0 * self.bound, eps_col)?;
        Ok(std::f64::consts::SQRT_2 * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;

    fn rel(n: usize) -> Relation {
        RelationBuilder::new("t")
            .float_col("x", &(0..n).map(|i| (i % 7) as f64 / 7.0).collect::<Vec<_>>())
            .int_col("k", &(0..n as i64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn perturbs_every_tuple() {
        let r = rel(50);
        let tpm = TupleMechanism::new(1.0);
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        let p = tpm.privatize_relation(&r, &["x"], b, 1).unwrap();
        let mut changed = 0;
        for i in 0..50 {
            if p.value(i, "x").unwrap() != r.value(i, "x").unwrap() {
                changed += 1;
            }
        }
        assert_eq!(changed, 50); // Laplace noise is a.s. nonzero
                                 // Untouched column intact.
        assert_eq!(p.value(3, "k").unwrap(), r.value(3, "k").unwrap());
    }

    #[test]
    fn aggregate_error_grows_with_n() {
        // Mean of privatized column: sd of mean ≈ σ_tuple/√n. Aggregate
        // *sums* (what sketches need) have error √n·σ — check sums degrade.
        let tpm = TupleMechanism::new(1.0);
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        let mut errs = Vec::new();
        for &n in &[100usize, 10_000] {
            let r = rel(n);
            let p = tpm.privatize_relation(&r, &["x"], b, 7).unwrap();
            let true_sum: f64 = (0..n).map(|i| (i % 7) as f64 / 7.0).sum();
            let noisy_sum: f64 = (0..n).map(|i| p.value(i, "x").unwrap().as_f64().unwrap()).sum();
            errs.push((noisy_sum - true_sum).abs());
        }
        assert!(errs[1] > errs[0], "{errs:?}");
    }

    #[test]
    fn int_columns_become_float() {
        let r = rel(10);
        let tpm = TupleMechanism::new(1.0);
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        let p = tpm.privatize_relation(&r, &["k"], b, 2).unwrap();
        assert_eq!(p.schema().field("k").unwrap().data_type, mileena_relation::DataType::Float);
    }

    #[test]
    fn budget_split_across_columns_increases_noise() {
        let tpm = TupleMechanism::new(1.0);
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        let one = tpm.tuple_noise_std(b, 1).unwrap();
        let four = tpm.tuple_noise_std(b, 4).unwrap();
        assert!((four / one - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_strings_and_empty() {
        let r = RelationBuilder::new("t").str_col("s", &["a"]).build().unwrap();
        let tpm = TupleMechanism::new(1.0);
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        assert!(tpm.privatize_relation(&r, &["s"], b, 1).is_err());
        assert!(tpm.privatize_relation(&r, &[], b, 1).is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let r = rel(20);
        let tpm = TupleMechanism::new(1.0);
        let b = PrivacyBudget::new(1.0, 0.0).unwrap();
        let a = tpm.privatize_relation(&r, &["x"], b, 5).unwrap();
        let c = tpm.privatize_relation(&r, &["x"], b, 5).unwrap();
        assert_eq!(a, c);
    }
}
