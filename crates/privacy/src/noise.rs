//! Seeded noise sampling (Gaussian via Box–Muller, Laplace via inverse CDF).
//!
//! Implemented in-tree so the only RNG dependency is `rand`'s core (the
//! distributions live in `rand_distr`, which is outside the approved set).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded noise source for DP mechanisms.
#[derive(Debug, Clone)]
pub struct NoiseRng {
    rng: StdRng,
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl NoiseRng {
    /// Deterministic source from a seed.
    pub fn seeded(seed: u64) -> Self {
        NoiseRng { rng: StdRng::seed_from_u64(seed), spare: None }
    }

    /// Standard normal sample (Box–Muller, pair-cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 ∈ (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// N(0, σ²) sample.
    pub fn gaussian(&mut self, sigma: f64) -> f64 {
        self.standard_normal() * sigma
    }

    /// Laplace(0, b) sample via inverse CDF.
    pub fn laplace(&mut self, b: f64) -> f64 {
        let u: f64 = self.rng.gen::<f64>() - 0.5;
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Uniform in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = NoiseRng::seeded(5);
        let mut b = NoiseRng::seeded(5);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
            assert_eq!(a.laplace(1.0), b.laplace(1.0));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = NoiseRng::seeded(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn laplace_moments() {
        let mut rng = NoiseRng::seeded(43);
        let n = 20_000;
        let b = 1.5;
        let samples: Vec<f64> = (0..n).map(|_| rng.laplace(b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var(Laplace(b)) = 2b² = 4.5
        assert!((var - 4.5).abs() < 0.25, "var {var}");
    }

    #[test]
    fn all_finite() {
        let mut rng = NoiseRng::seeded(1);
        for _ in 0..10_000 {
            assert!(rng.standard_normal().is_finite());
            assert!(rng.laplace(0.1).is_finite());
        }
    }
}
