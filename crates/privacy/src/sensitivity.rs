//! Sensitivity analysis for covariance triples, and the clipping that makes
//! it finite.

use crate::error::{PrivacyError, Result};
use mileena_relation::{Column, Relation};
use serde::{Deserialize, Serialize};

/// Per-feature value bounds `|x_i| ≤ b_i`, established by clipping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureBounds {
    /// Bound per feature, aligned with the sketched feature order.
    pub bounds: Vec<f64>,
}

impl FeatureBounds {
    /// Uniform bound for `m` features.
    pub fn uniform(m: usize, b: f64) -> Self {
        FeatureBounds { bounds: vec![b; m] }
    }

    /// Validated constructor.
    pub fn new(bounds: Vec<f64>) -> Result<Self> {
        for &b in &bounds {
            if !b.is_finite() || b <= 0.0 {
                return Err(PrivacyError::UnboundedSensitivity(format!("bound {b}")));
            }
        }
        Ok(FeatureBounds { bounds })
    }
}

/// L2 sensitivity of a covariance triple `(c, s, Q)` to adding/removing one
/// row with `|x_i| ≤ b_i`:
///
/// `Δ₂² = 1 + Σᵢ bᵢ² + (Σᵢ bᵢ²)²`
///
/// (the `c` component changes by 1, `s` by at most `(b₁..b_m)`, and the full
/// `m×m` of `Q` by `x xᵀ` whose squared Frobenius norm is `(Σxᵢ²)²`).
/// Counting all `m²` ordered entries of symmetric `Q` is conservative.
pub fn triple_l2_sensitivity(bounds: &FeatureBounds) -> Result<f64> {
    let mut sum_b2 = 0.0;
    for &b in &bounds.bounds {
        if !b.is_finite() || b <= 0.0 {
            return Err(PrivacyError::UnboundedSensitivity(format!("bound {b}")));
        }
        sum_b2 += b * b;
    }
    Ok((1.0 + sum_b2 + sum_b2 * sum_b2).sqrt())
}

/// Clip every listed numeric column of `relation` into `[-bound, bound]`
/// (the provider-side pre-processing step that makes the sensitivity above
/// valid). Returns the clipped relation; NULLs pass through.
pub fn clip_relation(relation: &Relation, columns: &[&str], bound: f64) -> Result<Relation> {
    if !bound.is_finite() || bound <= 0.0 {
        return Err(PrivacyError::InvalidArgument(format!("clip bound {bound}")));
    }
    let mut out = relation.clone();
    for name in columns {
        let col = relation.column(name)?;
        let clipped = match col {
            Column::Float { data, validity } => Column::Float {
                data: data.iter().map(|v| v.clamp(-bound, bound)).collect(),
                validity: validity.clone(),
            },
            Column::Int { data, validity } => {
                let b = bound.floor() as i64;
                Column::Int {
                    data: data.iter().map(|v| (*v).clamp(-b, b)).collect(),
                    validity: validity.clone(),
                }
            }
            Column::Str { .. } => {
                return Err(PrivacyError::InvalidArgument(format!(
                    "cannot clip string column {name}"
                )))
            }
        };
        // Rebuild with the clipped column in place.
        let idx = relation.schema().index_of(name)?;
        let mut cols = out.columns().to_vec();
        cols[idx] = clipped;
        out = Relation::new(out.name(), out.schema().clone(), cols)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::{RelationBuilder, Value};

    #[test]
    fn sensitivity_formula() {
        // m = 1, b = 1: Δ₂ = √3.
        let b = FeatureBounds::uniform(1, 1.0);
        assert!((triple_l2_sensitivity(&b).unwrap() - 3f64.sqrt()).abs() < 1e-12);
        // m = 2, b = 1: Σb² = 2 → √(1 + 2 + 4) = √7.
        let b = FeatureBounds::uniform(2, 1.0);
        assert!((triple_l2_sensitivity(&b).unwrap() - 7f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_grows_with_bounds() {
        let small = triple_l2_sensitivity(&FeatureBounds::uniform(3, 1.0)).unwrap();
        let large = triple_l2_sensitivity(&FeatureBounds::uniform(3, 10.0)).unwrap();
        assert!(large > small * 10.0);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(FeatureBounds::new(vec![1.0, -1.0]).is_err());
        assert!(FeatureBounds::new(vec![f64::INFINITY]).is_err());
        assert!(triple_l2_sensitivity(&FeatureBounds { bounds: vec![0.0] }).is_err());
    }

    #[test]
    fn clipping_bounds_values() {
        let r = RelationBuilder::new("t")
            .float_col("x", &[-5.0, 0.5, 9.0])
            .int_col("k", &[100, -3, 2])
            .build()
            .unwrap();
        let c = clip_relation(&r, &["x", "k"], 2.0).unwrap();
        assert_eq!(c.value(0, "x").unwrap(), Value::Float(-2.0));
        assert_eq!(c.value(1, "x").unwrap(), Value::Float(0.5));
        assert_eq!(c.value(2, "x").unwrap(), Value::Float(2.0));
        assert_eq!(c.value(0, "k").unwrap(), Value::Int(2));
    }

    #[test]
    fn clipping_preserves_nulls_and_rejects_strings() {
        let r = RelationBuilder::new("t")
            .opt_float_col("x", &[None, Some(10.0)])
            .str_col("s", &["a", "b"])
            .build()
            .unwrap();
        let c = clip_relation(&r, &["x"], 1.0).unwrap();
        assert_eq!(c.value(0, "x").unwrap(), Value::Null);
        assert_eq!(c.value(1, "x").unwrap(), Value::Float(1.0));
        assert!(clip_relation(&r, &["s"], 1.0).is_err());
        assert!(clip_relation(&r, &["x"], 0.0).is_err());
    }
}
