//! The Factorized Privacy Mechanism (§3.3) — the paper's core privacy
//! contribution.
//!
//! FPM applies the Gaussian mechanism to semi-ring sketches *locally, once,
//! before upload*. Two properties make the privatized sketches ideal for
//! dataset search:
//!
//! - **Composable**: semi-ring `+`/`×` over privatized triples track the
//!   true augmented statistics (noise propagates but stays bounded);
//! - **Reusable**: every downstream search is post-processing of the one
//!   release, so *no further privacy cost* accrues per candidate, per
//!   request, or per corpus growth — the separation Figure 5(b,c) shows
//!   against APM.
//!
//! Budget allocation across a dataset's sketches (the full triple plus one
//! keyed sketch per join key) uses sequential composition; *within* one
//! keyed sketch, groups partition rows, so parallel composition lets every
//! group carry the full per-sketch budget. Key identities are treated as
//! public (see crate docs).

use crate::budget::PrivacyBudget;
use crate::error::{PrivacyError, Result};
use crate::mechanism::gaussian_sigma;
use crate::noise::NoiseRng;
use crate::sensitivity::{triple_l2_sensitivity, FeatureBounds};
use mileena_semiring::CovarTriple;
use mileena_sketch::DatasetSketch;
use serde::{Deserialize, Serialize};

/// Configuration for [`FactorizedMechanism`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FpmConfig {
    /// Clip bound `B` the provider applied to every feature before
    /// sketching (`|x| ≤ B`); determines sensitivity.
    pub bound: f64,
    /// Fraction of the budget allocated to the full (union) sketch; the
    /// remainder is split evenly across keyed (join) sketches. The paper's
    /// budget-allocation optimization [20] tunes this; 0.5 is the neutral
    /// default, and the `fig5` ablation bench sweeps it.
    pub full_weight: f64,
    /// Clamp privatized counts at ≥ 0 (post-processing, always sound).
    pub clamp_counts: bool,
}

impl Default for FpmConfig {
    fn default() -> Self {
        FpmConfig { bound: 1.0, full_weight: 0.5, clamp_counts: true }
    }
}

/// A privatized dataset sketch plus its release metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivatizedSketch {
    /// The noisy sketch (drop-in replaceable for the raw one).
    pub sketch: DatasetSketch,
    /// Budget consumed by this release (the dataset's entire (ε, δ)).
    pub budget: PrivacyBudget,
    /// Gaussian σ used on the full sketch.
    pub sigma_full: f64,
    /// Gaussian σ per keyed sketch, by join-key column.
    pub sigma_keyed: Vec<(String, f64)>,
}

/// The Factorized Privacy Mechanism.
#[derive(Debug, Clone, Default)]
pub struct FactorizedMechanism {
    config: FpmConfig,
}

/// Add symmetric Gaussian noise to raw `(c, s, Q)` slabs in place — the
/// zero-allocation kernel shared by the full-triple and arena-backed keyed
/// paths. Draw order (c, then s, then upper-triangular Q) is part of the
/// release's determinism contract.
///
/// `Q` receives one noise draw per *unordered* entry, mirrored, so the
/// released matrix stays symmetric (solvers and semi-ring ops rely on it).
pub(crate) fn noise_slabs(
    c: &mut f64,
    s: &mut [f64],
    q: &mut [f64],
    sigma: f64,
    rng: &mut NoiseRng,
    clamp: bool,
) {
    let m = s.len();
    *c += rng.gaussian(sigma);
    if clamp && *c < 0.0 {
        *c = 0.0;
    }
    for v in s.iter_mut() {
        *v += rng.gaussian(sigma);
    }
    for i in 0..m {
        for j in i..m {
            let n = rng.gaussian(sigma);
            q[i * m + j] += n;
            if i != j {
                q[j * m + i] = q[i * m + j];
            }
        }
    }
}

/// [`noise_slabs`] for a packed-triangular `Q` row (the arena layout):
/// one draw per packed entry, which is exactly one per unordered pair in
/// the same `i ≤ j` row-major order the full-matrix walk draws in — so a
/// seeded release is bit-identical across the two layouts, and symmetry
/// holds by construction (the triangle *is* the storage).
pub(crate) fn noise_slabs_packed(
    c: &mut f64,
    s: &mut [f64],
    qp: &mut [f64],
    sigma: f64,
    rng: &mut NoiseRng,
    clamp: bool,
) {
    *c += rng.gaussian(sigma);
    if clamp && *c < 0.0 {
        *c = 0.0;
    }
    for v in s.iter_mut() {
        *v += rng.gaussian(sigma);
    }
    for v in qp.iter_mut() {
        *v += rng.gaussian(sigma);
    }
}

/// [`noise_slabs`] over a materialized triple (full-sketch path).
pub(crate) fn noise_triple(t: &mut CovarTriple, sigma: f64, rng: &mut NoiseRng, clamp: bool) {
    let CovarTriple { c, s, q, .. } = t;
    noise_slabs(c, s, q, sigma, rng, clamp);
}

impl FactorizedMechanism {
    /// New mechanism with the given config.
    pub fn new(config: FpmConfig) -> Self {
        FactorizedMechanism { config }
    }

    /// The active config.
    pub fn config(&self) -> &FpmConfig {
        &self.config
    }

    /// Privatize a dataset's sketches with its entire budget. The caller
    /// (local data store) must have clipped features to `config.bound`.
    ///
    /// Deterministic given `seed`.
    pub fn privatize(
        &self,
        sketch: &DatasetSketch,
        budget: PrivacyBudget,
        seed: u64,
    ) -> Result<PrivatizedSketch> {
        if !(0.0..=1.0).contains(&self.config.full_weight) {
            return Err(PrivacyError::InvalidArgument(format!(
                "full_weight {} not in [0,1]",
                self.config.full_weight
            )));
        }
        let m = sketch.features.len();
        let bounds = FeatureBounds::uniform(m, self.config.bound);
        let delta2 = triple_l2_sensitivity(&bounds)?;
        let mut rng = NoiseRng::seeded(seed);
        let n_keyed = sketch.keyed.len();

        // Sequential composition across sketches of this dataset.
        let (full_budget, keyed_budget) = if n_keyed == 0 {
            (budget, None)
        } else if self.config.full_weight == 0.0 {
            (PrivacyBudget { epsilon: 0.0, delta: 0.0 }, Some(budget.split(n_keyed)?))
        } else {
            let fb = budget.fraction(self.config.full_weight)?;
            let rest = PrivacyBudget {
                epsilon: budget.epsilon - fb.epsilon,
                delta: budget.delta - fb.delta,
            };
            if rest.epsilon <= 0.0 {
                (budget, None) // full_weight == 1.0: keyed sketches dropped
            } else {
                (fb, Some(rest.split(n_keyed)?))
            }
        };

        let mut out = sketch.clone();
        let sigma_full = if full_budget.epsilon > 0.0 {
            let sigma = gaussian_sigma(delta2, full_budget)?;
            noise_triple(&mut out.full, sigma, &mut rng, self.config.clamp_counts);
            sigma
        } else {
            // No budget for the full sketch ⇒ it must not be released at
            // all: replace with the zero triple rather than leak raw stats.
            let names: Vec<String> = out.full.features.clone();
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            out.full = CovarTriple::zero(&refs);
            f64::INFINITY
        };

        let mut sigma_keyed = Vec::with_capacity(n_keyed);
        match keyed_budget {
            Some(kb) => {
                for keyed in &mut out.keyed {
                    // Parallel composition across groups: each group gets the
                    // full per-sketch budget. The arena walk noises packed
                    // slabs in place — key-sorted visiting order, one draw
                    // per unordered Q entry, zero allocation.
                    let sigma = gaussian_sigma(delta2, kb)?;
                    let clamp = self.config.clamp_counts;
                    keyed.arena_mut().for_each_row_mut(|c, s, qp| {
                        noise_slabs_packed(c, s, qp, sigma, &mut rng, clamp);
                    });
                    sigma_keyed.push((keyed.key_column.clone(), sigma));
                }
            }
            None => {
                if self.config.full_weight >= 1.0 {
                    out.keyed.clear(); // nothing left to spend on them
                }
            }
        }

        Ok(PrivatizedSketch { sketch: out, budget, sigma_full, sigma_keyed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;
    use mileena_sketch::{build_sketch, SketchConfig};

    fn sketch(n: usize) -> DatasetSketch {
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 10).collect();
        let xs: Vec<f64> = (0..n).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let r = RelationBuilder::new("d").int_col("k", &keys).float_col("x", &xs).build().unwrap();
        let cfg = SketchConfig {
            key_columns: Some(vec!["k".into()]),
            feature_columns: Some(vec!["x".into()]),
            ..Default::default()
        };
        build_sketch(&r, &cfg).unwrap()
    }

    fn budget() -> PrivacyBudget {
        PrivacyBudget::new(1.0, 1e-6).unwrap()
    }

    #[test]
    fn privatization_perturbs_but_tracks() {
        let s = sketch(2000);
        let fpm = FactorizedMechanism::new(FpmConfig::default());
        let p = fpm.privatize(&s, budget(), 1).unwrap();
        // Count should be perturbed but in the right ballpark: σ for the
        // full sketch is ~ tens, n = 2000.
        assert_ne!(p.sketch.full.c, s.full.c);
        assert!((p.sketch.full.c - s.full.c).abs() < 500.0, "{}", p.sketch.full.c);
        assert!(p.sigma_full.is_finite());
        assert_eq!(p.sigma_keyed.len(), 1);
    }

    #[test]
    fn q_stays_symmetric() {
        let r = RelationBuilder::new("d")
            .float_col("a", &[1.0, 2.0])
            .float_col("b", &[3.0, 4.0])
            .float_col("c", &[5.0, 6.0])
            .build()
            .unwrap();
        let s = build_sketch(&r, &SketchConfig::default()).unwrap();
        let fpm = FactorizedMechanism::new(FpmConfig::default());
        let p = fpm.privatize(&s, budget(), 2).unwrap();
        let t = &p.sketch.full;
        let m = t.num_features();
        for i in 0..m {
            for j in 0..m {
                assert_eq!(t.q[i * m + j], t.q[j * m + i]);
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let s = sketch(100);
        let fpm = FactorizedMechanism::new(FpmConfig::default());
        let a = fpm.privatize(&s, budget(), 9).unwrap();
        let b = fpm.privatize(&s, budget(), 9).unwrap();
        assert_eq!(a.sketch, b.sketch);
        let c = fpm.privatize(&s, budget(), 10).unwrap();
        assert_ne!(a.sketch, c.sketch);
    }

    #[test]
    fn more_budget_less_noise() {
        let s = sketch(500);
        let fpm = FactorizedMechanism::new(FpmConfig::default());
        let tight = fpm.privatize(&s, PrivacyBudget::new(0.1, 1e-6).unwrap(), 3).unwrap();
        let loose = fpm.privatize(&s, PrivacyBudget::new(10.0, 1e-6).unwrap(), 3).unwrap();
        assert!(loose.sigma_full < tight.sigma_full);
        // Average over many seeds: looser budget tracks the truth closer.
        let mut err_tight = 0.0;
        let mut err_loose = 0.0;
        for seed in 0..30 {
            let t = fpm.privatize(&s, PrivacyBudget::new(0.1, 1e-6).unwrap(), seed).unwrap();
            let l = fpm.privatize(&s, PrivacyBudget::new(10.0, 1e-6).unwrap(), seed).unwrap();
            err_tight += (t.sketch.full.s[0] - s.full.s[0]).abs();
            err_loose += (l.sketch.full.s[0] - s.full.s[0]).abs();
        }
        assert!(err_loose < err_tight, "{err_loose} vs {err_tight}");
    }

    #[test]
    fn counts_clamped_nonnegative() {
        // Tiny groups + tiny budget → noisy counts would often go negative.
        let s = sketch(20);
        let fpm = FactorizedMechanism::new(FpmConfig::default());
        for seed in 0..20 {
            let p = fpm.privatize(&s, PrivacyBudget::new(0.01, 1e-7).unwrap(), seed).unwrap();
            assert!(p.sketch.full.c >= 0.0);
            for keyed in &p.sketch.keyed {
                for (_, t) in keyed.sorted_pairs() {
                    assert!(t.c >= 0.0);
                }
            }
        }
    }

    #[test]
    fn full_weight_one_drops_keyed_sketches() {
        let s = sketch(100);
        let fpm = FactorizedMechanism::new(FpmConfig { full_weight: 1.0, ..Default::default() });
        let p = fpm.privatize(&s, budget(), 4).unwrap();
        assert!(p.sketch.keyed.is_empty());
        assert!(p.sigma_full.is_finite());
    }

    #[test]
    fn full_weight_zero_spends_everything_on_keyed() {
        let s = sketch(100);
        let fpm = FactorizedMechanism::new(FpmConfig { full_weight: 0.0, ..Default::default() });
        let p = fpm.privatize(&s, budget(), 5).unwrap();
        assert!(p.sigma_full.is_infinite());
        assert_eq!(p.sigma_keyed.len(), 1);
        // The unfunded full sketch is replaced by the zero triple so raw
        // statistics can never leak through this mode.
        assert_eq!(p.sketch.full.c, 0.0);
        assert!(p.sketch.full.s.iter().all(|&v| v == 0.0));
    }
}
