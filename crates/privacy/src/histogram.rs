//! Noisy histograms over discrete columns — the marginal-distribution
//! intermediates used by the causal-inference experiments (§4.2), where the
//! paper splits a relation's budget between its sketch and a histogram.

use crate::budget::PrivacyBudget;
use crate::error::{PrivacyError, Result};
use crate::noise::NoiseRng;
use mileena_relation::{FxHashMap, KeyValue, Relation};

/// A (possibly privatized) histogram over one or more discrete columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// The dimension (column) names, in key order.
    pub dims: Vec<String>,
    /// Cell counts (non-negative after privatization clamping).
    pub counts: FxHashMap<Vec<KeyValue>, f64>,
}

impl Histogram {
    /// Exact histogram of `relation` over discrete `columns` (rows with a
    /// NULL in any dimension are dropped).
    pub fn from_relation(relation: &Relation, columns: &[&str]) -> Result<Self> {
        let groups = relation.group_by(columns)?;
        let mut counts: FxHashMap<Vec<KeyValue>, f64> = FxHashMap::default();
        for (key, rows) in groups {
            if key.contains(&KeyValue::Null) {
                continue;
            }
            counts.insert(key, rows.len() as f64);
        }
        Ok(Histogram { dims: columns.iter().map(|s| s.to_string()).collect(), counts })
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Laplace-privatize the histogram. Adding/removing one row changes one
    /// cell by 1 ⇒ L1 sensitivity 1 ⇒ `Laplace(1/ε)` per cell (the cell
    /// *domain* is taken as the observed keys — public-domain assumption as
    /// elsewhere). Counts are clamped at 0 (post-processing).
    pub fn privatize(&self, budget: PrivacyBudget, seed: u64) -> Result<Histogram> {
        let scale = crate::mechanism::laplace_scale(1.0, budget.epsilon)?;
        let mut rng = NoiseRng::seeded(seed);
        let mut pairs: Vec<(&Vec<KeyValue>, &f64)> = self.counts.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0)); // deterministic noise assignment
        let counts = pairs
            .into_iter()
            .map(|(k, &c)| (k.clone(), (c + rng.laplace(scale)).max(0.0)))
            .collect();
        Ok(Histogram { dims: self.dims.clone(), counts })
    }

    /// Probability of a full key (0 if unseen or empty histogram).
    pub fn prob(&self, key: &[KeyValue]) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.counts.get(key).copied().unwrap_or(0.0) / total
    }

    /// Marginalize onto a subset of dimensions (order given by `keep`).
    pub fn marginal(&self, keep: &[&str]) -> Result<Histogram> {
        let idx: Vec<usize> = keep
            .iter()
            .map(|d| {
                self.dims
                    .iter()
                    .position(|x| x == d)
                    .ok_or_else(|| PrivacyError::InvalidArgument(format!("unknown dim {d}")))
            })
            .collect::<Result<_>>()?;
        let mut counts: FxHashMap<Vec<KeyValue>, f64> = FxHashMap::default();
        for (key, &c) in &self.counts {
            let sub: Vec<KeyValue> = idx.iter().map(|&i| key[i].clone()).collect();
            *counts.entry(sub).or_insert(0.0) += c;
        }
        Ok(Histogram { dims: keep.iter().map(|s| s.to_string()).collect(), counts })
    }

    /// Conditional probability `P(target-dims = target-key | given-dims =
    /// given-key)` computed from this joint histogram.
    pub fn conditional(
        &self,
        target_dims: &[&str],
        target_key: &[KeyValue],
        given_dims: &[&str],
        given_key: &[KeyValue],
    ) -> Result<f64> {
        let given = self.marginal(given_dims)?;
        let denom = given.counts.get(given_key).copied().unwrap_or(0.0);
        if denom <= 0.0 {
            return Ok(0.0);
        }
        let mut joint_dims: Vec<&str> = target_dims.to_vec();
        joint_dims.extend_from_slice(given_dims);
        let joint = self.marginal(&joint_dims)?;
        let mut joint_key: Vec<KeyValue> = target_key.to_vec();
        joint_key.extend_from_slice(given_key);
        let num = joint.counts.get(&joint_key).copied().unwrap_or(0.0);
        Ok(num / denom)
    }

    /// All observed keys for one dimension.
    pub fn domain(&self, dim: &str) -> Result<Vec<KeyValue>> {
        let m = self.marginal(&[dim])?;
        let mut keys: Vec<KeyValue> = m.counts.keys().map(|k| k[0].clone()).collect();
        keys.sort();
        Ok(keys)
    }
}

/// Convenience: exact histogram, then privatize.
pub fn noisy_histogram(
    relation: &Relation,
    columns: &[&str],
    budget: PrivacyBudget,
    seed: u64,
) -> Result<Histogram> {
    Histogram::from_relation(relation, columns)?.privatize(budget, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;

    fn rel() -> Relation {
        RelationBuilder::new("t")
            .int_col("t", &[0, 0, 1, 1, 1, 0])
            .int_col("y", &[0, 1, 0, 1, 1, 0])
            .build()
            .unwrap()
    }

    fn k(vals: &[i64]) -> Vec<KeyValue> {
        vals.iter().map(|&v| KeyValue::Int(v)).collect()
    }

    #[test]
    fn exact_counts_and_probs() {
        let h = Histogram::from_relation(&rel(), &["t", "y"]).unwrap();
        assert_eq!(h.total(), 6.0);
        assert_eq!(h.counts[&k(&[0, 0])], 2.0);
        assert_eq!(h.counts[&k(&[1, 1])], 2.0);
        assert!((h.prob(&k(&[0, 1])) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.prob(&k(&[5, 5])), 0.0);
    }

    #[test]
    fn marginals_sum_correctly() {
        let h = Histogram::from_relation(&rel(), &["t", "y"]).unwrap();
        let m = h.marginal(&["t"]).unwrap();
        assert_eq!(m.counts[&k(&[0])], 3.0);
        assert_eq!(m.counts[&k(&[1])], 3.0);
        assert!(h.marginal(&["zz"]).is_err());
    }

    #[test]
    fn conditionals() {
        let h = Histogram::from_relation(&rel(), &["t", "y"]).unwrap();
        // P(y=1 | t=1) = 2/3
        let p = h.conditional(&["y"], &k(&[1]), &["t"], &k(&[1])).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        // unseen condition → 0
        let p = h.conditional(&["y"], &k(&[1]), &["t"], &k(&[9])).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn privatization_clamps_and_perturbs() {
        let h = Histogram::from_relation(&rel(), &["t"]).unwrap();
        let b = PrivacyBudget::new(0.5, 0.0).unwrap();
        let p = h.privatize(b, 3).unwrap();
        assert_eq!(p.dims, h.dims);
        for &c in p.counts.values() {
            assert!(c >= 0.0);
        }
        assert_ne!(p.counts, h.counts);
        // Deterministic by seed.
        assert_eq!(h.privatize(b, 3).unwrap(), p);
    }

    #[test]
    fn tighter_budget_more_distortion() {
        let big = RelationBuilder::new("t")
            .int_col("a", &(0..500).map(|i| i % 4).collect::<Vec<_>>())
            .build()
            .unwrap();
        let h = Histogram::from_relation(&big, &["a"]).unwrap();
        let mut loose_err = 0.0;
        let mut tight_err = 0.0;
        for seed in 0..20 {
            let loose = h.privatize(PrivacyBudget::new(5.0, 0.0).unwrap(), seed).unwrap();
            let tight = h.privatize(PrivacyBudget::new(0.05, 0.0).unwrap(), seed).unwrap();
            for (key, &c) in &h.counts {
                loose_err += (loose.counts[key] - c).abs();
                tight_err += (tight.counts[key] - c).abs();
            }
        }
        assert!(tight_err > loose_err * 5.0, "{tight_err} vs {loose_err}");
    }

    #[test]
    fn domain_lists_sorted_keys() {
        let h = Histogram::from_relation(&rel(), &["t", "y"]).unwrap();
        assert_eq!(h.domain("t").unwrap(), vec![KeyValue::Int(0), KeyValue::Int(1)]);
    }

    #[test]
    fn null_rows_dropped() {
        let r =
            RelationBuilder::new("t").opt_int_col("a", &[Some(1), None, Some(1)]).build().unwrap();
        let h = Histogram::from_relation(&r, &["a"]).unwrap();
        assert_eq!(h.total(), 2.0);
    }
}
