//! A real TCP front-end for the platform: length-prefixed JSON frames over
//! `std::net`, carrying the exact same versioned envelopes as [`JsonWire`]
//! (registration, admin, search submission, streamed events, final
//! replies) — so everything proven about the in-memory wire transport
//! holds over a socket, including `Overloaded { retry_after_ms }`
//! round-tripping and typed shard errors.
//!
//! **Framing.** Every message is a 4-byte big-endian length prefix
//! followed by that many bytes of JSON — a [`ClientFrame`] client→server,
//! a [`ServerFrame`] server→client. A frame longer than the configured
//! `max_frame` is rejected with a typed [`ServerFrame::Error`] and the
//! connection is closed (the peer is either broken or hostile; resyncing a
//! corrupt length prefix is not worth guessing at).
//!
//! **Server shape.** One accept loop (non-blocking + shutdown flag), one
//! thread per connection, one forwarder thread per in-flight search
//! session multiplexing its event/result envelopes back over the shared
//! (mutexed) write half. A client disconnect cancels that connection's
//! in-flight sessions — nobody is left computing for a requester who hung
//! up. [`TcpServer::shutdown`] stops accepting, drains in-flight sessions
//! (their final results still flush to connected clients), joins every
//! thread, and returns.
//!
//! **Client shape.** [`TcpWire`] implements [`PlatformService`] over
//! pooled request/response connections, plus one dedicated connection per
//! search session (a cancel watcher bridges [`SearchControl::cancel`] to a
//! [`ClientFrame::Cancel`] frame, so session handles behave identically to
//! the in-process ones).
//!
//! [`JsonWire`]: crate::service::JsonWire

use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use crate::service::{wire_admin, wire_register, wire_submit, PlatformService, SearchSession};
use crate::wire::{
    AdminOp, AdminReply, CheckpointReceipt, ErrorCode, PlatformStats, WireAdminRequest,
    WireAdminResponse, WireError, WireEvent, WireRegisterRequest, WireRegisterResponse,
    WireSearchRequest, WireSearchResponse, WIRE_VERSION,
};
use mileena_obs::{Metrics, MetricsReport, SlowSearchLog};
use mileena_search::{SearchConfig, SearchControl, SketchedRequest};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client→server frames. The JSON payloads inside `Register`/`Admin`/
/// `Submit` are the versioned wire envelopes of [`crate::wire`], unchanged
/// — framing adds transport, not schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClientFrame {
    /// A serialized [`WireRegisterRequest`].
    Register {
        /// The envelope JSON.
        json: String,
    },
    /// A serialized [`WireAdminRequest`].
    Admin {
        /// The envelope JSON.
        json: String,
    },
    /// A serialized [`WireSearchRequest`]; answered by
    /// [`ServerFrame::Accepted`] then a stream of events and one result.
    Submit {
        /// The envelope JSON.
        json: String,
    },
    /// Cooperatively cancel an accepted session on this connection.
    Cancel {
        /// The session id from [`ServerFrame::Accepted`].
        session: u64,
    },
}

/// Server→client frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Response envelope for `Register`/`Admin` (a serialized
    /// [`WireRegisterResponse`] / [`WireAdminResponse`]).
    Reply {
        /// The envelope JSON.
        json: String,
    },
    /// A submit was admitted; events and the result follow, tagged with
    /// this session id.
    Accepted {
        /// Platform-assigned session id.
        session: u64,
    },
    /// A streamed [`WireEvent`] envelope for an accepted session.
    Event {
        /// The session the event belongs to.
        session: u64,
        /// The envelope JSON.
        json: String,
    },
    /// The final [`WireSearchResponse`] envelope for a session. A submit
    /// that was rejected outright (overload, shard down, malformed) is a
    /// `Result` with `session: 0` and the error envelope.
    Result {
        /// The session the response closes (0 = rejected at submit).
        session: u64,
        /// The envelope JSON.
        json: String,
    },
    /// Framing-level failure (oversized or undecodable frame): a
    /// serialized [`WireError`]. Oversized frames also close the
    /// connection.
    Error {
        /// The serialized [`WireError`].
        json: String,
    },
}

/// TCP transport tuning.
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// Maximum accepted frame payload, bytes. Larger frames get a typed
    /// error and the connection is closed.
    pub max_frame: usize,
    /// Poll interval for the accept loop and connection read loops (they
    /// watch the shutdown flag between reads).
    pub poll_interval: Duration,
    /// Slow-search log: every search whose reply's `spans.total_ns`
    /// crossed the log's threshold gets one JSONL record (session id,
    /// wire `request_id`, full span breakdown). `None` disables the check.
    pub slow_log: Option<Arc<SlowSearchLog>>,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            max_frame: 32 << 20,
            poll_interval: Duration::from_millis(20),
            slow_log: None,
        }
    }
}

fn encode_frame<T: Serialize>(frame: &T) -> Vec<u8> {
    let payload = serde_json::to_string(frame).unwrap_or_default().into_bytes();
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
    buf
}

/// Decode a frame payload (UTF-8 JSON bytes) into `T`.
fn decode_payload<T: for<'de> Deserialize<'de>>(payload: &[u8]) -> std::result::Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

fn write_frame<T: Serialize>(stream: &mut TcpStream, frame: &T) -> std::io::Result<()> {
    stream.write_all(&encode_frame(frame))?;
    stream.flush()
}

fn write_frame_locked<T: Serialize>(writer: &Mutex<TcpStream>, frame: &T) -> std::io::Result<()> {
    let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut stream, frame)
}

/// Blocking frame read (client side): length prefix, then payload.
fn read_frame<T: for<'de> Deserialize<'de>>(stream: &mut TcpStream, max_frame: usize) -> Result<T> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).map_err(|e| CoreError::Service(format!("tcp read: {e}")))?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(CoreError::Wire {
            code: ErrorCode::Malformed,
            message: format!("peer announced a {len}-byte frame (max {max_frame})"),
        });
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(|e| CoreError::Service(format!("tcp read: {e}")))?;
    decode_payload(&payload).map_err(|e| CoreError::Wire {
        code: ErrorCode::Malformed,
        message: format!("decode frame: {e}"),
    })
}

/// What the incremental parser pulled out of the connection buffer.
enum Parsed {
    /// A complete, decoded client frame.
    Frame(ClientFrame),
    /// A complete frame that wasn't valid [`ClientFrame`] JSON.
    Garbage(String),
    /// The announced length exceeds the limit: reply typed, close.
    Oversized(usize),
    /// Not enough buffered bytes yet.
    Incomplete,
}

/// Pull one frame off the front of `buf` if a complete one has arrived.
/// Partial reads simply leave bytes buffered until the rest shows up.
fn parse_frame(buf: &mut Vec<u8>, max_frame: usize) -> Parsed {
    if buf.len() < 4 {
        return Parsed::Incomplete;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_frame {
        return Parsed::Oversized(len);
    }
    if buf.len() < 4 + len {
        return Parsed::Incomplete;
    }
    let payload: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
    match decode_payload::<ClientFrame>(&payload) {
        Ok(frame) => Parsed::Frame(frame),
        Err(e) => Parsed::Garbage(e),
    }
}

/// The TCP server: owns the accept loop and every connection thread.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn PlatformService + Send + Sync>,
        config: TcpServerConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = Arc::clone(&service);
                        let flag = Arc::clone(&flag);
                        let config = config.clone();
                        conns.push(std::thread::spawn(move || {
                            serve_connection(stream, service, flag, config);
                        }));
                        // Opportunistically reap finished connections so a
                        // long-lived server doesn't accumulate handles.
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(_) => break,
                }
            }
            for conn in conns {
                let _ = conn.join();
            }
        });
        Ok(TcpServer { addr, shutdown, accept: Some(accept) })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let connection threads drain
    /// their in-flight sessions (final results still reach connected
    /// clients), join everything.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One connection: incremental frame parsing on the read half, a mutexed
/// write half shared with per-session forwarder threads.
fn serve_connection(
    stream: TcpStream,
    service: Arc<dyn PlatformService + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    config: TcpServerConfig,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    // The connection span and net counters record into the platform's own
    // registry when the deployment exposes one; client-only services don't.
    let metrics = service.metrics_handle();
    let conn_start = Instant::now();
    if let Some(m) = &metrics {
        m.net_connections.inc();
        m.connections_open.add(1);
    }
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = stream;
    let _ = reader.set_read_timeout(Some(config.poll_interval));
    // Session id → run control, for Cancel frames and disconnect cleanup.
    let sessions: Arc<Mutex<HashMap<u64, SearchControl>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut disconnected = false;

    'conn: while !shutdown.load(Ordering::SeqCst) {
        match reader.read(&mut chunk) {
            Ok(0) => {
                disconnected = true;
                break 'conn;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => {
                disconnected = true;
                break 'conn;
            }
        }
        loop {
            match parse_frame(&mut buf, config.max_frame) {
                Parsed::Incomplete => break,
                Parsed::Oversized(len) => {
                    let err = WireError::new(
                        ErrorCode::Malformed,
                        format!("frame of {len} bytes exceeds the {}-byte limit", config.max_frame),
                    );
                    let json = serde_json::to_string(&err).unwrap_or_default();
                    let _ = write_frame_locked(&writer, &ServerFrame::Error { json });
                    break 'conn;
                }
                Parsed::Garbage(detail) => {
                    let err = WireError::new(
                        ErrorCode::Malformed,
                        format!("undecodable frame: {detail}"),
                    );
                    let json = serde_json::to_string(&err).unwrap_or_default();
                    if write_frame_locked(&writer, &ServerFrame::Error { json }).is_err() {
                        disconnected = true;
                        break 'conn;
                    }
                }
                Parsed::Frame(frame) => {
                    if let Some(m) = &metrics {
                        m.net_frames_in.inc();
                    }
                    if !handle_frame(
                        frame,
                        &service,
                        &writer,
                        &sessions,
                        &mut forwarders,
                        &metrics,
                        &config.slow_log,
                    ) {
                        disconnected = true;
                        break 'conn;
                    }
                }
            }
        }
    }

    if disconnected {
        // The requester hung up: cancel whatever is still computing for
        // them so no worker slot is left burning for a dead socket.
        for control in sessions.lock().unwrap_or_else(|e| e.into_inner()).values() {
            control.cancel();
        }
    }
    // Graceful path: in-flight sessions finish and flush their results
    // (cancelled ones finish immediately at the next round boundary).
    for forwarder in forwarders {
        let _ = forwarder.join();
    }
    if let Some(m) = &metrics {
        m.connections_open.add(-1);
        m.connection_serve.record_duration(conn_start.elapsed());
    }
}

/// Count one server→client frame, when a registry is attached.
fn frame_out(metrics: &Option<Arc<Metrics>>) {
    if let Some(m) = metrics {
        m.net_frames_out.inc();
    }
}

/// Append a slow-search JSONL record when a final search response crossed
/// the log's threshold. The record carries the session id, the wire
/// `request_id` (JSON `null` when the caller sent none), and the full
/// per-stage span breakdown, so one grep correlates client, server log,
/// and metrics.
fn maybe_log_slow(
    slow_log: &Option<Arc<SlowSearchLog>>,
    metrics: &Option<Arc<Metrics>>,
    session: u64,
    response_json: &str,
) {
    let Some(log) = slow_log else { return };
    let Ok(response) = serde_json::from_str::<WireSearchResponse>(response_json) else { return };
    let Some(reply) = response.ok else { return };
    if reply.spans.total_ns < log.threshold_ns() {
        return;
    }
    if let Some(m) = metrics {
        m.slow_searches.inc();
    }
    let s = &reply.spans;
    let request_id = reply.request_id.map_or_else(|| "null".to_string(), |id| id.to_string());
    log.log_line(&format!(
        concat!(
            "{{\"session\":{},\"request_id\":{},\"stop_reason\":\"{:?}\",",
            "\"evaluations\":{},\"rounds\":{},\"total_ns\":{},\"prepare_ns\":{},",
            "\"enumerate_ns\":{},\"queue_wait_ns\":{},\"run_ns\":{},\"eval_ns\":{},",
            "\"fit_ns\":{}}}"
        ),
        session,
        request_id,
        reply.stop_reason,
        reply.evaluations,
        reply.steps.len(),
        s.total_ns,
        s.prepare_ns,
        s.enumerate_ns,
        s.queue_wait_ns,
        s.run_ns,
        s.eval_ns,
        s.fit_ns,
    ));
}

/// Dispatch one decoded client frame. Returns `false` when the write half
/// is dead and the connection should be torn down.
fn handle_frame(
    frame: ClientFrame,
    service: &Arc<dyn PlatformService + Send + Sync>,
    writer: &Arc<Mutex<TcpStream>>,
    sessions: &Arc<Mutex<HashMap<u64, SearchControl>>>,
    forwarders: &mut Vec<JoinHandle<()>>,
    metrics: &Option<Arc<Metrics>>,
    slow_log: &Option<Arc<SlowSearchLog>>,
) -> bool {
    match frame {
        ClientFrame::Register { json } => {
            if let Some(m) = metrics {
                m.requests_register.inc();
            }
            let reply = wire_register(&**service, &json);
            frame_out(metrics);
            write_frame_locked(writer, &ServerFrame::Reply { json: reply }).is_ok()
        }
        ClientFrame::Admin { json } => {
            if let Some(m) = metrics {
                m.requests_admin.inc();
            }
            let reply = wire_admin(&**service, &json);
            frame_out(metrics);
            write_frame_locked(writer, &ServerFrame::Reply { json: reply }).is_ok()
        }
        ClientFrame::Cancel { session } => {
            if let Some(m) = metrics {
                m.requests_cancel.inc();
            }
            if let Some(control) = sessions.lock().unwrap_or_else(|e| e.into_inner()).get(&session)
            {
                control.cancel();
            }
            true
        }
        ClientFrame::Submit { json } => {
            if let Some(m) = metrics {
                m.requests_submit.inc();
            }
            match wire_submit(&**service, &json) {
                Err(error_json) => {
                    frame_out(metrics);
                    write_frame_locked(
                        writer,
                        &ServerFrame::Result { session: 0, json: error_json },
                    )
                    .is_ok()
                }
                Ok(wire_session) => {
                    let id = wire_session.id;
                    sessions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(id, wire_session.control.clone());
                    frame_out(metrics);
                    if write_frame_locked(writer, &ServerFrame::Accepted { session: id }).is_err() {
                        wire_session.control.cancel();
                        return false;
                    }
                    let writer = Arc::clone(writer);
                    let sessions = Arc::clone(sessions);
                    let metrics = metrics.clone();
                    let slow_log = slow_log.clone();
                    forwarders.push(std::thread::spawn(move || {
                        for json in wire_session.events.iter() {
                            frame_out(&metrics);
                            if write_frame_locked(
                                &writer,
                                &ServerFrame::Event { session: id, json },
                            )
                            .is_err()
                            {
                                // Dead socket: stop forwarding, but still wait
                                // for the result below so the worker's
                                // sync_send never blocks forever.
                                break;
                            }
                        }
                        if let Ok(json) = wire_session.result.recv() {
                            maybe_log_slow(&slow_log, &metrics, id, &json);
                            frame_out(&metrics);
                            let _ = write_frame_locked(
                                &writer,
                                &ServerFrame::Result { session: id, json },
                            );
                        }
                        sessions.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
                    }));
                    true
                }
            }
        }
    }
}

/// [`PlatformService`] over TCP: the client half of the protocol.
/// Request/response calls use a small connection pool; each search session
/// gets a dedicated connection carrying its event/result stream.
#[derive(Debug)]
pub struct TcpWire {
    addr: SocketAddr,
    max_frame: usize,
    pool: Mutex<Vec<TcpStream>>,
}

impl TcpWire {
    /// Connect to a [`TcpServer`] at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpWire> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| CoreError::Service(format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| CoreError::Service("address resolved to nothing".into()))?;
        // Fail fast if nobody is listening; the probe connection seeds the
        // pool.
        let probe =
            TcpStream::connect(addr).map_err(|e| CoreError::Service(format!("connect: {e}")))?;
        Ok(TcpWire {
            addr,
            max_frame: TcpServerConfig::default().max_frame,
            pool: Mutex::new(vec![probe]),
        })
    }

    /// A connection for one round trip, and whether it came out of the
    /// pool (a pooled stream may have died with a server restart — its
    /// first use after that fails, and [`TcpWire::call`] retries fresh).
    fn checkout(&self) -> Result<(TcpStream, bool)> {
        if let Some(stream) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok((stream, true));
        }
        let stream = TcpStream::connect(self.addr)
            .map_err(|e| CoreError::Service(format!("connect: {e}")))?;
        Ok((stream, false))
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < 8 {
            pool.push(stream);
        }
    }

    /// One pooled request/response round trip: send a frame, read the
    /// `Reply` (surfacing a framing `Error` as the typed wire error).
    /// A transport failure on a *pooled* stream — the server restarted
    /// while the connection sat idle — drops the dead stream and retries
    /// exactly once on a fresh dial; fresh-connection failures surface
    /// immediately.
    fn call(&self, frame: &ClientFrame) -> Result<String> {
        let (stream, pooled) = self.checkout()?;
        match self.round_trip(stream, frame) {
            Err(CoreError::Service(_)) if pooled => {
                let stream = TcpStream::connect(self.addr)
                    .map_err(|e| CoreError::Service(format!("connect: {e}")))?;
                self.round_trip(stream, frame)
            }
            other => other,
        }
    }

    fn round_trip(&self, mut stream: TcpStream, frame: &ClientFrame) -> Result<String> {
        write_frame(&mut stream, frame)
            .map_err(|e| CoreError::Service(format!("tcp write: {e}")))?;
        match read_frame::<ServerFrame>(&mut stream, self.max_frame)? {
            ServerFrame::Reply { json } => {
                self.checkin(stream);
                Ok(json)
            }
            ServerFrame::Error { json } => Err(decode_frame_error(&json)),
            other => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: format!("unexpected frame in reply position: {other:?}"),
            }),
        }
    }

    fn admin(&self, op: AdminOp) -> Result<AdminReply> {
        let json = serde_json::to_string(&WireAdminRequest { v: WIRE_VERSION, op })
            .map_err(|e| CoreError::Wire { code: ErrorCode::Malformed, message: e.to_string() })?;
        let response = self.call(&ClientFrame::Admin { json })?;
        serde_json::from_str::<WireAdminResponse>(&response)
            .map_err(|e| CoreError::Wire {
                code: ErrorCode::Malformed,
                message: format!("decode admin response: {e}"),
            })?
            .into_result()
    }
}

/// Decode a [`ServerFrame::Error`] payload into the typed core error.
fn decode_frame_error(json: &str) -> CoreError {
    match serde_json::from_str::<WireError>(json) {
        Ok(err) => err.into_core(),
        Err(e) => CoreError::Wire {
            code: ErrorCode::Malformed,
            message: format!("undecodable error frame: {e}"),
        },
    }
}

impl PlatformService for TcpWire {
    fn register(&self, upload: ProviderUpload) -> Result<()> {
        let json = serde_json::to_string(&WireRegisterRequest { v: WIRE_VERSION, upload })
            .map_err(|e| CoreError::Wire { code: ErrorCode::Malformed, message: e.to_string() })?;
        let response = self.call(&ClientFrame::Register { json })?;
        serde_json::from_str::<WireRegisterResponse>(&response)
            .map_err(|e| CoreError::Wire {
                code: ErrorCode::Malformed,
                message: format!("decode register response: {e}"),
            })?
            .into_result()
            .map(|_| ())
    }

    fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        self.submit_tagged(request, config, None)
    }

    fn submit_tagged(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
        request_id: Option<u64>,
    ) -> Result<SearchSession> {
        let json = serde_json::to_string(&WireSearchRequest {
            v: WIRE_VERSION,
            request,
            config,
            request_id,
        })
        .map_err(|e| CoreError::Wire { code: ErrorCode::Malformed, message: e.to_string() })?;
        // Dedicated connection: the event/result stream owns the socket.
        let mut stream = TcpStream::connect(self.addr)
            .map_err(|e| CoreError::Service(format!("connect: {e}")))?;
        write_frame(&mut stream, &ClientFrame::Submit { json })
            .map_err(|e| CoreError::Service(format!("tcp write: {e}")))?;
        let id = match read_frame::<ServerFrame>(&mut stream, self.max_frame)? {
            ServerFrame::Accepted { session } => session,
            ServerFrame::Result { json, .. } => {
                // Rejected at submit: decode the typed error envelope
                // (Overloaded retry hints and shard ids survive intact).
                let decoded: WireSearchResponse =
                    serde_json::from_str(&json).map_err(|e| CoreError::Wire {
                        code: ErrorCode::Malformed,
                        message: format!("decode submit rejection: {e}"),
                    })?;
                return Err(decoded.into_result().err().unwrap_or_else(|| {
                    CoreError::Service("submit rejected without an error".into())
                }));
            }
            ServerFrame::Error { json } => return Err(decode_frame_error(&json)),
            other => {
                return Err(CoreError::Wire {
                    code: ErrorCode::Malformed,
                    message: format!("unexpected frame after submit: {other:?}"),
                })
            }
        };

        let control = SearchControl::new();
        let done = Arc::new(AtomicBool::new(false));
        // Cancel watcher: bridge local control.cancel() to a Cancel frame
        // on a cloned write half, so cancellation crosses the wire without
        // disturbing the reader.
        if let Ok(mut cancel_half) = stream.try_clone() {
            let watch_control = control.clone();
            let watch_done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !watch_done.load(Ordering::SeqCst) {
                    if watch_control.is_cancelled() {
                        let _ = write_frame(&mut cancel_half, &ClientFrame::Cancel { session: id });
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }

        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::sync_channel(1);
        let max_frame = self.max_frame;
        std::thread::spawn(move || {
            let result = loop {
                match read_frame::<ServerFrame>(&mut stream, max_frame) {
                    Ok(ServerFrame::Event { json, .. }) => {
                        match serde_json::from_str::<WireEvent>(&json) {
                            Ok(we) if we.v == WIRE_VERSION => {
                                let _ = event_tx.send(we.event);
                            }
                            _ => {
                                break Err(CoreError::Wire {
                                    code: ErrorCode::Malformed,
                                    message: "bad event envelope".into(),
                                })
                            }
                        }
                    }
                    Ok(ServerFrame::Result { json, .. }) => {
                        break serde_json::from_str::<WireSearchResponse>(&json)
                            .map_err(|e| CoreError::Wire {
                                code: ErrorCode::Malformed,
                                message: format!("decode search response: {e}"),
                            })
                            .and_then(WireSearchResponse::into_result);
                    }
                    Ok(ServerFrame::Error { json }) => break Err(decode_frame_error(&json)),
                    Ok(other) => {
                        break Err(CoreError::Wire {
                            code: ErrorCode::Malformed,
                            message: format!("unexpected mid-session frame: {other:?}"),
                        })
                    }
                    Err(e) => break Err(e),
                }
            };
            done.store(true, Ordering::SeqCst);
            drop(event_tx);
            let _ = result_tx.send(result);
        });
        Ok(SearchSession::new(id, control, event_rx, result_rx))
    }

    fn num_datasets(&self) -> usize {
        match self.stats() {
            Ok(stats) => stats.datasets,
            Err(_) => 0,
        }
    }

    fn checkpoint(&self) -> Result<CheckpointReceipt> {
        match self.admin(AdminOp::Checkpoint)? {
            AdminReply::Checkpoint(receipt) => Ok(receipt),
            _ => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "mismatched reply to a checkpoint request".into(),
            }),
        }
    }

    fn stats(&self) -> Result<PlatformStats> {
        match self.admin(AdminOp::Stats)? {
            AdminReply::Stats(stats) => Ok(stats),
            _ => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "mismatched reply to a stats request".into(),
            }),
        }
    }

    fn metrics(&self) -> Result<MetricsReport> {
        match self.admin(AdminOp::Metrics)? {
            AdminReply::Metrics(report) => Ok(report),
            _ => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "mismatched reply to a metrics request".into(),
            }),
        }
    }
}
