//! The provider/requester-side Local Data Store (Figure 1, blue workflow):
//! transform → clip → sketch → privatize → upload bundle.

use crate::error::Result;
use mileena_discovery::DatasetProfile;
use mileena_privacy::{clip_relation, FactorizedMechanism, FpmConfig, PrivacyBudget};
use mileena_relation::Relation;
use mileena_sketch::{build_sketch, DatasetSketch, SketchConfig};
use mileena_transform::{Llm, TransformPipeline};

/// The bundle a provider sends to the central platform. Contains only
/// privacy-safe artifacts: (possibly privatized) sketches and the
/// discovery profile — never raw rows.
#[derive(Debug, Clone)]
pub struct ProviderUpload {
    /// The dataset's sketches (privatized when a budget was supplied).
    pub sketch: DatasetSketch,
    /// Discovery profile (MinHash + TF-IDF per column).
    pub profile: DatasetProfile,
    /// Budget consumed at privatization (None = non-private upload).
    pub budget: Option<PrivacyBudget>,
}

/// A provider's (or requester's) local store around one raw relation.
#[derive(Debug)]
pub struct LocalDataStore {
    relation: Relation,
    sketch_config: SketchConfig,
    fpm_config: FpmConfig,
    minhash_k: usize,
}

impl LocalDataStore {
    /// Wrap a raw relation with default configs.
    pub fn new(relation: Relation) -> Self {
        LocalDataStore {
            relation,
            sketch_config: SketchConfig::default(),
            fpm_config: FpmConfig::default(),
            minhash_k: 128,
        }
    }

    /// Override the sketch configuration.
    pub fn with_sketch_config(mut self, config: SketchConfig) -> Self {
        self.sketch_config = config;
        self
    }

    /// Override the FPM configuration.
    pub fn with_fpm_config(mut self, config: FpmConfig) -> Self {
        self.fpm_config = config;
        self
    }

    /// The current (possibly transformed) relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Run the agent-based transformation pipeline (§4.1) in place,
    /// returning the number of accepted transformations. This happens
    /// *before* sketching, on raw data the owner is trusted with.
    pub fn auto_transform(&mut self, llm: &dyn Llm, task_context: &str) -> Result<usize> {
        let report = TransformPipeline::new(llm).run(&self.relation, task_context)?;
        let accepted = report.accepted().len();
        self.relation = report.transformed;
        Ok(accepted)
    }

    /// Produce the upload bundle.
    ///
    /// With a budget: numeric feature columns are clipped to the FPM bound
    /// and the sketches privatized (the dataset's entire (ε, δ) is consumed
    /// here, once — every later search is free post-processing).
    /// Without: raw sketches (for non-private deployments and baselines).
    pub fn prepare_upload(
        &self,
        budget: Option<PrivacyBudget>,
        seed: u64,
    ) -> Result<ProviderUpload> {
        let profile = DatasetProfile::of(&self.relation, self.minhash_k);
        match budget {
            None => {
                let sketch = build_sketch(&self.relation, &self.sketch_config)?;
                Ok(ProviderUpload { sketch, profile, budget: None })
            }
            Some(b) => {
                // Clip features so the FPM sensitivity bound holds.
                let feature_cols: Vec<String> = match &self.sketch_config.feature_columns {
                    Some(cols) => cols.clone(),
                    None => self
                        .relation
                        .schema()
                        .numeric_names()
                        .into_iter()
                        .map(|s| s.to_string())
                        .collect(),
                };
                let refs: Vec<&str> = feature_cols.iter().map(|s| s.as_str()).collect();
                let clipped = clip_relation(&self.relation, &refs, self.fpm_config.bound)?;
                let raw_sketch = build_sketch(&clipped, &self.sketch_config)?;
                let fpm = FactorizedMechanism::new(self.fpm_config);
                let privatized = fpm.privatize(&raw_sketch, b, seed)?;
                Ok(ProviderUpload { sketch: privatized.sketch, profile, budget: Some(b) })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;
    use mileena_transform::MockLlm;

    fn rel() -> Relation {
        RelationBuilder::new("d")
            .int_col("k", &[1, 1, 2, 2])
            .float_col("x", &[0.5, -0.5, 3.0, -3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn non_private_upload_keeps_exact_sketch() {
        let upload = LocalDataStore::new(rel()).prepare_upload(None, 1).unwrap();
        assert_eq!(upload.sketch.full.c, 4.0);
        assert!(upload.budget.is_none());
        assert_eq!(upload.profile.name, "d");
    }

    #[test]
    fn private_upload_clips_and_noises() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let upload = LocalDataStore::new(rel()).prepare_upload(Some(b), 1).unwrap();
        // x was clipped to [-1, 1] before sketching, then noised; the sum
        // of |x| can't reflect the unclipped ±3 magnitudes.
        let xi = upload.sketch.full.feature_index("d.x").unwrap();
        assert!(upload.sketch.full.q[xi * 2 + xi].abs() < 100.0);
        assert_eq!(upload.budget, Some(b));
        // Perturbed relative to the clipped-exact sketch.
        let clipped = clip_relation(&rel(), &["k", "x"], 1.0).unwrap();
        let exact = build_sketch(&clipped, &SketchConfig::default()).unwrap();
        assert_ne!(upload.sketch.full, exact.full);
    }

    #[test]
    fn auto_transform_runs_agents() {
        let r = RelationBuilder::new("d")
            .str_col("title", &["2BR flat", "3BR loft", "1BR spot"])
            .float_col("y", &[2.0, 3.0, 1.0])
            .build()
            .unwrap();
        let mut store = LocalDataStore::new(r);
        let llm = MockLlm::new();
        let accepted = store.auto_transform(&llm, "predict y").unwrap();
        assert!(accepted >= 1);
        assert!(store.relation().schema().contains("title_num"));
    }
}
