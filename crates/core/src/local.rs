//! The provider/requester-side Local Data Store (Figure 1, blue workflow):
//! transform → clip → sketch → privatize → upload bundle.

use crate::error::{CoreError, Result};
use mileena_discovery::DatasetProfile;
use mileena_privacy::{clip_relation, FactorizedMechanism, FpmConfig, PrivacyBudget};
use mileena_relation::Relation;
use mileena_search::{SketchedRequest, TaskSpec};
use mileena_sketch::{build_sketch, DatasetSketch, SketchConfig};
use mileena_transform::{Llm, TransformPipeline};
use serde::{Deserialize, Serialize};

/// The bundle a provider sends to the central platform. Contains only
/// privacy-safe artifacts: (possibly privatized) sketches and the
/// discovery profile — never raw rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderUpload {
    /// The dataset's sketches (privatized when a budget was supplied).
    pub sketch: DatasetSketch,
    /// Discovery profile (MinHash + TF-IDF per column).
    pub profile: DatasetProfile,
    /// Budget consumed at privatization (None = non-private upload).
    pub budget: Option<PrivacyBudget>,
}

/// A requester's task in its raw, **client-side** form: the relations stay
/// here, in the local store's trust domain. [`LocalDataStore::sketch_request`]
/// turns it into the wire-side [`SketchedRequest`]; the raw form has no
/// serialization and never crosses the boundary.
#[derive(Debug, Clone)]
pub struct TaskRequest {
    /// Training relation (never leaves the local store).
    pub train: Relation,
    /// Test relation (never leaves the local store).
    pub test: Relation,
    /// The task.
    pub task: TaskSpec,
    /// Join-key columns the requester is willing to join on (`None` =
    /// every keyable column). Narrowing matters under FPM: each sketched
    /// key consumes a share of the requester's privacy budget.
    pub key_columns: Option<Vec<String>>,
    /// The requester's own DP budget for its train/test sketches (`None` =
    /// the requester opts out of privacy for its own data).
    pub budget: Option<PrivacyBudget>,
    /// Feature clip bound used when privatizing.
    pub clip_bound: f64,
    /// Noise seed for the (one-time) privatized release. Derive it from
    /// the dataset identity so repeat requests reuse the same release
    /// instead of spending budget again.
    pub seed: u64,
    /// Requester key for the platform's fair admission queue (`None` =
    /// shared anonymous bucket).
    pub requester: Option<String>,
}

impl TaskRequest {
    /// Sketch this task locally into its wire form.
    pub fn sketch(&self) -> Result<SketchedRequest> {
        LocalDataStore::sketch_request(self)
    }
}

/// Typed builder for a search request: collects the raw relations and task
/// client-side, validates them, and hands out either the raw
/// [`TaskRequest`] or the already-sketched wire form.
///
/// ```
/// use mileena_core::SearchRequestBuilder;
/// use mileena_relation::RelationBuilder;
/// use mileena_search::TaskSpec;
///
/// let train = RelationBuilder::new("train")
///     .int_col("zone", &[1, 2, 3])
///     .float_col("y", &[0.1, 0.2, 0.3])
///     .build().unwrap();
/// let test = train.clone().with_name("test");
/// let sketched = SearchRequestBuilder::new(train, test)
///     .task(TaskSpec::new("y", &[]))
///     .key_columns(&["zone"])
///     .sketch().unwrap();
/// assert!(sketched.budget.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SearchRequestBuilder {
    train: Relation,
    test: Relation,
    task: Option<TaskSpec>,
    key_columns: Option<Vec<String>>,
    budget: Option<PrivacyBudget>,
    clip_bound: f64,
    seed: u64,
    requester: Option<String>,
}

impl SearchRequestBuilder {
    /// Start from the requester's raw relations.
    pub fn new(train: Relation, test: Relation) -> Self {
        SearchRequestBuilder {
            train,
            test,
            task: None,
            key_columns: None,
            budget: None,
            clip_bound: FpmConfig::default().bound,
            seed: 0x5EED,
            requester: None,
        }
    }

    /// The ML task (required).
    pub fn task(mut self, task: TaskSpec) -> Self {
        self.task = Some(task);
        self
    }

    /// Restrict the join keys offered to the platform.
    pub fn key_columns(mut self, cols: &[&str]) -> Self {
        self.key_columns = Some(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Privatize the requester sketches with this (ε, δ) before upload.
    pub fn budget(mut self, budget: PrivacyBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Feature clip bound for privatization (default: the FPM default).
    pub fn clip_bound(mut self, bound: f64) -> Self {
        self.clip_bound = bound;
        self
    }

    /// Noise seed for the privatized release.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requester key for the platform's fair admission queue.
    pub fn requester(mut self, requester: impl Into<String>) -> Self {
        self.requester = Some(requester.into());
        self
    }

    /// Validate and produce the raw client-side request.
    pub fn build(self) -> Result<TaskRequest> {
        let task = self
            .task
            .ok_or_else(|| CoreError::Search("request builder: task is required".into()))?;
        if self.train.num_rows() == 0 {
            return Err(CoreError::Search("request builder: empty training relation".into()));
        }
        for col in task.all_columns() {
            for (rel, side) in [(&self.train, "train"), (&self.test, "test")] {
                if !rel.schema().contains(col) {
                    return Err(CoreError::Search(format!(
                        "request builder: task column `{col}` missing from {side} relation"
                    )));
                }
            }
        }
        Ok(TaskRequest {
            train: self.train,
            test: self.test,
            task,
            key_columns: self.key_columns,
            budget: self.budget,
            clip_bound: self.clip_bound,
            seed: self.seed,
            requester: self.requester,
        })
    }

    /// Validate, then sketch straight into the wire form.
    pub fn sketch(self) -> Result<SketchedRequest> {
        self.build()?.sketch()
    }
}

/// A provider's (or requester's) local store around one raw relation.
#[derive(Debug)]
pub struct LocalDataStore {
    relation: Relation,
    sketch_config: SketchConfig,
    fpm_config: FpmConfig,
    minhash_k: usize,
}

impl LocalDataStore {
    /// Wrap a raw relation with default configs.
    pub fn new(relation: Relation) -> Self {
        LocalDataStore {
            relation,
            sketch_config: SketchConfig::default(),
            fpm_config: FpmConfig::default(),
            minhash_k: 128,
        }
    }

    /// Override the sketch configuration.
    pub fn with_sketch_config(mut self, config: SketchConfig) -> Self {
        self.sketch_config = config;
        self
    }

    /// Override the FPM configuration.
    pub fn with_fpm_config(mut self, config: FpmConfig) -> Self {
        self.fpm_config = config;
        self
    }

    /// The current (possibly transformed) relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Run the agent-based transformation pipeline (§4.1) in place,
    /// returning the number of accepted transformations. This happens
    /// *before* sketching, on raw data the owner is trusted with.
    pub fn auto_transform(&mut self, llm: &dyn Llm, task_context: &str) -> Result<usize> {
        let report = TransformPipeline::new(llm).run(&self.relation, task_context)?;
        let accepted = report.accepted().len();
        self.relation = report.transformed;
        Ok(accepted)
    }

    /// Sketch a requester task into its wire form. This is the requester
    /// half of Figure 1's blue workflow: raw relations are reduced to
    /// semi-ring sketches (privatized when the request carries a budget)
    /// right here, in the owner's trust domain, and only the sketched form
    /// is handed to any `PlatformService` transport.
    pub fn sketch_request(request: &TaskRequest) -> Result<SketchedRequest> {
        let sketched = match request.budget {
            None => SketchedRequest::sketch(
                &request.train,
                &request.test,
                &request.task,
                request.key_columns.as_deref(),
            )?,
            Some(budget) => SketchedRequest::sketch_private(
                &request.train,
                &request.test,
                &request.task,
                request.key_columns.as_deref(),
                budget,
                request.clip_bound,
                request.seed,
            )?,
        };
        Ok(match &request.requester {
            Some(key) => sketched.with_requester(key.clone()),
            None => sketched,
        })
    }

    /// Produce the upload bundle.
    ///
    /// With a budget: numeric feature columns are clipped to the FPM bound
    /// and the sketches privatized (the dataset's entire (ε, δ) is consumed
    /// here, once — every later search is free post-processing).
    /// Without: raw sketches (for non-private deployments and baselines).
    pub fn prepare_upload(
        &self,
        budget: Option<PrivacyBudget>,
        seed: u64,
    ) -> Result<ProviderUpload> {
        let profile = DatasetProfile::of(&self.relation, self.minhash_k);
        match budget {
            None => {
                let sketch = build_sketch(&self.relation, &self.sketch_config)?;
                Ok(ProviderUpload { sketch, profile, budget: None })
            }
            Some(b) => {
                // Clip features so the FPM sensitivity bound holds.
                let feature_cols: Vec<String> = match &self.sketch_config.feature_columns {
                    Some(cols) => cols.clone(),
                    None => self
                        .relation
                        .schema()
                        .numeric_names()
                        .into_iter()
                        .map(|s| s.to_string())
                        .collect(),
                };
                let refs: Vec<&str> = feature_cols.iter().map(|s| s.as_str()).collect();
                let clipped = clip_relation(&self.relation, &refs, self.fpm_config.bound)?;
                let raw_sketch = build_sketch(&clipped, &self.sketch_config)?;
                let fpm = FactorizedMechanism::new(self.fpm_config);
                let privatized = fpm.privatize(&raw_sketch, b, seed)?;
                Ok(ProviderUpload { sketch: privatized.sketch, profile, budget: Some(b) })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;
    use mileena_transform::MockLlm;

    fn rel() -> Relation {
        RelationBuilder::new("d")
            .int_col("k", &[1, 1, 2, 2])
            .float_col("x", &[0.5, -0.5, 3.0, -3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn non_private_upload_keeps_exact_sketch() {
        let upload = LocalDataStore::new(rel()).prepare_upload(None, 1).unwrap();
        assert_eq!(upload.sketch.full.c, 4.0);
        assert!(upload.budget.is_none());
        assert_eq!(upload.profile.name, "d");
    }

    #[test]
    fn private_upload_clips_and_noises() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let upload = LocalDataStore::new(rel()).prepare_upload(Some(b), 1).unwrap();
        // x was clipped to [-1, 1] before sketching, then noised; the sum
        // of |x| can't reflect the unclipped ±3 magnitudes.
        let xi = upload.sketch.full.feature_index("d.x").unwrap();
        assert!(upload.sketch.full.q[xi * 2 + xi].abs() < 100.0);
        assert_eq!(upload.budget, Some(b));
        // Perturbed relative to the clipped-exact sketch.
        let clipped = clip_relation(&rel(), &["k", "x"], 1.0).unwrap();
        let exact = build_sketch(&clipped, &SketchConfig::default()).unwrap();
        assert_ne!(upload.sketch.full, exact.full);
    }

    #[test]
    fn provider_upload_wire_roundtrip() {
        let upload = LocalDataStore::new(rel()).prepare_upload(None, 1).unwrap();
        let json = serde_json::to_string(&upload).unwrap();
        let back: ProviderUpload = serde_json::from_str(&json).unwrap();
        assert_eq!(upload, back);
    }

    #[test]
    fn builder_validates_task_and_columns() {
        let train = rel();
        let test = rel().with_name("test");
        // Missing task.
        assert!(SearchRequestBuilder::new(train.clone(), test.clone()).build().is_err());
        // Task column absent from the relations.
        let err = SearchRequestBuilder::new(train.clone(), test.clone())
            .task(TaskSpec::new("nope", &["x"]))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        // Valid request sketches; budget recorded on the wire form.
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let sk = SearchRequestBuilder::new(train, test)
            .task(TaskSpec::new("x", &[]))
            .key_columns(&["k"])
            .budget(b)
            .seed(3)
            .sketch()
            .unwrap();
        assert_eq!(sk.budget, Some(b));
        assert_eq!(sk.key_columns.as_deref(), Some(&["k".to_string()][..]));
    }

    #[test]
    fn auto_transform_runs_agents() {
        let r = RelationBuilder::new("d")
            .str_col("title", &["2BR flat", "3BR loft", "1BR spot"])
            .float_col("y", &[2.0, 3.0, 1.0])
            .build()
            .unwrap();
        let mut store = LocalDataStore::new(r);
        let llm = MockLlm::new();
        let accepted = store.auto_transform(&llm, "predict y").unwrap();
        assert!(accepted >= 1);
        assert!(store.relation().schema().contains("title_num"));
    }
}
