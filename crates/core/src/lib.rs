//! The Mileena platform: the architecture of Figure 1 wired end to end.
//!
//! Two halves, matching the two-tier trust model (Figure 2):
//!
//! - [`LocalDataStore`] — runs **at the provider/requester**, who is
//!   trusted with their own raw data: automatic (agent-based)
//!   transformation, feature clipping, sketch computation, and FPM
//!   privatization all happen here. Only the resulting [`ProviderUpload`]
//!   (noisy sketches + discovery profile) ever leaves.
//! - [`CentralPlatform`] — the **untrusted** central search service: stores
//!   uploads, indexes them for discovery, and answers search requests over
//!   privatized sketches only. Budget accounting is enforced per dataset
//!   at upload time; searches are free post-processing.
//!
//! ```
//! use mileena_core::{CentralPlatform, LocalDataStore, PlatformConfig};
//! use mileena_privacy::PrivacyBudget;
//! use mileena_relation::RelationBuilder;
//! use mileena_search::{SearchConfig, SearchRequest, TaskSpec};
//!
//! // Provider side: prepare an upload (non-private here; pass a budget
//! // for FPM privatization).
//! let weather = RelationBuilder::new("weather")
//!     .int_col("zone", &(0..50).collect::<Vec<_>>())
//!     .float_col("temp", &(0..50).map(|z| (z as f64 * 0.7).sin()).collect::<Vec<_>>())
//!     .build().unwrap();
//! let upload = LocalDataStore::new(weather).prepare_upload(None, 7).unwrap();
//!
//! // Central side: register, then serve a request.
//! let platform = CentralPlatform::new(PlatformConfig::default());
//! platform.register(upload).unwrap();
//! let train = RelationBuilder::new("train")
//!     .int_col("zone", &(0..50).collect::<Vec<_>>())
//!     .float_col("y", &(0..50).map(|z| (z as f64 * 0.7).sin() * 2.0).collect::<Vec<_>>())
//!     .build().unwrap();
//! let test = train.clone().with_name("test");
//! let request = SearchRequest {
//!     train, test,
//!     task: TaskSpec::new("y", &[]),
//!     budget: None,
//!     key_columns: Some(vec!["zone".into()]),
//! };
//! let result = platform.search(&request, &SearchConfig::default()).unwrap();
//! assert_eq!(result.outcome.selected_joins(), vec!["weather"]);
//! ```

pub mod error;
pub mod local;
pub mod platform;

pub use error::{CoreError, Result};
pub use local::{LocalDataStore, ProviderUpload};
pub use platform::{CentralPlatform, PlatformConfig, PlatformSearchResult};
