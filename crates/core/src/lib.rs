//! The Mileena platform: the architecture of Figure 1 wired end to end.
//!
//! Two halves, matching the two-tier trust model (Figure 2):
//!
//! - [`LocalDataStore`] — runs **at the provider/requester**, who is
//!   trusted with their own raw data: automatic (agent-based)
//!   transformation, feature clipping, sketch computation, and FPM
//!   privatization all happen here. Only the resulting [`ProviderUpload`]
//!   (noisy sketches + discovery profile) ever leaves.
//! - [`CentralPlatform`] — the **untrusted** central search service: stores
//!   uploads, indexes them for discovery, and answers search requests over
//!   privatized sketches only. Budget accounting is enforced per dataset
//!   at upload time; searches are free post-processing.
//!
//! The boundary between the two is **sketches-only and versioned**: a
//! requester's raw relations are reduced to a `SketchedRequest` locally
//! (via [`SearchRequestBuilder`] / [`LocalDataStore`]), and the platform is
//! driven through the [`PlatformService`] trait — either [`InProcess`]
//! (direct calls) or [`JsonWire`] (full serde round-trip through the
//! versioned `{"v":1,...}` protocol in [`wire`]). Searches are live
//! [`SearchSession`]s streaming per-round progress, cancellable, and safe
//! to run concurrently.
//!
//! ```
//! use mileena_core::{
//!     CentralPlatform, InProcess, LocalDataStore, PlatformConfig, PlatformService,
//!     SearchRequestBuilder,
//! };
//! use mileena_relation::RelationBuilder;
//! use mileena_search::TaskSpec;
//! use std::sync::Arc;
//!
//! // Provider side: prepare an upload (non-private here; pass a budget
//! // for FPM privatization).
//! let weather = RelationBuilder::new("weather")
//!     .int_col("zone", &(0..50).collect::<Vec<_>>())
//!     .float_col("temp", &(0..50).map(|z| (z as f64 * 0.7).sin()).collect::<Vec<_>>())
//!     .build().unwrap();
//! let upload = LocalDataStore::new(weather).prepare_upload(None, 7).unwrap();
//!
//! // Central side: a platform behind a service transport.
//! let service = InProcess::new(Arc::new(CentralPlatform::new(PlatformConfig::default())));
//! service.register(upload).unwrap();
//!
//! // Requester side: raw relations are sketched locally; only the
//! // sketched form reaches the service.
//! let train = RelationBuilder::new("train")
//!     .int_col("zone", &(0..50).collect::<Vec<_>>())
//!     .float_col("y", &(0..50).map(|z| (z as f64 * 0.7).sin() * 2.0).collect::<Vec<_>>())
//!     .build().unwrap();
//! let test = train.clone().with_name("test");
//! let sketched = SearchRequestBuilder::new(train, test)
//!     .task(TaskSpec::new("y", &[]))
//!     .key_columns(&["zone"])
//!     .sketch().unwrap();
//! let reply = service.search(sketched, None).unwrap();
//! assert_eq!(reply.selected_joins(), vec!["weather"]);
//! ```

pub mod durable;
pub mod error;
pub mod local;
pub mod net;
pub mod platform;
pub mod retry;
pub mod sched;
pub mod service;
pub mod shard;
pub mod wire;

pub use durable::{RecoveryReport, StoragePolicy, WalOp};
pub use error::{CoreError, Result};
pub use local::{LocalDataStore, ProviderUpload, SearchRequestBuilder, TaskRequest};
pub use net::{ClientFrame, ServerFrame, TcpServer, TcpServerConfig, TcpWire};
pub use platform::{CentralPlatform, PlatformConfig, PlatformSearchResult};
pub use retry::{search_with_retry, RetryPolicy};
pub use sched::SchedulerConfig;
pub use service::{
    wire_admin, wire_register, wire_submit, InProcess, JsonWire, PlatformService, SearchSession,
    WireSession,
};
pub use shard::ShardedPlatform;
pub use wire::{
    AdminOp, AdminReply, CheckpointReceipt, DiscoveryReport, ErrorCode, PlatformStats,
    SchedulerReport, SearchReply, ShardReport, SpanBreakdown, StopCounts, StorageReport,
    WIRE_VERSION,
};
