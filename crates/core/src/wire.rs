//! The versioned JSON wire protocol of the platform service boundary.
//!
//! Every message is an envelope carrying an explicit protocol version
//! (`{"v":1,...}`); servers reject versions they don't speak with a typed
//! error response instead of guessing. Two request envelopes exist —
//! [`WireRegisterRequest`] (provider upload) and [`WireSearchRequest`]
//! (requester search) — and each has a matching response envelope whose
//! body is either an `ok` payload or a typed [`WireError`]. Search progress
//! streams as [`WireEvent`] envelopes, one per [`SearchEvent`].
//!
//! Nothing in this module can represent a raw relation: the search request
//! body is a [`SketchedRequest`] (sufficient statistics only), which is the
//! compile-time form of the paper's "raw data never leaves the local
//! store" boundary.
//!
//! Schema-evolution policy: both endpoints of this protocol ship from one
//! tree, so a release may add required fields to v1 payload bodies (e.g.
//! `SearchReply::bound_skips`) without bumping `WIRE_VERSION` — mixed-build
//! deployments are not supported. Purely *additive* fields whose zero value
//! means "the old behavior" should additionally be marked
//! `#[serde(default)]` (the in-tree serde shim substitutes
//! `Default::default()` when the field is absent), so a reply recorded or
//! produced by a pre-field build still parses — `SearchReply::degraded` /
//! `shards_missing` and `ShardReport::health` follow this rule. The version
//! field guards *protocol* breaks (envelope shape, semantics), not
//! same-tree body growth; revisit if clients ever ship separately.

use crate::durable::RecoveryReport;
use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use mileena_ml::LinearModel;
use mileena_obs::{HistogramSummary, MetricsReport};
use mileena_search::{
    Augmentation, SearchConfig, SearchEvent, SearchOutcome, SketchedRequest, StopReason,
};
use serde::{Deserialize, Serialize};

/// The wire protocol version this build speaks.
pub const WIRE_VERSION: u32 = 1;

/// Machine-readable error classes carried by error envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The envelope's `v` is not a version this server speaks.
    UnsupportedVersion,
    /// The payload failed to parse or validate.
    Malformed,
    /// A dataset with that name is already registered.
    DuplicateDataset,
    /// Privacy budget accounting rejected the operation.
    BudgetExhausted,
    /// The request parsed but cannot be served (bad task, no columns...).
    InvalidRequest,
    /// The platform is at its concurrent-session capacity.
    Capacity,
    /// The admission queue is full; back off and retry (the error carries
    /// `retry_after_ms`).
    Overloaded,
    /// The platform is shutting down; the queued session will never run.
    Shutdown,
    /// A shard worker is unavailable; the error carries the shard index.
    ShardUnavailable,
    /// Anything else; details in the message.
    Internal,
}

/// A typed wire-level error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: the server's estimate of when a retry
    /// is likely to be admitted, in milliseconds. `None` for other codes.
    pub retry_after_ms: Option<u64>,
    /// For [`ErrorCode::Overloaded`]: the admission-queue bound that was
    /// hit. `None` for other codes.
    pub queue_depth: Option<usize>,
    /// For [`ErrorCode::ShardUnavailable`]: which shard is down. `None`
    /// for other codes.
    pub shard: Option<usize>,
}

impl WireError {
    /// A plain coded error (no backpressure payload).
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
            queue_depth: None,
            shard: None,
        }
    }

    /// Encode a platform error, preserving the structured backpressure
    /// payload of [`CoreError::Overloaded`] so the client-side retry helper
    /// can honor the server's hint.
    pub fn from_core(err: &CoreError) -> Self {
        let mut wire = WireError::new(code_of(err), err.to_string());
        if let CoreError::Overloaded { queue_depth, retry_after_ms } = err {
            wire.retry_after_ms = Some(*retry_after_ms);
            wire.queue_depth = Some(*queue_depth);
        }
        if let CoreError::ShardUnavailable { shard } = err {
            wire.shard = Some(*shard);
        }
        wire
    }

    /// Decode back into the richest [`CoreError`] the payload supports:
    /// structured variants where the fields survived the trip, the generic
    /// `Wire` pass-through otherwise.
    pub(crate) fn into_core(self) -> CoreError {
        match (self.code, self.retry_after_ms, self.queue_depth) {
            (ErrorCode::Overloaded, Some(retry_after_ms), Some(queue_depth)) => {
                CoreError::Overloaded { queue_depth, retry_after_ms }
            }
            (ErrorCode::Shutdown, ..) => CoreError::Shutdown,
            (ErrorCode::ShardUnavailable, ..) if self.shard.is_some() => {
                CoreError::ShardUnavailable { shard: self.shard.unwrap() }
            }
            _ => CoreError::Wire { code: self.code, message: self.message },
        }
    }
}

/// Classify a platform error for the wire. Codes are a coarse, stable
/// vocabulary; the message keeps the detail. Capacity and the pass-through
/// are structural; duplicate detection matches the one stringified
/// `SketchError::DuplicateDataset` message (pinned by a test below so a
/// rewording cannot silently degrade the code).
pub fn code_of(err: &CoreError) -> ErrorCode {
    match err {
        CoreError::Privacy(_) => ErrorCode::BudgetExhausted,
        CoreError::Sketch(m) if m.contains("already registered") => ErrorCode::DuplicateDataset,
        CoreError::Search(_) | CoreError::Sketch(_) | CoreError::Relation(_) => {
            ErrorCode::InvalidRequest
        }
        CoreError::Capacity(_) => ErrorCode::Capacity,
        CoreError::Overloaded { .. } => ErrorCode::Overloaded,
        CoreError::Shutdown => ErrorCode::Shutdown,
        CoreError::ShardUnavailable { .. } => ErrorCode::ShardUnavailable,
        CoreError::Wire { code, .. } => *code,
        CoreError::Storage(_) => ErrorCode::Internal,
        _ => ErrorCode::Internal,
    }
}

// ---------------------------------------------------------------------------
// Requests

/// Provider upload envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRegisterRequest {
    /// Protocol version.
    pub v: u32,
    /// The upload bundle (sketches + profile + consumed budget).
    pub upload: ProviderUpload,
}

/// Requester search envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSearchRequest {
    /// Protocol version.
    pub v: u32,
    /// The sketches-only request.
    pub request: SketchedRequest,
    /// Optional search tuning; `None` = the platform's configured default.
    pub config: Option<SearchConfig>,
    /// Caller-chosen correlation id, echoed verbatim in the final
    /// [`SearchReply`] and in the server's slow-search log, so a client can
    /// line up its own records with the server's. `None` = uncorrelated.
    pub request_id: Option<u64>,
}

// ---------------------------------------------------------------------------
// Responses

/// What a successful registration reports back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterReceipt {
    /// Name of the dataset that was registered.
    pub dataset: String,
    /// Corpus size after the registration.
    pub datasets_total: usize,
}

/// Registration response envelope: exactly one of `ok` / `err` is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRegisterResponse {
    /// Protocol version.
    pub v: u32,
    /// Success payload.
    pub ok: Option<RegisterReceipt>,
    /// Typed failure.
    pub err: Option<WireError>,
}

impl WireRegisterResponse {
    /// Success envelope.
    pub fn ok(receipt: RegisterReceipt) -> Self {
        WireRegisterResponse { v: WIRE_VERSION, ok: Some(receipt), err: None }
    }

    /// Error envelope.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        WireRegisterResponse { v: WIRE_VERSION, ok: None, err: Some(WireError::new(code, message)) }
    }

    /// Error envelope from a platform error (preserves structured fields).
    pub fn err_core(e: &CoreError) -> Self {
        WireRegisterResponse { v: WIRE_VERSION, ok: None, err: Some(WireError::from_core(e)) }
    }

    /// Collapse into a client-side result.
    pub fn into_result(self) -> Result<RegisterReceipt> {
        match (self.ok, self.err) {
            (Some(receipt), None) => Ok(receipt),
            (_, Some(e)) => Err(e.into_core()),
            (None, None) => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "response carries neither ok nor err".into(),
            }),
        }
    }
}

/// One committed step, wire form (durations in milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyStep {
    /// The augmentation taken.
    pub augmentation: Augmentation,
    /// Proxy test-R² after committing it.
    pub score_after: f64,
    /// Wall-clock since search start when committed, in milliseconds.
    pub elapsed_ms: u64,
}

/// The fitted proxy model, wire form: enough for the requester to predict
/// (or to seed AutoML) without the server shipping internal state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReply {
    /// Whether coefficient 0 is an intercept.
    pub intercept: bool,
    /// Fitted coefficients (intercept first when enabled), in `features`
    /// order. Empty if the model could not be fitted.
    pub coefficients: Vec<f64>,
}

/// Per-stage wall-clock breakdown of one search, wire form (all fields
/// nanoseconds). The stages partition the platform's handling of a submit:
/// `prepare` (validation + sketched-state build), `enumerate` (candidate
/// enumeration under the discovery index read lock), `queue_wait`
/// (admission queue), `run` (the greedy/scatter loop), and `fit` (final
/// model fit) sum to within measurement error of `total`. `eval` is the
/// portion of `run` spent scoring rounds — informational, not part of the
/// partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanBreakdown {
    /// Submit receipt → reply built.
    pub total_ns: u64,
    /// Request validation + sketched-state build.
    pub prepare_ns: u64,
    /// Candidate enumeration under the discovery index read lock.
    pub enumerate_ns: u64,
    /// Admission-queue wait (enqueue → worker dequeue).
    pub queue_wait_ns: u64,
    /// The search loop itself (greedy or scatter-gather).
    pub run_ns: u64,
    /// Time inside `run` spent scoring evaluation rounds.
    pub eval_ns: u64,
    /// Final model fit after the loop.
    pub fit_ns: u64,
}

impl SpanBreakdown {
    /// Sum of the partitioning stages (everything except `eval_ns`, which
    /// is a subset of `run_ns`). Should track `total_ns` closely; a large
    /// gap means an unaccounted stage.
    pub fn staged_ns(&self) -> u64 {
        self.prepare_ns + self.enumerate_ns + self.queue_wait_ns + self.run_ns + self.fit_ns
    }
}

/// A completed search, wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchReply {
    /// Proxy test-R² before any augmentation.
    pub base_score: f64,
    /// Proxy test-R² after all augmentations.
    pub final_score: f64,
    /// Committed steps, in order.
    pub steps: Vec<ReplyStep>,
    /// Candidate evaluations performed (fully scored).
    pub evaluations: usize,
    /// Candidates pruned by their admissible score bound without being
    /// scored (0 when the search ran in exhaustive mode).
    pub bound_skips: usize,
    /// Store-backed candidates dropped by the request's `CandidateLimits`
    /// at enumeration (0 unless the corpus outgrew the configured caps).
    pub candidates_truncated: usize,
    /// Total wall-clock, in milliseconds.
    pub elapsed_ms: u64,
    /// Why the loop ended.
    pub stop_reason: StopReason,
    /// Model features of the final augmented task (target excluded).
    pub features: Vec<String>,
    /// The proxy model fitted on the final augmented statistics.
    pub model: ModelReply,
    /// The request's correlation id, echoed verbatim ([`WireSearchRequest::
    /// request_id`]); `None` when the caller sent none or the reply never
    /// crossed the wire.
    pub request_id: Option<u64>,
    /// Per-stage wall-clock breakdown of this search.
    pub spans: SpanBreakdown,
    /// `true` when this search ran over a partial shard set (the requester
    /// opted in via `SearchConfig::degraded_ok` and shards were down). A
    /// degraded reply is *complete over the shards that answered* but may
    /// miss selections living on the shards in `shards_missing` — clients
    /// must never mistake it for a full-corpus answer, which is why the
    /// flag rides in the reply body rather than a transport hint.
    /// `#[serde(default)]`: absent in pre-degraded replies, meaning `false`.
    #[serde(default)]
    pub degraded: bool,
    /// Shard indices that did not contribute to a degraded search, in
    /// ascending order. Empty whenever `degraded` is `false`.
    #[serde(default)]
    pub shards_missing: Vec<u32>,
}

impl SearchReply {
    /// Build the wire reply from a finished search outcome and its model.
    pub fn from_outcome(outcome: &SearchOutcome, model: &LinearModel) -> Self {
        SearchReply {
            base_score: outcome.base_score,
            final_score: outcome.final_score,
            steps: outcome
                .steps
                .iter()
                .map(|s| ReplyStep {
                    augmentation: s.augmentation.clone(),
                    score_after: s.score_after,
                    elapsed_ms: s.elapsed.as_millis() as u64,
                })
                .collect(),
            evaluations: outcome.evaluations,
            bound_skips: outcome.bound_skips,
            candidates_truncated: outcome.candidates_truncated,
            elapsed_ms: outcome.elapsed.as_millis() as u64,
            stop_reason: outcome.stop_reason,
            features: outcome.state.features().to_vec(),
            model: ModelReply {
                intercept: true,
                coefficients: model.coefficients().map(|c| c.to_vec()).unwrap_or_default(),
            },
            request_id: None,
            spans: SpanBreakdown {
                run_ns: u64::try_from(outcome.elapsed.as_nanos()).unwrap_or(u64::MAX),
                eval_ns: outcome.round_eval_ns.iter().copied().sum(),
                ..SpanBreakdown::default()
            },
            degraded: false,
            shards_missing: Vec::new(),
        }
    }

    /// The selected union set `R*_∪` (dataset names).
    pub fn selected_unions(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match &s.augmentation {
                Augmentation::Union { dataset, .. } => Some(dataset.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The selected join set `R*_⋈` (dataset names).
    pub fn selected_joins(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match &s.augmentation {
                Augmentation::Join { dataset, .. } => Some(dataset.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// Search response envelope: exactly one of `ok` / `err` is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSearchResponse {
    /// Protocol version.
    pub v: u32,
    /// Success payload.
    pub ok: Option<SearchReply>,
    /// Typed failure.
    pub err: Option<WireError>,
}

impl WireSearchResponse {
    /// Success envelope.
    pub fn ok(reply: SearchReply) -> Self {
        WireSearchResponse { v: WIRE_VERSION, ok: Some(reply), err: None }
    }

    /// Error envelope.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        WireSearchResponse { v: WIRE_VERSION, ok: None, err: Some(WireError::new(code, message)) }
    }

    /// Error envelope from a platform error (preserves structured fields).
    pub fn err_core(e: &CoreError) -> Self {
        WireSearchResponse { v: WIRE_VERSION, ok: None, err: Some(WireError::from_core(e)) }
    }

    /// Collapse into a client-side result.
    pub fn into_result(self) -> Result<SearchReply> {
        match (self.ok, self.err) {
            (Some(reply), None) => Ok(reply),
            (_, Some(e)) => Err(e.into_core()),
            (None, None) => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "response carries neither ok nor err".into(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Admin: checkpoint / stats

/// Administrative operations on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdminOp {
    /// Write a full-state snapshot and compact the log.
    Checkpoint,
    /// Report platform + storage statistics.
    Stats,
    /// Dump the full metrics registry (counters, gauges, histograms).
    Metrics,
}

/// What a successful checkpoint reports back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReceipt {
    /// WAL sequence the snapshot covers.
    pub seq: u64,
    /// Datasets captured in the snapshot.
    pub datasets: usize,
    /// Serialized snapshot payload size.
    pub snapshot_bytes: usize,
}

/// Storage-engine state, wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Storage directory.
    pub dir: String,
    /// Highest journaled sequence number.
    pub last_seq: u64,
    /// Sequence covered by the newest snapshot.
    pub snapshot_seq: Option<u64>,
    /// Records journaled since the last checkpoint (replay debt).
    pub records_since_checkpoint: u64,
    /// Total bytes across live log segments.
    pub wal_bytes: u64,
    /// Live log segment count.
    pub segments: usize,
    /// Live snapshot count.
    pub snapshots: usize,
    /// What the last `open` recovered.
    pub recovery: Option<RecoveryReport>,
    /// Error from the most recent auto-checkpoint attempt, if it failed
    /// (the mutation itself succeeded — the WAL holds it).
    pub last_checkpoint_error: Option<String>,
    /// Latency of WAL appends (journal write + fsync when configured).
    pub append_time: HistogramSummary,
    /// Latency of checkpoints (snapshot write + rotation + purge).
    pub checkpoint_time: HistogramSummary,
}

/// Discovery-tier index shape, wire form (see
/// `mileena_discovery::DiscoveryTierStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryReport {
    /// Live indexed datasets.
    pub datasets: usize,
    /// Indexed key-like columns (join tier).
    pub key_columns: usize,
    /// Live LSH band buckets (0 until the corpus crosses the brute-force
    /// limit — small corpora never build the table).
    pub lsh_buckets: usize,
    /// Schema-fingerprint buckets (union tier).
    pub schema_buckets: usize,
    /// Distinct TF-IDF posting terms.
    pub posting_terms: usize,
}

/// Per-stop-reason session completion counts (see
/// `mileena_search::StopReason`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StopCounts {
    /// Sessions that converged (no candidate cleared `min_gain`).
    pub converged: u64,
    /// Sessions that committed every allowed round.
    pub max_augmentations: u64,
    /// Sessions stopped by their time budget or deadline mid-run.
    pub time_budget: u64,
    /// Sessions cooperatively cancelled (queued or running).
    pub cancelled: u64,
    /// Sessions shed by admission control before any round ran.
    pub shed: u64,
}

impl StopCounts {
    /// Record one finished session.
    pub fn record(&mut self, reason: StopReason) {
        match reason {
            StopReason::Converged => self.converged += 1,
            StopReason::MaxAugmentations => self.max_augmentations += 1,
            StopReason::TimeBudget => self.time_budget += 1,
            StopReason::Cancelled => self.cancelled += 1,
            StopReason::Shed => self.shed += 1,
        }
    }
}

/// Session-scheduler state and lifetime counters, wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerReport {
    /// Worker-pool size.
    pub workers: usize,
    /// Sessions currently waiting in the admission queue.
    pub queued: usize,
    /// Configured admission-queue bound.
    pub queue_depth_limit: usize,
    /// Deepest the queue has ever been (high-water mark).
    pub queue_high_water: usize,
    /// Sessions admitted (queued or served immediately) over the
    /// platform's lifetime.
    pub admitted: u64,
    /// Sessions that produced a reply (any stop reason).
    pub completed: u64,
    /// Submissions rejected with `Overloaded` (queue full).
    pub shed_overload: u64,
    /// Sessions shed by deadline-aware admission (replied `Shed`).
    pub shed_deadline: u64,
    /// Queued sessions dropped with `Shutdown` at platform drop.
    pub shed_shutdown: u64,
    /// Worker panics converted to typed `Internal` replies.
    pub panicked: u64,
    /// Completions by stop reason.
    pub stops: StopCounts,
    /// Admission-queue wait (enqueue → worker dequeue) across every job
    /// that reached a worker.
    pub queue_wait: HistogramSummary,
    /// Worker execution time of jobs that actually ran (immediate
    /// shed/cancel replies are excluded).
    pub run_time: HistogramSummary,
}

/// Supervision state of one shard, wire form. The state machine is
/// Healthy → Suspect (breaker accumulating strikes) → Quarantined (breaker
/// open, shard excluded from scatter) → Recovering (half-open probe /
/// WAL re-open in flight) → Healthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardHealthState {
    /// Serving normally; breaker closed.
    #[default]
    Healthy,
    /// Recent failures below the breaker threshold; still serving.
    Suspect,
    /// Breaker open: excluded from scatter until recovery succeeds.
    Quarantined,
    /// Half-open: a recovery (WAL re-open + membership re-merge) or probe
    /// is in flight.
    Recovering,
}

/// Per-shard supervision report: breaker state plus lifetime transition
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Current supervision state.
    pub state: ShardHealthState,
    /// Consecutive failures currently accumulated against the breaker
    /// (resets to 0 on any success).
    pub consecutive_failures: u64,
    /// Times the breaker opened (shard entered quarantine) over the
    /// platform's lifetime.
    pub breaker_opened: u64,
    /// Gather-deadline timeout strikes recorded against this shard.
    pub timeout_strikes: u64,
    /// Successful recoveries (quarantine → healthy) over the platform's
    /// lifetime.
    pub recoveries: u64,
}

/// Sharded scatter-gather state, wire form (`None` on single-shard
/// `CentralPlatform` deployments).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Number of shard workers.
    pub shards: usize,
    /// Registered datasets per shard, indexed by shard.
    pub datasets_per_shard: Vec<usize>,
    /// Greedy rounds driven by the scatter-gather coordinator across all
    /// completed searches (each scatters to the shards and gathers one
    /// global incumbent).
    pub scatter_rounds: u64,
    /// Per-shard round evaluations actually scattered (gather count).
    pub gather_rounds: u64,
    /// Shard-rounds skipped whole because the shard's admissible score
    /// ceiling could not beat the global incumbent.
    pub cross_shard_bound_skips: u64,
    /// Shards currently marked unavailable (empty when healthy).
    pub unavailable: Vec<usize>,
    /// Per-shard gather time: one sample per shard-round actually scored
    /// (the latency distribution behind `gather_rounds`).
    pub gather: HistogramSummary,
    /// Per-shard supervision state (one entry per shard, indexed by
    /// `shard`). `#[serde(default)]`: absent in pre-supervision reports.
    #[serde(default)]
    pub health: Vec<ShardHealth>,
}

/// Platform statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Registered datasets.
    pub datasets: usize,
    /// Sessions admitted and not yet finished (queued + running).
    pub active_sessions: usize,
    /// Candidates fully scored across all completed searches.
    pub search_evaluations: u64,
    /// Candidates pruned by bound across all completed searches.
    pub search_bound_skips: u64,
    /// Candidates dropped by per-search `CandidateLimits` across all
    /// completed searches (non-zero means limits are actually biting —
    /// an operator signal to raise them or shard the corpus).
    pub search_candidates_truncated: u64,
    /// Discovery-index shape (buckets, postings, key columns).
    pub discovery: DiscoveryReport,
    /// Session-scheduler queue state and shed/panic counters.
    pub scheduler: SchedulerReport,
    /// Storage-engine state (`None` on volatile platforms).
    pub storage: Option<StorageReport>,
    /// Scatter-gather shard state (`None` on single-shard platforms).
    pub shards: Option<ShardReport>,
}

/// Admin request envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireAdminRequest {
    /// Protocol version.
    pub v: u32,
    /// The operation.
    pub op: AdminOp,
}

/// Admin reply payload, tagged by operation.
// Variant sizes are lopsided (`Stats` carries the full report), but the
// value is a transient envelope, never stored in bulk; boxing would need
// `Box` support in the in-tree serde shim for no memory win that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdminReply {
    /// Checkpoint receipt.
    Checkpoint(CheckpointReceipt),
    /// Statistics report.
    Stats(PlatformStats),
    /// Metrics registry dump.
    Metrics(MetricsReport),
}

/// Admin response envelope: exactly one of `ok` / `err` is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireAdminResponse {
    /// Protocol version.
    pub v: u32,
    /// Success payload.
    pub ok: Option<AdminReply>,
    /// Typed failure.
    pub err: Option<WireError>,
}

impl WireAdminResponse {
    /// Success envelope.
    pub fn ok(reply: AdminReply) -> Self {
        WireAdminResponse { v: WIRE_VERSION, ok: Some(reply), err: None }
    }

    /// Error envelope.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        WireAdminResponse { v: WIRE_VERSION, ok: None, err: Some(WireError::new(code, message)) }
    }

    /// Error envelope from a platform error (preserves structured fields).
    pub fn err_core(e: &CoreError) -> Self {
        WireAdminResponse { v: WIRE_VERSION, ok: None, err: Some(WireError::from_core(e)) }
    }

    /// Collapse into a client-side result.
    pub fn into_result(self) -> Result<AdminReply> {
        match (self.ok, self.err) {
            (Some(reply), None) => Ok(reply),
            (_, Some(e)) => Err(e.into_core()),
            (None, None) => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "response carries neither ok nor err".into(),
            }),
        }
    }
}

/// Streaming progress envelope: one per [`SearchEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEvent {
    /// Protocol version.
    pub v: u32,
    /// The session this event belongs to.
    pub session: u64,
    /// The event.
    pub event: SearchEvent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_relation::RelationBuilder;
    use mileena_search::TaskSpec;

    fn sketched() -> SketchedRequest {
        let train = RelationBuilder::new("train")
            .int_col("zone", &[1, 2, 3, 4, 5])
            .float_col("base_x", &[0.1, 0.4, 0.9, 1.6, 2.5])
            .float_col("y", &[1.0, 2.0, 3.0, 4.0, 5.0])
            .build()
            .unwrap();
        let test = train.clone().with_name("test");
        let keys = vec!["zone".to_string()];
        SketchedRequest::sketch(&train, &test, &TaskSpec::new("y", &["base_x"]), Some(&keys))
            .unwrap()
    }

    #[test]
    fn search_request_envelope_roundtrip() {
        let req = WireSearchRequest {
            v: WIRE_VERSION,
            request: sketched(),
            config: Some(SearchConfig::default()),
            request_id: Some(42),
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.starts_with("{\"v\":1,"), "version leads the envelope: {json}");
        let back: WireSearchRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn error_envelope_roundtrip_is_typed() {
        let resp = WireSearchResponse::err(ErrorCode::UnsupportedVersion, "speak v1");
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireSearchResponse = serde_json::from_str(&json).unwrap();
        let err = back.into_result().unwrap_err();
        assert!(matches!(
            err,
            CoreError::Wire { code: ErrorCode::UnsupportedVersion, ref message } if message == "speak v1"
        ));
    }

    #[test]
    fn event_envelope_roundtrip() {
        let ev = WireEvent {
            v: WIRE_VERSION,
            session: 7,
            event: SearchEvent::Started { candidates: 12, truncated: 0 },
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: WireEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn error_code_mapping_is_pinned() {
        // Structural mappings.
        assert_eq!(code_of(&CoreError::Capacity(4)), ErrorCode::Capacity);
        assert_eq!(code_of(&CoreError::Privacy("x".into())), ErrorCode::BudgetExhausted);
        assert_eq!(code_of(&CoreError::Transform("x".into())), ErrorCode::Internal);
        // The duplicate mapping rides on SketchError's Display wording:
        // this pin fails if that wording ever drifts.
        let dup: CoreError = mileena_sketch::SketchError::DuplicateDataset("d".into()).into();
        assert_eq!(code_of(&dup), ErrorCode::DuplicateDataset);
    }

    #[test]
    fn admin_envelopes_roundtrip() {
        let req = WireAdminRequest { v: WIRE_VERSION, op: AdminOp::Checkpoint };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.starts_with("{\"v\":1,"), "{json}");
        let back: WireAdminRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);

        let resp = WireAdminResponse::ok(AdminReply::Stats(PlatformStats {
            datasets: 3,
            active_sessions: 1,
            search_evaluations: 120,
            search_bound_skips: 48,
            search_candidates_truncated: 7,
            discovery: DiscoveryReport {
                datasets: 3,
                key_columns: 5,
                lsh_buckets: 0,
                schema_buckets: 2,
                posting_terms: 40,
            },
            scheduler: SchedulerReport {
                workers: 4,
                queued: 2,
                queue_depth_limit: 256,
                queue_high_water: 17,
                admitted: 120,
                completed: 117,
                shed_overload: 9,
                shed_deadline: 3,
                shed_shutdown: 0,
                panicked: 1,
                stops: StopCounts {
                    converged: 80,
                    max_augmentations: 30,
                    time_budget: 2,
                    cancelled: 2,
                    shed: 3,
                },
                queue_wait: HistogramSummary {
                    count: 117,
                    sum_ns: 9_000_000,
                    p50_ns: 60_000,
                    p95_ns: 200_000,
                    p99_ns: 400_000,
                    max_ns: 512_345,
                },
                run_time: HistogramSummary::default(),
            },
            storage: Some(StorageReport {
                dir: "/tmp/x".into(),
                last_seq: 12,
                snapshot_seq: Some(10),
                records_since_checkpoint: 2,
                wal_bytes: 4096,
                segments: 1,
                snapshots: 2,
                recovery: Some(RecoveryReport {
                    snapshot_seq: Some(10),
                    replayed_records: 2,
                    torn_tail: true,
                    invalid_snapshots: 0,
                    snapshot_bytes: 2048,
                    delta_links: 1,
                    eager_ms: 7,
                    replay_ms: 3,
                    lazy_datasets: 4,
                }),
                last_checkpoint_error: None,
                append_time: HistogramSummary {
                    count: 12,
                    sum_ns: 1_200_000,
                    p50_ns: 90_000,
                    p95_ns: 150_000,
                    p99_ns: 150_000,
                    max_ns: 151_000,
                },
                checkpoint_time: HistogramSummary::default(),
            }),
            shards: Some(ShardReport {
                shards: 4,
                datasets_per_shard: vec![1, 0, 2, 0],
                scatter_rounds: 9,
                gather_rounds: 31,
                cross_shard_bound_skips: 5,
                unavailable: vec![2],
                gather: HistogramSummary {
                    count: 31,
                    sum_ns: 31_000_000,
                    p50_ns: 1_000_000,
                    p95_ns: 2_000_000,
                    p99_ns: 2_000_000,
                    max_ns: 2_100_000,
                },
                health: vec![
                    ShardHealth { shard: 0, ..ShardHealth::default() },
                    ShardHealth {
                        shard: 1,
                        state: ShardHealthState::Suspect,
                        consecutive_failures: 2,
                        timeout_strikes: 1,
                        ..ShardHealth::default()
                    },
                    ShardHealth {
                        shard: 2,
                        state: ShardHealthState::Quarantined,
                        consecutive_failures: 3,
                        breaker_opened: 1,
                        timeout_strikes: 0,
                        recoveries: 0,
                    },
                    ShardHealth {
                        shard: 3,
                        recoveries: 1,
                        breaker_opened: 1,
                        ..ShardHealth::default()
                    },
                ],
            }),
        }));
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireAdminResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
        match back.into_result().unwrap() {
            AdminReply::Stats(stats) => {
                assert_eq!(stats.storage.unwrap().recovery.unwrap().replayed_records, 2);
                assert_eq!(stats.scheduler.queue_high_water, 17);
                assert_eq!(stats.scheduler.stops.shed, 3);
                let shards = stats.shards.unwrap();
                assert_eq!(shards.datasets_per_shard, vec![1, 0, 2, 0]);
                assert_eq!(shards.cross_shard_bound_skips, 5);
                assert_eq!(shards.unavailable, vec![2]);
                assert_eq!(shards.gather.count, 31);
                assert_eq!(shards.health.len(), 4);
                assert_eq!(shards.health[2].state, ShardHealthState::Quarantined);
                assert_eq!(shards.health[2].breaker_opened, 1);
                assert_eq!(shards.health[3].recoveries, 1);
                assert_eq!(stats.scheduler.queue_wait.p99_ns, 400_000);
            }
            other => panic!("wrong reply: {other:?}"),
        }

        // The metrics dump rides the same envelope.
        let mut metrics = MetricsReport::default();
        metrics.counters.push(("searches_completed".into(), 12));
        let resp = WireAdminResponse::ok(AdminReply::Metrics(metrics));
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireAdminResponse = serde_json::from_str(&json).unwrap();
        match back.into_result().unwrap() {
            AdminReply::Metrics(m) => assert_eq!(m.counter("searches_completed"), Some(12)),
            other => panic!("wrong reply: {other:?}"),
        }

        let err = WireAdminResponse::err(ErrorCode::Internal, "no storage");
        let json = serde_json::to_string(&err).unwrap();
        let back: WireAdminResponse = serde_json::from_str(&json).unwrap();
        assert!(matches!(
            back.into_result(),
            Err(CoreError::Wire { code: ErrorCode::Internal, .. })
        ));
    }

    #[test]
    fn overloaded_and_shutdown_errors_roundtrip_structured() {
        // Overloaded: the backpressure payload must survive the wire so the
        // client-side retry helper can honor the server's hint.
        let core = CoreError::Overloaded { queue_depth: 64, retry_after_ms: 250 };
        assert_eq!(code_of(&core), ErrorCode::Overloaded);
        let resp = WireSearchResponse::err_core(&core);
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireSearchResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.into_result().unwrap_err(), core);

        // Shutdown reconstructs structurally too.
        let resp = WireSearchResponse::err_core(&CoreError::Shutdown);
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireSearchResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.into_result().unwrap_err(), CoreError::Shutdown);

        // A plain-coded error keeps the generic Wire pass-through.
        let resp = WireSearchResponse::err(ErrorCode::Internal, "boom");
        assert!(matches!(
            resp.into_result().unwrap_err(),
            CoreError::Wire { code: ErrorCode::Internal, .. }
        ));
    }

    #[test]
    fn shard_unavailable_roundtrips_with_shard_id() {
        let core = CoreError::ShardUnavailable { shard: 3 };
        assert_eq!(code_of(&core), ErrorCode::ShardUnavailable);
        let resp = WireSearchResponse::err_core(&core);
        assert_eq!(resp.err.as_ref().unwrap().shard, Some(3));
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireSearchResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.into_result().unwrap_err(), core);

        // Without the shard id the code degrades to the generic pass-through
        // instead of inventing a shard.
        let resp = WireSearchResponse::err(ErrorCode::ShardUnavailable, "shard down");
        assert!(matches!(
            resp.into_result().unwrap_err(),
            CoreError::Wire { code: ErrorCode::ShardUnavailable, .. }
        ));
    }

    fn canned_reply() -> SearchReply {
        SearchReply {
            base_score: 0.4,
            final_score: 0.9,
            steps: Vec::new(),
            evaluations: 7,
            bound_skips: 2,
            candidates_truncated: 0,
            elapsed_ms: 12,
            stop_reason: StopReason::Converged,
            features: vec!["base_x".into()],
            model: ModelReply { intercept: true, coefficients: vec![0.1, 0.8] },
            request_id: Some(99),
            spans: SpanBreakdown::default(),
            degraded: false,
            shards_missing: Vec::new(),
        }
    }

    #[test]
    fn degraded_reply_roundtrips_labeled() {
        let mut reply = canned_reply();
        reply.degraded = true;
        reply.shards_missing = vec![1, 3];
        let resp = WireSearchResponse::ok(reply.clone());
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"degraded\":true"), "label must be explicit on the wire: {json}");
        let back: WireSearchResponse = serde_json::from_str(&json).unwrap();
        let got = back.into_result().unwrap();
        assert!(got.degraded);
        assert_eq!(got.shards_missing, vec![1, 3]);
        assert_eq!(got, reply);
    }

    #[test]
    fn old_style_reply_without_degraded_fields_still_parses() {
        // A reply serialized by a pre-fault-tolerance build has neither
        // `degraded` nor `shards_missing`. The schema-evolution policy
        // (module docs) says additive defaulted fields must parse as their
        // zero value — i.e. an unlabeled reply is a complete reply.
        let json = serde_json::to_string(&WireSearchResponse::ok(canned_reply())).unwrap();
        let stripped =
            json.replace(",\"degraded\":false", "").replace(",\"shards_missing\":[]", "");
        assert_ne!(json, stripped, "test must actually strip the new fields");
        let back: WireSearchResponse = serde_json::from_str(&stripped).unwrap();
        let got = back.into_result().unwrap();
        assert!(!got.degraded);
        assert!(got.shards_missing.is_empty());
        assert_eq!(got, canned_reply());
    }

    #[test]
    fn empty_response_is_malformed() {
        let resp = WireSearchResponse { v: WIRE_VERSION, ok: None, err: None };
        assert!(matches!(
            resp.into_result(),
            Err(CoreError::Wire { code: ErrorCode::Malformed, .. })
        ));
    }
}
