//! Platform-level errors.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors surfaced by the platform facade.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying sketch failure.
    Sketch(String),
    /// Underlying privacy failure (budget exhaustion etc.).
    Privacy(String),
    /// Underlying search failure.
    Search(String),
    /// Underlying transformation failure.
    Transform(String),
    /// Underlying relational failure.
    Relation(String),
    /// Service-layer failure (dead sessions, protocol misuse).
    Service(String),
    /// Durable-storage failure (journal, snapshot, or recovery).
    Storage(String),
    /// The platform is at its concurrent-session capacity (the limit).
    Capacity(usize),
    /// The admission queue is full: the session was shed at submit time.
    /// Clients should back off and retry (see `mileena_core::retry`).
    Overloaded {
        /// Queue depth at the moment of the shed (the configured bound).
        queue_depth: usize,
        /// Server's estimate of when a retry is likely to be admitted,
        /// in milliseconds from now.
        retry_after_ms: u64,
    },
    /// The platform is shutting down; the session was still queued and
    /// will never run. Not retryable against this instance.
    Shutdown,
    /// A shard worker is unavailable. Mutations owned by the shard and
    /// scatter-gather searches are rejected rather than served partially —
    /// a partial scatter would silently change selections.
    ShardUnavailable {
        /// Index of the unavailable shard.
        shard: usize,
    },
    /// A typed error that crossed the wire protocol.
    Wire {
        /// Machine-readable error class from the wire envelope.
        code: crate::wire::ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sketch(m) => write!(f, "sketch: {m}"),
            CoreError::Privacy(m) => write!(f, "privacy: {m}"),
            CoreError::Search(m) => write!(f, "search: {m}"),
            CoreError::Transform(m) => write!(f, "transform: {m}"),
            CoreError::Relation(m) => write!(f, "relation: {m}"),
            CoreError::Service(m) => write!(f, "service: {m}"),
            CoreError::Storage(m) => write!(f, "storage: {m}"),
            CoreError::Capacity(max) => {
                write!(f, "service: platform at capacity ({max} concurrent sessions)")
            }
            CoreError::Overloaded { queue_depth, retry_after_ms } => write!(
                f,
                "service: admission queue full ({queue_depth} deep); retry in ~{retry_after_ms}ms"
            ),
            CoreError::Shutdown => {
                write!(f, "service: platform is shutting down; queued session dropped")
            }
            CoreError::ShardUnavailable { shard } => {
                write!(f, "service: shard {shard} is unavailable")
            }
            CoreError::Wire { code, message } => write!(f, "wire [{code:?}]: {message}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mileena_sketch::SketchError> for CoreError {
    fn from(e: mileena_sketch::SketchError) -> Self {
        CoreError::Sketch(e.to_string())
    }
}
impl From<mileena_privacy::PrivacyError> for CoreError {
    fn from(e: mileena_privacy::PrivacyError) -> Self {
        CoreError::Privacy(e.to_string())
    }
}
impl From<mileena_search::SearchError> for CoreError {
    fn from(e: mileena_search::SearchError) -> Self {
        CoreError::Search(e.to_string())
    }
}
impl From<mileena_transform::TransformError> for CoreError {
    fn from(e: mileena_transform::TransformError) -> Self {
        CoreError::Transform(e.to_string())
    }
}
impl From<mileena_relation::RelationError> for CoreError {
    fn from(e: mileena_relation::RelationError) -> Self {
        CoreError::Relation(e.to_string())
    }
}
impl From<mileena_storage::StorageError> for CoreError {
    fn from(e: mileena_storage::StorageError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn display() {
        assert!(super::CoreError::Privacy("x".into()).to_string().contains("privacy"));
    }
}
