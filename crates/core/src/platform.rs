//! The central task-based dataset search service (Figure 1, green
//! workflow): sketch store + discovery index + search, behind one API.

use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use mileena_discovery::{DiscoveryConfig, DiscoveryIndex};
use mileena_ml::{LinearModel, RidgeConfig};
use mileena_privacy::BudgetAccountant;
use mileena_search::{
    enumerate_candidates, GreedySearch, SearchConfig, SearchOutcome, SearchRequest,
};
use mileena_sketch::SketchStore;
use parking_lot::Mutex;

/// Platform-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct PlatformConfig {
    /// Discovery tuning.
    pub discovery: DiscoveryConfig,
}

/// What a search request returns to the requester.
#[derive(Debug)]
pub struct PlatformSearchResult {
    /// The greedy search trace and final state.
    pub outcome: SearchOutcome,
    /// The proxy model trained on the final augmented statistics, ready
    /// for the requester to use (or to hand the materialized augmented
    /// data to AutoML, as the Figure 4 pipeline does).
    pub model: LinearModel,
}

/// The central platform. Thread-safe: uploads and searches may interleave.
#[derive(Debug)]
pub struct CentralPlatform {
    store: SketchStore,
    index: Mutex<DiscoveryIndex>,
    accountant: Mutex<BudgetAccountant>,
    #[allow(dead_code)]
    config: PlatformConfig,
}

impl CentralPlatform {
    /// New empty platform.
    pub fn new(config: PlatformConfig) -> Self {
        CentralPlatform {
            store: SketchStore::new(),
            index: Mutex::new(DiscoveryIndex::new(config.discovery.clone())),
            accountant: Mutex::new(BudgetAccountant::new()),
            config,
        }
    }

    /// Register a provider upload: sketches into the store, profile into
    /// the discovery index, and — for private uploads — the consumed
    /// budget into the accountant (rejecting double registration).
    pub fn register(&self, upload: ProviderUpload) -> Result<()> {
        if let Some(budget) = upload.budget {
            let mut acc = self.accountant.lock();
            acc.register(&upload.sketch.name, budget)?;
            acc.charge(&upload.sketch.name, budget)?;
        }
        self.store.register(upload.sketch)?;
        self.index.lock().register(upload.profile);
        Ok(())
    }

    /// Number of registered datasets.
    pub fn num_datasets(&self) -> usize {
        self.store.len()
    }

    /// The sketch store (read access for benches/inspection).
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// Serve a search request (Problem 1): discovery → greedy sketch
    /// search → fitted proxy model. Pure post-processing of the uploaded
    /// sketches — no budget is consumed here, regardless of how many
    /// requests arrive (the FPM guarantee).
    pub fn search(
        &self,
        request: &SearchRequest,
        config: &SearchConfig,
    ) -> Result<PlatformSearchResult> {
        let (state, profile) = mileena_search::greedy::build_requester_state(request, config)?;
        let candidates = {
            let index = self.index.lock();
            enumerate_candidates(&index, &self.store, &profile)
        };
        let outcome = GreedySearch::new(config.clone()).run(state, candidates, &self.store)?;

        // Train the final proxy model on the augmented statistics.
        let mut model = LinearModel::new(RidgeConfig { lambda: config.lambda, intercept: true });
        let features: Vec<&str> = outcome.state.features().iter().map(|s| s.as_str()).collect();
        let triple = outcome.state.train_triple();
        let sys = triple
            .lr_system(&features, &request.task.target, true)
            .map_err(|e| CoreError::Search(e.to_string()))?;
        model.fit_from_system(&sys).map_err(|e| CoreError::Search(e.to_string()))?;
        Ok(PlatformSearchResult { outcome, model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalDataStore;
    use mileena_datagen::{generate_corpus, CorpusConfig};
    use mileena_privacy::PrivacyBudget;
    use mileena_search::TaskSpec;

    fn corpus() -> mileena_datagen::NycCorpus {
        generate_corpus(&CorpusConfig {
            num_datasets: 15,
            num_signal: 2,
            num_union: 1,
            num_novelty_traps: 2,
            train_rows: 300,
            test_rows: 300,
            provider_rows: 150,
            key_domain: 60,
            signal_rows_per_key: 1,
            noise: 0.1,
            nonlinear_strength: 0.0,
            seed: 55,
        })
    }

    fn request(c: &mileena_datagen::NycCorpus) -> SearchRequest {
        SearchRequest {
            train: c.train.clone(),
            test: c.test.clone(),
            task: TaskSpec::new("y", &["base_x"]),
            budget: None,
            key_columns: Some(vec!["zone".into()]),
        }
    }

    #[test]
    fn end_to_end_non_private() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap();
            platform.register(upload).unwrap();
        }
        assert_eq!(platform.num_datasets(), 15);
        let result = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        assert!(
            result.outcome.final_score > result.outcome.base_score + 0.3,
            "{} → {}",
            result.outcome.base_score,
            result.outcome.final_score
        );
        // The returned model is fitted over base + augmented features.
        assert!(result.model.coefficients().is_some());
    }

    #[test]
    fn double_registration_of_private_upload_rejected() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let upload =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(Some(b), 1).unwrap();
        platform.register(upload.clone()).unwrap();
        assert!(platform.register(upload).is_err());
    }

    #[test]
    fn searches_are_free_and_repeatable() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let b = PrivacyBudget::new(2.0, 1e-6).unwrap();
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(Some(b), 11).unwrap();
            platform.register(upload).unwrap();
        }
        let r1 = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        // Many more searches: none can fail on budget; results identical
        // (post-processing of the same release is deterministic).
        for _ in 0..5 {
            let rn = platform.search(&request(&c), &SearchConfig::default()).unwrap();
            assert_eq!(rn.outcome.final_score, r1.outcome.final_score);
        }
    }
}
