//! The central task-based dataset search service (Figure 1, green
//! workflow): sketch store + discovery index + search sessions, behind one
//! sketches-only API.
//!
//! The platform never sees raw requester data: searches arrive as
//! [`SketchedRequest`]s (see `mileena-search::request`), and every session
//! runs against a frozen store snapshot plus an index read-lock snapshot —
//! N requesters search in parallel against consistent corpus views while
//! providers keep registering.

use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use crate::service::SearchSession;
use crate::wire::SearchReply;
use mileena_discovery::{DiscoveryConfig, DiscoveryIndex};
use mileena_ml::{LinearModel, RidgeConfig};
use mileena_privacy::{BudgetAccountant, PrivacyBudget};
use mileena_search::{
    build_sketched_state, enumerate_candidates, GreedySearch, SearchConfig, SearchControl,
    SearchEvent, SearchOutcome, SearchRequest, SketchedRequest,
};
use mileena_sketch::SketchStore;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Platform-wide configuration, honored by the service layer.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Discovery tuning.
    pub discovery: DiscoveryConfig,
    /// Search configuration applied when a request doesn't carry its own.
    pub default_search: SearchConfig,
    /// Maximum concurrently running search sessions; submissions beyond
    /// this are rejected with a capacity error.
    pub max_concurrent_sessions: usize,
    /// Server-side wall-clock cap per session, enforced as a deadline on
    /// top of each request's own `time_budget` (`None` = no extra cap).
    pub max_session_wall: Option<Duration>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            discovery: DiscoveryConfig::default(),
            default_search: SearchConfig::default(),
            max_concurrent_sessions: 64,
            max_session_wall: None,
        }
    }
}

/// What a search request returns to the requester.
#[derive(Debug)]
pub struct PlatformSearchResult {
    /// The greedy search trace and final state.
    pub outcome: SearchOutcome,
    /// The proxy model trained on the final augmented statistics, ready
    /// for the requester to use (or to hand the materialized augmented
    /// data to AutoML, as the Figure 4 pipeline does).
    pub model: LinearModel,
}

/// Decrements the active-session counter when a session ends, however it
/// ends (normal finish, error, panic).
pub(crate) struct SessionGuard(Arc<AtomicUsize>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The central platform. Thread-safe: uploads and searches interleave, and
/// any number of search sessions run concurrently.
#[derive(Debug)]
pub struct CentralPlatform {
    store: SketchStore,
    index: RwLock<DiscoveryIndex>,
    accountant: Mutex<BudgetAccountant>,
    config: PlatformConfig,
    active_sessions: Arc<AtomicUsize>,
    session_counter: AtomicU64,
}

impl CentralPlatform {
    /// New empty platform.
    pub fn new(config: PlatformConfig) -> Self {
        CentralPlatform {
            store: SketchStore::new(),
            index: RwLock::new(DiscoveryIndex::new(config.discovery.clone())),
            accountant: Mutex::new(BudgetAccountant::new()),
            config,
            active_sessions: Arc::new(AtomicUsize::new(0)),
            session_counter: AtomicU64::new(0),
        }
    }

    /// Register a provider upload: sketches into the store, profile into
    /// the discovery index, and — for private uploads — the consumed
    /// budget into the accountant (rejecting double registration).
    ///
    /// Ordering matters: a doomed private upload is rejected before any
    /// mutation (the accountant's duplicate check runs first), then the
    /// store — the authoritative name check — registers, then the index,
    /// and only then is the budget recorded. A failed upload therefore
    /// never leaks spent budget and never leaves a stray store entry or
    /// index profile behind.
    pub fn register(&self, upload: ProviderUpload) -> Result<()> {
        let name = upload.sketch.name.clone();
        if upload.budget.is_some() && self.accountant.lock().spent(&name).is_some() {
            return Err(CoreError::Privacy(format!("dataset {name} already has a budget")));
        }
        self.store.register(upload.sketch)?;
        self.index.write().register(upload.profile);
        if let Some(budget) = upload.budget {
            if let Err(e) = self.accountant.lock().register_and_charge(&name, budget) {
                // Unreachable after the pre-check above (the accountant
                // only refuses duplicates), but kept so a future accountant
                // failure mode still can't leave a half-registered upload.
                let _ = self.store.remove(&name);
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// Number of registered datasets.
    pub fn num_datasets(&self) -> usize {
        self.store.len()
    }

    /// The sketch store (read access for benches/inspection).
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Currently running search sessions.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Budget spent by a registered private dataset (`None` = unknown
    /// dataset or non-private upload).
    pub fn budget_spent(&self, dataset: &str) -> Option<PrivacyBudget> {
        self.accountant.lock().spent(dataset)
    }

    /// Submit a sketched search request: returns a [`SearchSession`] whose
    /// events stream per-round progress while the search runs on a worker
    /// thread. `config: None` uses the platform's configured default.
    pub fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        self.submit_with_control(request, config, SearchControl::new())
    }

    /// [`CentralPlatform::submit`] with caller-supplied run control, for
    /// requesters that want to share a cancellation flag across sessions
    /// or impose their own deadline.
    pub fn submit_with_control(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
        mut control: SearchControl,
    ) -> Result<SearchSession> {
        let max = self.config.max_concurrent_sessions;
        self.active_sessions
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < max).then_some(n + 1))
            .map_err(|_| CoreError::Capacity(max))?;
        let guard = SessionGuard(Arc::clone(&self.active_sessions));

        let cfg = config.unwrap_or_else(|| self.config.default_search.clone());
        if let Some(wall) = self.config.max_session_wall {
            control.set_deadline(Instant::now() + wall);
        }
        // Build everything the worker needs up front, so submission errors
        // surface synchronously and the thread owns a consistent snapshot.
        let state = build_sketched_state(&request, &cfg)?;
        let corpus = self.store.frozen();
        let candidates = {
            let index = self.index.read();
            enumerate_candidates(&index, &corpus, &request.profile)
        };
        let id = self.session_counter.fetch_add(1, Ordering::SeqCst) + 1;
        let target = request.task.target.clone();

        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::sync_channel(1);
        let worker_control = control.clone();
        std::thread::spawn(move || {
            let mut observer = move |ev: SearchEvent| {
                let _ = event_tx.send(ev);
            };
            let result = GreedySearch::new(cfg.clone())
                .run_observed(state, candidates, &corpus, &worker_control, &mut observer)
                .map_err(CoreError::from)
                .and_then(|outcome| {
                    let model = fit_final_model(&outcome, &target, cfg.lambda)?;
                    Ok(SearchReply::from_outcome(&outcome, &model))
                });
            // Close the event stream, then release the session slot,
            // *before* the reply becomes visible: a caller that `wait()`s
            // and immediately resubmits must find its slot free (plain
            // drop order would release it only after the send).
            drop(observer);
            drop(guard);
            let _ = result_tx.send(result);
        });
        Ok(SearchSession::new(id, control, event_rx, result_rx))
    }

    /// Serve a sketched request synchronously on the caller's thread,
    /// returning the full outcome + model (the in-process fast path; the
    /// session API wraps this same logic). Pure post-processing of the
    /// uploaded sketches — no budget is consumed here, regardless of how
    /// many requests arrive (the FPM guarantee).
    pub fn search_sketched(
        &self,
        request: &SketchedRequest,
        config: &SearchConfig,
    ) -> Result<PlatformSearchResult> {
        let state = build_sketched_state(request, config)?;
        let corpus = self.store.frozen();
        let candidates = {
            let index = self.index.read();
            enumerate_candidates(&index, &corpus, &request.profile)
        };
        let outcome = GreedySearch::new(config.clone()).run(state, candidates, &corpus)?;
        let model = fit_final_model(&outcome, &request.task.target, config.lambda)?;
        Ok(PlatformSearchResult { outcome, model })
    }

    /// Serve a raw-relation search request (Problem 1). **Deprecated
    /// boundary**: this sketches the relations platform-side, which only a
    /// co-located deployment should ever do — new code should sketch
    /// locally (`SearchRequestBuilder` / `LocalDataStore::sketch_request`)
    /// and go through [`CentralPlatform::submit`] or a `PlatformService`
    /// transport. Kept as a thin wrapper over the sketched path so the two
    /// produce bit-identical results.
    pub fn search(
        &self,
        request: &SearchRequest,
        config: &SearchConfig,
    ) -> Result<PlatformSearchResult> {
        let sketched = SketchedRequest::sketch(
            &request.train,
            &request.test,
            &request.task,
            request.key_columns.as_deref(),
        )?;
        self.search_sketched(&sketched, config)
    }
}

/// Train the final proxy model on the augmented statistics of a finished
/// search.
pub(crate) fn fit_final_model(
    outcome: &SearchOutcome,
    target: &str,
    lambda: f64,
) -> Result<LinearModel> {
    let mut model = LinearModel::new(RidgeConfig { lambda, intercept: true });
    let features: Vec<&str> = outcome.state.features().iter().map(|s| s.as_str()).collect();
    let triple = outcome.state.train_triple();
    let sys =
        triple.lr_system(&features, target, true).map_err(|e| CoreError::Search(e.to_string()))?;
    model.fit_from_system(&sys).map_err(|e| CoreError::Search(e.to_string()))?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalDataStore;
    use mileena_datagen::{generate_corpus, CorpusConfig};
    use mileena_privacy::PrivacyBudget;
    use mileena_search::TaskSpec;

    fn corpus() -> mileena_datagen::NycCorpus {
        generate_corpus(&CorpusConfig {
            num_datasets: 15,
            num_signal: 2,
            num_union: 1,
            num_novelty_traps: 2,
            train_rows: 300,
            test_rows: 300,
            provider_rows: 150,
            key_domain: 60,
            signal_rows_per_key: 1,
            noise: 0.1,
            nonlinear_strength: 0.0,
            seed: 55,
        })
    }

    fn request(c: &mileena_datagen::NycCorpus) -> SearchRequest {
        SearchRequest {
            train: c.train.clone(),
            test: c.test.clone(),
            task: TaskSpec::new("y", &["base_x"]),
            budget: None,
            key_columns: Some(vec!["zone".into()]),
        }
    }

    fn sketched(c: &mileena_datagen::NycCorpus) -> SketchedRequest {
        let keys = vec!["zone".to_string()];
        SketchedRequest::sketch(&c.train, &c.test, &TaskSpec::new("y", &["base_x"]), Some(&keys))
            .unwrap()
    }

    #[test]
    fn end_to_end_non_private() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap();
            platform.register(upload).unwrap();
        }
        assert_eq!(platform.num_datasets(), 15);
        let result = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        assert!(
            result.outcome.final_score > result.outcome.base_score + 0.3,
            "{} → {}",
            result.outcome.base_score,
            result.outcome.final_score
        );
        // The returned model is fitted over base + augmented features.
        assert!(result.model.coefficients().is_some());
    }

    #[test]
    fn double_registration_of_private_upload_rejected() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let upload =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(Some(b), 1).unwrap();
        platform.register(upload.clone()).unwrap();
        assert!(platform.register(upload).is_err());
    }

    #[test]
    fn rejected_upload_spends_no_budget() {
        // Regression for the register-ordering leak: a non-private dataset
        // occupies the name; a private upload under the same name must be
        // rejected *without* charging the provider's budget.
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let non_private =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(None, 1).unwrap();
        let name = non_private.sketch.name.clone();
        platform.register(non_private).unwrap();

        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let private =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(Some(b), 2).unwrap();
        assert!(platform.register(private).is_err());
        assert_eq!(
            platform.budget_spent(&name),
            None,
            "failed registration must not leave budget spent"
        );
        assert_eq!(platform.num_datasets(), 1);
    }

    #[test]
    fn searches_are_free_and_repeatable() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let b = PrivacyBudget::new(2.0, 1e-6).unwrap();
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(Some(b), 11).unwrap();
            platform.register(upload).unwrap();
        }
        let r1 = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        // Many more searches: none can fail on budget; results identical
        // (post-processing of the same release is deterministic).
        for _ in 0..5 {
            let rn = platform.search(&request(&c), &SearchConfig::default()).unwrap();
            assert_eq!(rn.outcome.final_score, r1.outcome.final_score);
        }
    }

    #[test]
    fn legacy_wrapper_matches_sketched_path() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let legacy = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        let new = platform.search_sketched(&sketched(&c), &SearchConfig::default()).unwrap();
        assert_eq!(legacy.outcome.final_score, new.outcome.final_score);
        assert_eq!(legacy.outcome.selected_joins(), new.outcome.selected_joins());
        assert_eq!(legacy.outcome.selected_unions(), new.outcome.selected_unions());
    }

    #[test]
    fn default_search_config_is_honored() {
        let c = corpus();
        let config = PlatformConfig {
            default_search: SearchConfig { max_augmentations: 1, ..Default::default() },
            ..Default::default()
        };
        let platform = CentralPlatform::new(config);
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let reply = platform.submit(sketched(&c), None).unwrap().wait().unwrap();
        assert!(reply.steps.len() <= 1, "platform default (1 round) must apply");
        let full =
            platform.submit(sketched(&c), Some(SearchConfig::default())).unwrap().wait().unwrap();
        assert!(full.steps.len() > reply.steps.len(), "explicit config overrides the default");
    }

    #[test]
    fn capacity_limit_enforced_and_released() {
        let c = corpus();
        let config = PlatformConfig { max_concurrent_sessions: 0, ..Default::default() };
        let platform = CentralPlatform::new(config);
        for p in c.providers.iter().take(3) {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let err = platform.submit(sketched(&c), None).unwrap_err();
        assert_eq!(err, CoreError::Capacity(0), "{err}");

        // With capacity 1, sequential sessions reuse the released slot.
        let config = PlatformConfig { max_concurrent_sessions: 1, ..Default::default() };
        let platform = CentralPlatform::new(config);
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        for _ in 0..2 {
            platform.submit(sketched(&c), None).unwrap().wait().unwrap();
        }
        assert_eq!(platform.active_sessions(), 0);
    }
}
