//! The central task-based dataset search service (Figure 1, green
//! workflow): sketch store + discovery index + search sessions, behind one
//! sketches-only API.
//!
//! The platform never sees raw requester data: searches arrive as
//! [`SketchedRequest`]s (see `mileena-search::request`), and every session
//! runs against a frozen store snapshot plus an index read-lock snapshot —
//! N requesters search in parallel against consistent corpus views while
//! providers keep registering.

use crate::durable::{
    DeltaPayload, DeltaPayloadRef, PlatformSnapshotRef, RecoveryReport, SketchRegion,
    SnapshotIndex, StoragePolicy, WalOp, WalOpRef,
};
use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use crate::sched::{ExecMode, SchedulerConfig, SessionJob, SessionScheduler};
use crate::service::SearchSession;
use crate::wire::{
    CheckpointReceipt, DiscoveryReport, PlatformStats, SearchReply, SpanBreakdown, StorageReport,
};
use mileena_discovery::{DatasetProfile, DiscoveryConfig, DiscoveryIndex};
use mileena_ml::{LinearModel, RidgeConfig};
use mileena_obs::{Metrics, MetricsReport};
use mileena_privacy::{BudgetAccountant, PrivacyBudget};
use mileena_search::{
    build_sketched_state, enumerate_candidates, GreedySearch, SearchConfig, SearchControl,
    SearchEvent, SearchOutcome, SearchRequest, SketchedRequest,
};
use mileena_sketch::{SketchError, SketchStore};
use mileena_storage::{StorageEngine, StorageOptions};
use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Platform-wide configuration, honored by the service layer.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Discovery tuning.
    pub discovery: DiscoveryConfig,
    /// Search configuration applied when a request doesn't carry its own.
    pub default_search: SearchConfig,
    /// Upper bound on concurrently *executing* search sessions: the
    /// scheduler's worker pool never exceeds it. `0` disables submission
    /// entirely (rejected with a capacity error). Bursts beyond the pool
    /// wait in the admission queue instead of being rejected — see
    /// [`SchedulerConfig`].
    pub max_concurrent_sessions: usize,
    /// Server-side wall-clock cap per session, enforced as a deadline on
    /// top of each request's own `time_budget` (`None` = no extra cap).
    /// Sessions that provably cannot meet the deadline are shed by
    /// admission control with `StopReason::Shed`.
    pub max_session_wall: Option<Duration>,
    /// Session-scheduler tuning: worker-pool size, admission-queue depth,
    /// chaos fault plan.
    pub scheduler: SchedulerConfig,
    /// Shard-worker count for [`crate::ShardedPlatform`] deployments: the
    /// corpus is partitioned across this many shard workers and searches
    /// scatter-gather across them. `CentralPlatform` ignores it (it *is*
    /// the single-shard reference).
    pub shards: usize,
    /// Durable-storage policy. Honored by [`CentralPlatform::open_with`] /
    /// [`CentralPlatform::open`]; [`CentralPlatform::new`] always builds a
    /// volatile platform.
    pub storage: Option<StoragePolicy>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            discovery: DiscoveryConfig::default(),
            default_search: SearchConfig::default(),
            max_concurrent_sessions: 64,
            max_session_wall: None,
            scheduler: SchedulerConfig::default(),
            shards: 1,
            storage: None,
        }
    }
}

/// What a search request returns to the requester.
#[derive(Debug)]
pub struct PlatformSearchResult {
    /// The greedy search trace and final state.
    pub outcome: SearchOutcome,
    /// The proxy model trained on the final augmented statistics, ready
    /// for the requester to use (or to hand the materialized augmented
    /// data to AutoML, as the Figure 4 pipeline does).
    pub model: LinearModel,
}

/// Decrements the active-session counter when a session ends, however it
/// ends (normal finish, error, panic, shed, shutdown).
pub(crate) struct SessionGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Durable-storage state behind the platform's mutation lock: holding it
/// serializes every state mutation with its journal append, so the WAL's
/// record order always matches the in-memory apply order.
#[derive(Debug, Default)]
struct DurableState {
    engine: Option<StorageEngine>,
    recovery: Option<RecoveryReport>,
    last_checkpoint_error: Option<String>,
    /// Datasets registered or replaced since the last checkpoint (full or
    /// delta) — the next delta checkpoint serializes exactly these.
    dirty_datasets: std::collections::BTreeSet<String>,
    /// Datasets removed since the last checkpoint.
    removed_datasets: std::collections::BTreeSet<String>,
    /// Ledger rows changed since the last checkpoint (grants and charges).
    dirty_ledger: std::collections::BTreeSet<String>,
}

impl DurableState {
    /// Track which state a journaled mutation dirties, so a delta
    /// checkpoint can serialize only the changed subset.
    fn note_mutation(&mut self, op: &WalOpRef<'_>) {
        match op {
            WalOpRef::Register { upload } | WalOpRef::Replace { upload } => {
                let name = &upload.sketch.name;
                self.dirty_datasets.insert(name.clone());
                self.removed_datasets.remove(name);
                if upload.budget.is_some() {
                    self.dirty_ledger.insert(name.clone());
                }
            }
            WalOpRef::Remove { dataset } => {
                self.dirty_datasets.remove(*dataset);
                self.removed_datasets.insert((*dataset).to_string());
            }
            WalOpRef::Grant { dataset, .. } | WalOpRef::Charge { dataset, .. } => {
                self.dirty_ledger.insert((*dataset).to_string());
            }
        }
    }

    /// A checkpoint (full or delta) captured everything dirty so far.
    fn clear_dirty(&mut self) {
        self.dirty_datasets.clear();
        self.removed_datasets.clear();
        self.dirty_ledger.clear();
    }
}

/// Cumulative evaluation-plan counters across every search the platform
/// served, surfaced through `stats()` so operators can watch the
/// bound-pruning win at fleet level (skips / (skips + evaluations) is the
/// fraction of candidate scorings the pruner saved).
#[derive(Debug, Default)]
struct SearchTotals {
    evaluations: AtomicU64,
    bound_skips: AtomicU64,
    candidates_truncated: AtomicU64,
}

impl SearchTotals {
    fn record(&self, outcome: &SearchOutcome) {
        self.evaluations.fetch_add(outcome.evaluations as u64, Ordering::Relaxed);
        self.bound_skips.fetch_add(outcome.bound_skips as u64, Ordering::Relaxed);
        self.candidates_truncated.fetch_add(outcome.candidates_truncated as u64, Ordering::Relaxed);
    }
}

/// The central platform. Thread-safe: uploads and searches interleave, and
/// any number of search sessions run concurrently.
#[derive(Debug)]
pub struct CentralPlatform {
    store: SketchStore,
    index: RwLock<DiscoveryIndex>,
    accountant: Mutex<BudgetAccountant>,
    config: PlatformConfig,
    active_sessions: Arc<AtomicUsize>,
    session_counter: AtomicU64,
    search_totals: Arc<SearchTotals>,
    metrics: Arc<Metrics>,
    sched: SessionScheduler,
    durable: Mutex<DurableState>,
}

impl CentralPlatform {
    /// New empty **volatile** platform: state lives in memory only and is
    /// gone on drop. Production deployments with privacy budgets should
    /// use [`CentralPlatform::open`] — an in-memory ledger silently
    /// forgets spent budget across restarts, which voids the DP guarantee.
    pub fn new(config: PlatformConfig) -> Self {
        Self::assemble(
            SketchStore::new(),
            DiscoveryIndex::new(config.discovery.clone()),
            BudgetAccountant::new(),
            config,
            DurableState::default(),
            Arc::new(Metrics::new()),
        )
    }

    /// Open a **durable** platform at `dir` with the default config and
    /// storage policy, creating the directory on first use and recovering
    /// existing state otherwise. See [`CentralPlatform::open_with`].
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self> {
        let config = PlatformConfig { storage: Some(StoragePolicy::at(dir)), ..Default::default() };
        Self::open_with(config)
    }

    /// Open a durable platform per `config.storage` (required).
    ///
    /// Recovery: loads the newest valid snapshot (falling back past
    /// corrupted ones), replays the WAL tail — each surviving record
    /// applied exactly once, in sequence order, so budget accounting is
    /// never double-spent — truncates any torn final record, and rebuilds
    /// the discovery index from the recovered profiles. The recovered
    /// platform answers searches bit-identically to one that never
    /// restarted.
    pub fn open_with(config: PlatformConfig) -> Result<Self> {
        let store = SketchStore::new();
        let index = DiscoveryIndex::new(config.discovery.clone());
        Self::open_with_parts(config, store, index)
    }

    /// [`CentralPlatform::open_with`] over caller-built store/index shells,
    /// so a sharded deployment can hand every shard worker stores and
    /// indexes that share one dataset/key interner and TF-IDF term space
    /// (recovery hydrates into them through the normal registration path).
    pub(crate) fn open_with_parts(
        config: PlatformConfig,
        store: SketchStore,
        mut index: DiscoveryIndex,
    ) -> Result<Self> {
        let policy = config.storage.clone().ok_or_else(|| {
            CoreError::Storage("open_with requires PlatformConfig.storage".into())
        })?;
        let opts = StorageOptions {
            fsync_appends: policy.fsync_appends,
            retain_snapshots: policy.retain_snapshots,
            faults: policy.faults.clone(),
        };
        let eager_started = Instant::now();
        let (engine, recovered) = StorageEngine::open(&policy.dir, opts)?;
        let mut accountant = BudgetAccountant::new();
        let metrics = Arc::new(Metrics::new());

        // Wire the hydration observer before any lazy slot registers so no
        // fill goes uncounted.
        {
            let m = Arc::clone(&metrics);
            store.set_hydration_observer(Box::new(move |background| {
                if !background {
                    m.hydrations_lazy.inc();
                }
                m.datasets_unhydrated.add(-1);
            }));
        }

        // 1. Hydrate the snapshot skeleton. Profiles and the ledger load
        //    eagerly — discovery and budget accounting need them before the
        //    first search — while v2 sketch blobs stay as lazy spans that
        //    decode on first evaluation touch, so time-to-first-search is
        //    independent of sketch volume. v1 JSON snapshots (inline
        //    sketches) keep materializing everything at open.
        let snapshot_seq = recovered.snapshot.as_ref().map(|(seq, _)| *seq);
        let mut profiles: std::collections::BTreeMap<String, DatasetProfile> =
            std::collections::BTreeMap::new();
        let mut snapshot_bytes = 0u64;
        if let Some((_, payload)) = recovered.snapshot {
            snapshot_bytes += payload.len() as u64;
            let snap_index = SnapshotIndex::decode(&payload)?;
            let payload: Arc<Vec<u8>> = Arc::new(payload);
            for slot in snap_index.datasets {
                profiles.insert(slot.name.clone(), slot.profile);
                match slot.sketch {
                    SketchRegion::Span { offset, len } if policy.lazy_hydration => {
                        let payload = Arc::clone(&payload);
                        store
                            .register_lazy(
                                &slot.name,
                                Box::new(move |_background| {
                                    crate::durable::decode_sketch_blob(
                                        &payload[offset..offset + len],
                                    )
                                    .map_err(|e| e.to_string())?
                                    .into_sketch()
                                    .map_err(|e| e.to_string())
                                }),
                            )
                            .map_err(|e| CoreError::Storage(format!("snapshot hydration: {e}")))?;
                    }
                    region => {
                        store
                            .register(region.materialize(&payload)?.into_sketch()?)
                            .map_err(|e| CoreError::Storage(format!("snapshot hydration: {e}")))?;
                    }
                }
            }
            for row in snap_index.ledger {
                accountant.restore(&row.dataset, row.limit, row.spent);
            }
        }

        // 2. Apply the delta chain in order: each link replaces its changed
        //    datasets, applies its removals, and restores its ledger rows.
        let mut delta_links = 0u64;
        let mut chain_head = snapshot_seq.unwrap_or(0);
        for (seq, payload) in &recovered.deltas {
            snapshot_bytes += payload.len() as u64;
            let delta = DeltaPayload::decode(payload)?;
            for entry in delta.datasets {
                profiles.insert(entry.profile.name.clone(), entry.profile);
                store.replace(entry.sketch.into_sketch()?);
            }
            for name in &delta.removed {
                profiles.remove(name);
                let _ = store.remove(name);
            }
            for row in delta.ledger {
                accountant.restore(&row.dataset, row.limit, row.spent);
            }
            chain_head = *seq;
            delta_links += 1;
        }

        // 3. Replay the WAL tail on top, skipping records the delta chain
        //    already covers. Frame decode — the dominant replay cost, each
        //    record embeds a full upload document — fans out on the worker
        //    pool; apply stays sequential in sequence order so budget
        //    accounting is never double-spent.
        let replay_started = Instant::now();
        let tail: Vec<_> =
            recovered.records.iter().filter(|record| record.seq > chain_head).collect();
        let replayed_records = tail.len() as u64;
        let decoded: Vec<Result<WalOp>> = tail
            .par_iter()
            .map(|record| {
                WalOp::decode(&record.payload)
                    .map_err(|e| CoreError::Storage(format!("record {}: {e}", record.seq)))
            })
            .collect();
        for (record, op) in tail.iter().zip(decoded) {
            Self::replay(&store, &mut profiles, &mut accountant, op?)
                .map_err(|e| CoreError::Storage(format!("replay record {}: {e}", record.seq)))?;
        }
        let replay_ms = replay_started.elapsed().as_millis() as u64;

        // 4. Rebuild the discovery index once, over the final profile set —
        //    per-record register/replace/remove churn during replay is what
        //    made the replay path ~2× the snapshot path. Ranking tie-breaks
        //    are by name, so the name-sorted rebuild order is
        //    search-identical to incremental registration.
        for (_, profile) in profiles {
            index.register(profile);
        }

        // 5. Publish hydration state and kick the background hydrator:
        //    the platform serves traffic while the pool drains.
        let pending = store.unhydrated();
        metrics.snapshot_bytes.add(snapshot_bytes);
        metrics.datasets_unhydrated.set(pending as i64);
        if pending > 0
            && policy.background_hydration
            && std::env::var_os("MILEENA_NO_BG_HYDRATION").is_none()
        {
            let hydrator = store.clone();
            std::thread::spawn(move || {
                let _ = hydrator.hydrate_pending();
            });
        }

        let durable = DurableState {
            engine: Some(engine),
            recovery: Some(RecoveryReport {
                snapshot_seq,
                replayed_records,
                torn_tail: recovered.torn_tail,
                invalid_snapshots: recovered.invalid_snapshots as u64,
                snapshot_bytes,
                delta_links,
                eager_ms: eager_started.elapsed().as_millis() as u64,
                replay_ms,
                lazy_datasets: pending as u64,
            }),
            ..DurableState::default()
        };
        Ok(Self::assemble(store, index, accountant, config, durable, metrics))
    }

    /// [`CentralPlatform::new`] over caller-built store/index shells (the
    /// volatile counterpart of [`CentralPlatform::open_with_parts`]).
    pub(crate) fn new_with_parts(
        config: PlatformConfig,
        store: SketchStore,
        index: DiscoveryIndex,
    ) -> Self {
        Self::assemble(
            store,
            index,
            BudgetAccountant::new(),
            config,
            DurableState::default(),
            Arc::new(Metrics::new()),
        )
    }

    fn assemble(
        store: SketchStore,
        index: DiscoveryIndex,
        accountant: BudgetAccountant,
        config: PlatformConfig,
        durable: DurableState,
        metrics: Arc<Metrics>,
    ) -> Self {
        let sched = SessionScheduler::new(
            config.scheduler.effective_workers(config.max_concurrent_sessions),
            config.scheduler.queue_depth,
            config.scheduler.faults.clone(),
        );
        CentralPlatform {
            store,
            index: RwLock::new(index),
            accountant: Mutex::new(accountant),
            config,
            active_sessions: Arc::new(AtomicUsize::new(0)),
            session_counter: AtomicU64::new(0),
            search_totals: Arc::new(SearchTotals::default()),
            metrics,
            sched,
            durable: Mutex::new(durable),
        }
    }

    /// Apply one journaled mutation during recovery. Replay never journals
    /// (the record is already on disk) and is defensive about records
    /// whose effect is somehow already present — a re-registration is
    /// skipped rather than double-charged.
    fn replay(
        store: &SketchStore,
        profiles: &mut std::collections::BTreeMap<String, DatasetProfile>,
        accountant: &mut BudgetAccountant,
        op: WalOp,
    ) -> Result<()> {
        match op {
            WalOp::Register { upload } => {
                let name = upload.sketch.name.clone();
                if store.contains(&name) {
                    return Ok(()); // effect already present: refuse to double-apply
                }
                store.register(upload.sketch)?;
                profiles.insert(name.clone(), upload.profile);
                if let Some(budget) = upload.budget {
                    if !accountant.contains(&name) {
                        accountant.register_and_charge(&name, budget)?;
                    }
                }
            }
            WalOp::Replace { upload } => {
                let name = upload.sketch.name.clone();
                store.replace(upload.sketch);
                profiles.insert(name.clone(), upload.profile);
                if let Some(budget) = upload.budget {
                    accountant.top_up_and_charge(&name, budget)?;
                }
            }
            WalOp::Remove { dataset } => {
                let _ = store.remove(&dataset);
                profiles.remove(&dataset);
                // The ledger entry stays: spent budget is spent forever.
            }
            WalOp::Grant { dataset, budget } => {
                accountant.grant(&dataset, budget)?;
            }
            WalOp::Charge { dataset, cost } => {
                accountant.charge(&dataset, cost)?;
            }
        }
        Ok(())
    }

    /// Journal one mutation (no-op on volatile platforms). Called with the
    /// durable lock held, *before* the in-memory apply: an acknowledged
    /// mutation is on disk first.
    fn journal(&self, state: &mut DurableState, op: WalOpRef<'_>) -> Result<()> {
        if state.engine.is_some() {
            let payload = op.encode()?;
            state.engine.as_mut().expect("checked above").append(&payload)?;
            state.note_mutation(&op);
            self.metrics.wal_appends.inc();
        }
        Ok(())
    }

    /// Run the auto-checkpoint policy after a successful mutation. A
    /// failing checkpoint never fails the mutation (the WAL already holds
    /// it); the error is surfaced through `stats()` instead.
    fn maybe_auto_checkpoint(&self, state: &mut DurableState) {
        let policy = match &self.config.storage {
            Some(policy) if policy.checkpoint_every > 0 => policy,
            _ => return,
        };
        let due = state
            .engine
            .as_ref()
            .is_some_and(|e| e.records_since_checkpoint() >= policy.checkpoint_every);
        if !due {
            return;
        }
        // Differential checkpoint when a base exists and the chain has
        // room; otherwise (first checkpoint, chain at cap, deltas off) a
        // full snapshot resets the chain. A failed delta — injected fault,
        // or state the dirty sets can't serialize — falls back to a full
        // snapshot rather than leaving the WAL unbounded.
        let use_delta = policy.delta_checkpoints
            && state.engine.as_ref().is_some_and(|e| {
                e.snapshot_seq().is_some() && e.delta_chain_len() < policy.max_delta_chain
            });
        let result = if use_delta {
            self.checkpoint_delta_locked(state).or_else(|_| self.checkpoint_locked(state))
        } else {
            self.checkpoint_locked(state)
        };
        state.last_checkpoint_error = result.err().map(|e| e.to_string());
    }

    /// Serialize the full platform state and checkpoint the engine at the
    /// current sequence. Called with the durable lock held.
    fn checkpoint_locked(&self, state: &mut DurableState) -> Result<CheckpointReceipt> {
        if state.engine.is_none() {
            return Err(CoreError::Storage("platform has no durable storage configured".into()));
        }
        let index = self.index.read();
        let sketches = self.store.all()?;
        let mut datasets = Vec::with_capacity(sketches.len());
        for sketch in &sketches {
            let profile = index.profile(&sketch.name).ok_or_else(|| {
                CoreError::Storage(format!("dataset {} has no indexed profile", sketch.name))
            })?;
            datasets.push((sketch.as_ref(), profile));
        }
        let ledger = self.accountant.lock().entries();
        let payload = PlatformSnapshotRef { datasets, ledger: &ledger }.encode_binary()?;
        let seq = state.engine.as_mut().expect("checked above").checkpoint(&payload)?;
        state.clear_dirty();
        self.metrics.snapshots_written.inc();
        Ok(CheckpointReceipt { seq, datasets: sketches.len(), snapshot_bytes: payload.len() })
    }

    /// Serialize only what changed since the chain head and append a delta
    /// link. Called with the durable lock held; the caller falls back to a
    /// full snapshot on error.
    fn checkpoint_delta_locked(&self, state: &mut DurableState) -> Result<CheckpointReceipt> {
        if state.engine.is_none() {
            return Err(CoreError::Storage("platform has no durable storage configured".into()));
        }
        let index = self.index.read();
        let mut sketches = Vec::with_capacity(state.dirty_datasets.len());
        for name in &state.dirty_datasets {
            sketches.push(self.store.get(name)?); // hydrates on demand
        }
        let mut datasets = Vec::with_capacity(sketches.len());
        for (name, sketch) in state.dirty_datasets.iter().zip(&sketches) {
            let profile = index.profile(name).ok_or_else(|| {
                CoreError::Storage(format!("dataset {name} has no indexed profile"))
            })?;
            datasets.push((sketch.as_ref(), profile));
        }
        let removed: Vec<String> = state.removed_datasets.iter().cloned().collect();
        let ledger: Vec<_> = self
            .accountant
            .lock()
            .entries()
            .into_iter()
            .filter(|(name, _, _)| state.dirty_ledger.contains(name))
            .collect();
        let payload = DeltaPayloadRef { datasets, removed: &removed, ledger: &ledger }.encode()?;
        let seq = state.engine.as_mut().expect("checked above").checkpoint_delta(&payload)?;
        state.clear_dirty();
        self.metrics.snapshots_written.inc();
        Ok(CheckpointReceipt { seq, datasets: sketches.len(), snapshot_bytes: payload.len() })
    }

    /// Checkpoint now: write a full-state snapshot, rotate the log, and
    /// purge segments/snapshots past the retention horizon. Errors on
    /// volatile platforms.
    pub fn checkpoint(&self) -> Result<CheckpointReceipt> {
        let mut state = self.durable.lock();
        let receipt = self.checkpoint_locked(&mut state)?;
        state.last_checkpoint_error = None;
        Ok(receipt)
    }

    /// Platform statistics: corpus size, live sessions, and — for durable
    /// platforms — storage-engine state plus what the last recovery found.
    pub fn stats(&self) -> Result<PlatformStats> {
        let state = self.durable.lock();
        let storage = match &state.engine {
            None => None,
            Some(engine) => {
                let s = engine.stats()?;
                Some(StorageReport {
                    dir: engine.dir().display().to_string(),
                    last_seq: s.last_seq,
                    snapshot_seq: s.snapshot_seq,
                    records_since_checkpoint: s.records_since_checkpoint,
                    wal_bytes: s.wal_bytes,
                    segments: s.segments,
                    snapshots: s.snapshots,
                    recovery: state.recovery.clone(),
                    last_checkpoint_error: state.last_checkpoint_error.clone(),
                    append_time: s.append_time,
                    checkpoint_time: s.checkpoint_time,
                })
            }
        };
        let discovery = {
            let d = self.index.read().stats();
            DiscoveryReport {
                datasets: d.datasets,
                key_columns: d.key_columns,
                lsh_buckets: d.lsh_buckets,
                schema_buckets: d.schema_buckets,
                posting_terms: d.posting_terms,
            }
        };
        Ok(PlatformStats {
            datasets: self.num_datasets(),
            active_sessions: self.active_sessions(),
            search_evaluations: self.search_totals.evaluations.load(Ordering::Relaxed),
            search_bound_skips: self.search_totals.bound_skips.load(Ordering::Relaxed),
            search_candidates_truncated: self
                .search_totals
                .candidates_truncated
                .load(Ordering::Relaxed),
            discovery,
            scheduler: self.sched.report(),
            storage,
            shards: None,
        })
    }

    /// What the last `open` recovered (`None` on volatile platforms).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.durable.lock().recovery.clone()
    }

    /// The platform's live metrics registry (the TCP server records
    /// connection/frame telemetry into it via
    /// `PlatformService::metrics_handle`).
    pub fn metrics_registry(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Snapshot the full metrics state: the registry, plus the private
    /// histograms subsystems keep for their own reports — scheduler
    /// queue-wait/run-time and storage I/O — joined by name.
    pub fn metrics(&self) -> MetricsReport {
        let mut report = self.metrics.report();
        let (queue_wait, run_time) = self.sched.histograms();
        report.push_histogram("search_queue_wait_ns", queue_wait.report());
        report.push_histogram("scheduler_run_ns", run_time.report());
        let state = self.durable.lock();
        if let Some(engine) = &state.engine {
            let (append, checkpoint) = engine.io_histograms();
            report.push_histogram("wal_append_ns", append.report());
            report.push_histogram("snapshot_write_ns", checkpoint.report());
        }
        report
    }

    /// Register a provider upload: sketches into the store, profile into
    /// the discovery index, and — for private uploads — the consumed
    /// budget into the accountant (rejecting double registration).
    ///
    /// This is one arm of the platform's single journaled mutation path
    /// (register / replace / remove / charge all follow it): validate
    /// under the mutation lock, journal the op, then apply — so a doomed
    /// upload is rejected before any mutation or journal entry, and an
    /// applied mutation is always on disk first. A failed upload therefore
    /// never leaks spent budget and never leaves a stray store entry or
    /// index profile behind.
    pub fn register(&self, upload: ProviderUpload) -> Result<()> {
        let mut state = self.durable.lock();
        let name = upload.sketch.name.clone();
        // Validate: name free, budget unregistered.
        if self.store.contains(&name) {
            return Err(SketchError::DuplicateDataset(name).into());
        }
        if upload.budget.is_some() && self.accountant.lock().spent(&name).is_some() {
            return Err(CoreError::Privacy(format!("dataset {name} already has a budget")));
        }
        // Journal, then apply.
        self.journal(&mut state, WalOpRef::Register { upload: &upload })?;
        let budget = upload.budget;
        self.store.register(upload.sketch)?;
        self.index.write().register(upload.profile);
        if let Some(budget) = budget {
            // Infallible after the pre-checks above: the name was free and
            // the ledger had no entry, so registration cannot conflict and
            // charging a fresh limit by its own amount cannot exhaust. A
            // rollback here would be worse than a panic — the op is
            // already journaled, so undoing the in-memory apply would make
            // crash recovery resurrect state the caller was told failed.
            self.accountant
                .lock()
                .register_and_charge(&name, budget)
                .expect("pre-validated: name free and budget unregistered");
        }
        self.maybe_auto_checkpoint(&mut state);
        Ok(())
    }

    /// Replace a dataset's sketches and profile (provider re-upload after
    /// local re-transformation), or insert them when the name is new.
    ///
    /// Flows through the same journaled mutation path as `register`. A
    /// budget on the upload *adds* to the dataset's cumulative privacy
    /// loss under sequential composition — each new privatized release
    /// spends fresh budget; replacement never refunds the old release.
    pub fn replace(&self, upload: ProviderUpload) -> Result<()> {
        let mut state = self.durable.lock();
        let name = upload.sketch.name.clone();
        self.journal(&mut state, WalOpRef::Replace { upload: &upload })?;
        let budget = upload.budget;
        self.store.replace(upload.sketch);
        self.index.write().replace(upload.profile);
        if let Some(budget) = budget {
            self.accountant
                .lock()
                .top_up_and_charge(&name, budget)
                .expect("top_up_and_charge has no failure mode for fresh grants");
        }
        self.maybe_auto_checkpoint(&mut state);
        Ok(())
    }

    /// Remove a dataset's sketches and profile from the corpus.
    ///
    /// Flows through the same journaled mutation path as `register`. The
    /// budget ledger entry **survives removal**: the privatized release
    /// already happened, so its (ε, δ) stays spent — re-registering the
    /// same name with a fresh budget is still rejected, which is what
    /// keeps remove/re-upload cycles from laundering budget.
    pub fn remove(&self, name: &str) -> Result<()> {
        let mut state = self.durable.lock();
        if !self.store.contains(name) {
            return Err(SketchError::DatasetNotFound(name.to_string()).into());
        }
        self.journal(&mut state, WalOpRef::Remove { dataset: name })?;
        self.store.remove(name)?;
        self.index.write().remove(name);
        self.maybe_auto_checkpoint(&mut state);
        Ok(())
    }

    /// Grant budget headroom to a dataset without charging it — the
    /// APM-style flow, where per-query releases then draw it down via
    /// [`CentralPlatform::charge_budget`]. Registers the ledger entry when
    /// the dataset is unknown, extends the limit otherwise. Journaled like
    /// every other ledger mutation.
    pub fn grant_budget(&self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        let mut state = self.durable.lock();
        self.journal(&mut state, WalOpRef::Grant { dataset, budget })?;
        self.accountant.lock().grant(dataset, budget)?;
        self.maybe_auto_checkpoint(&mut state);
        Ok(())
    }

    /// Charge an additional release against a dataset's budget (APM-style
    /// per-query accounting). Journaled before it is applied, so a charge
    /// that was acknowledged is still reflected in `remaining()` after a
    /// crash — the property that makes the DP guarantee hold across
    /// restarts.
    pub fn charge_budget(&self, dataset: &str, cost: PrivacyBudget) -> Result<()> {
        let mut state = self.durable.lock();
        let mut accountant = self.accountant.lock();
        accountant.check_charge(dataset, cost)?;
        self.journal(&mut state, WalOpRef::Charge { dataset, cost })?;
        accountant.charge(dataset, cost).expect("validated by check_charge");
        drop(accountant);
        self.maybe_auto_checkpoint(&mut state);
        Ok(())
    }

    /// Number of registered datasets.
    pub fn num_datasets(&self) -> usize {
        self.store.len()
    }

    /// The sketch store (read access for benches/inspection).
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// The discovery index (the sharded coordinator enumerates per-shard
    /// candidates against it under its own read lock).
    pub(crate) fn index(&self) -> &RwLock<DiscoveryIndex> {
        &self.index
    }

    /// Dataset names with a budget-ledger entry, including entries whose
    /// dataset has since been removed (spent budget is spent forever). The
    /// sharded coordinator rebuilds shard membership from these at open so
    /// a remove/re-register cycle still routes to the shard holding the
    /// spend.
    pub(crate) fn ledger_datasets(&self) -> Vec<String> {
        self.accountant.lock().entries().into_iter().map(|(name, _, _)| name).collect()
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Sessions admitted and not yet finished (queued + executing).
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Sessions currently waiting in the admission queue.
    pub fn queued_sessions(&self) -> usize {
        self.sched.queued()
    }

    /// Budget spent by a registered private dataset (`None` = unknown
    /// dataset or non-private upload).
    pub fn budget_spent(&self, dataset: &str) -> Option<PrivacyBudget> {
        self.accountant.lock().spent(dataset)
    }

    /// Budget remaining for a registered private dataset.
    pub fn budget_remaining(&self, dataset: &str) -> Result<PrivacyBudget> {
        Ok(self.accountant.lock().remaining(dataset)?)
    }

    /// Submit a sketched search request: returns a [`SearchSession`] whose
    /// events stream per-round progress while the search runs on a worker
    /// thread. `config: None` uses the platform's configured default.
    pub fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        self.submit_with_control(request, config, SearchControl::new())
    }

    /// [`CentralPlatform::submit`] with caller-supplied run control, for
    /// requesters that want to share a cancellation flag across sessions
    /// or impose their own deadline.
    ///
    /// Admission control (see [`crate::sched`]): the session joins a
    /// bounded queue drained round-robin across requester keys by a fixed
    /// worker pool. A full queue sheds the submission with
    /// [`CoreError::Overloaded`]; a deadline the scheduler cannot meet
    /// yields an immediate zero-round reply with `StopReason::Shed`.
    pub fn submit_with_control(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
        mut control: SearchControl,
    ) -> Result<SearchSession> {
        if self.config.max_concurrent_sessions == 0 {
            return Err(CoreError::Capacity(0));
        }
        let submit_start = Instant::now();
        self.metrics.searches_started.inc();
        self.active_sessions.fetch_add(1, Ordering::SeqCst);
        let guard = SessionGuard(Arc::clone(&self.active_sessions));

        let cfg = config.unwrap_or_else(|| self.config.default_search.clone());
        if let Some(wall) = self.config.max_session_wall {
            control.set_deadline(Instant::now() + wall);
        }
        // Build everything the worker needs up front, so submission errors
        // surface synchronously and the job owns a consistent snapshot.
        let state = build_sketched_state(&request, &cfg)?;
        let prepare = submit_start.elapsed();
        self.metrics.search_prepare.record_duration(prepare);
        let enumerate_start = Instant::now();
        let corpus = self.store.frozen();
        let candidates = {
            let index = self.index.read();
            enumerate_candidates(&index, &corpus, &request.profile, &cfg.limits)
        };
        let enumerate = enumerate_start.elapsed();
        self.metrics.search_enumerate.record_duration(enumerate);
        let id = self.session_counter.fetch_add(1, Ordering::SeqCst) + 1;
        let target = request.task.target.clone();
        let requester: Arc<str> = Arc::from(request.requester.as_deref().unwrap_or(""));

        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::sync_channel(1);
        let worker_control = control.clone();
        let totals = Arc::clone(&self.search_totals);
        let metrics = Arc::clone(&self.metrics);
        let spans_base = SpanBreakdown {
            prepare_ns: duration_ns(prepare),
            enumerate_ns: duration_ns(enumerate),
            ..SpanBreakdown::default()
        };
        let exec = Box::new(move |mode: ExecMode| {
            let mut observer = move |ev: SearchEvent| {
                let _ = event_tx.send(ev);
            };
            match mode {
                ExecMode::Run { queue_wait } => GreedySearch::new(cfg.clone())
                    .run_observed(state, candidates, &corpus, &worker_control, &mut observer)
                    .map_err(CoreError::from)
                    .and_then(|outcome| {
                        totals.record(&outcome);
                        let fit_start = Instant::now();
                        let model = fit_final_model(&outcome, &target, cfg.lambda)?;
                        let fit = fit_start.elapsed();
                        let mut reply = SearchReply::from_outcome(&outcome, &model);
                        reply.spans.prepare_ns = spans_base.prepare_ns;
                        reply.spans.enumerate_ns = spans_base.enumerate_ns;
                        reply.spans.queue_wait_ns = duration_ns(queue_wait);
                        reply.spans.fit_ns = duration_ns(fit);
                        reply.spans.total_ns = duration_ns(submit_start.elapsed());
                        record_search_metrics(&metrics, &outcome, &reply);
                        Ok(reply)
                    }),
                ExecMode::Immediate(reason) => {
                    // The session never runs a round (cancelled or shed
                    // while queued): synthesize the zero-step reply the
                    // search loop would have produced had it stopped at
                    // its first boundary, events included.
                    let base_score = state.current_score().map_err(CoreError::from)?;
                    observer(SearchEvent::Finished {
                        stop_reason: reason,
                        final_score: base_score,
                        rounds: 0,
                        evaluations: 0,
                        bound_skips: 0,
                        elapsed_ms: 0,
                    });
                    let outcome = SearchOutcome {
                        base_score,
                        final_score: base_score,
                        steps: Vec::new(),
                        evaluations: 0,
                        bound_skips: 0,
                        candidates_truncated: 0,
                        round_eval_ns: Vec::new(),
                        elapsed: Duration::ZERO,
                        stop_reason: reason,
                        state,
                    };
                    let model = fit_final_model(&outcome, &target, cfg.lambda)?;
                    let mut reply = SearchReply::from_outcome(&outcome, &model);
                    reply.spans.prepare_ns = spans_base.prepare_ns;
                    reply.spans.enumerate_ns = spans_base.enumerate_ns;
                    reply.spans.total_ns = duration_ns(submit_start.elapsed());
                    record_search_metrics(&metrics, &outcome, &reply);
                    Ok(reply)
                }
            }
        });
        self.sched.admit(SessionJob {
            requester,
            control: control.clone(),
            guard,
            result_tx,
            enqueued: Instant::now(),
            exec,
        })?;
        Ok(SearchSession::new(id, control, event_rx, result_rx))
    }

    /// Serve a sketched request synchronously on the caller's thread,
    /// returning the full outcome + model (the in-process fast path; the
    /// session API wraps this same logic). Pure post-processing of the
    /// uploaded sketches — no budget is consumed here, regardless of how
    /// many requests arrive (the FPM guarantee).
    pub fn search_sketched(
        &self,
        request: &SketchedRequest,
        config: &SearchConfig,
    ) -> Result<PlatformSearchResult> {
        let search_start = Instant::now();
        self.metrics.searches_started.inc();
        let state = {
            let _prepare = self.metrics.search_prepare.span();
            build_sketched_state(request, config)?
        };
        let corpus = self.store.frozen();
        let candidates = {
            let _enumerate = self.metrics.search_enumerate.span();
            let index = self.index.read();
            enumerate_candidates(&index, &corpus, &request.profile, &config.limits)
        };
        let outcome = GreedySearch::new(config.clone()).run(state, candidates, &corpus)?;
        self.search_totals.record(&outcome);
        let model = {
            let _fit = self.metrics.search_fit.span();
            fit_final_model(&outcome, &request.task.target, config.lambda)?
        };
        self.metrics.search_run.record_duration(outcome.elapsed);
        record_outcome_metrics(&self.metrics, &outcome);
        self.metrics.search_total.record_duration(search_start.elapsed());
        Ok(PlatformSearchResult { outcome, model })
    }

    /// Serve a raw-relation search request (Problem 1). **Deprecated
    /// boundary**: this sketches the relations platform-side, which only a
    /// co-located deployment should ever do — new code should sketch
    /// locally (`SearchRequestBuilder` / `LocalDataStore::sketch_request`)
    /// and go through [`CentralPlatform::submit`] or a `PlatformService`
    /// transport. Kept as a thin wrapper over the sketched path so the two
    /// produce bit-identical results.
    pub fn search(
        &self,
        request: &SearchRequest,
        config: &SearchConfig,
    ) -> Result<PlatformSearchResult> {
        let sketched = SketchedRequest::sketch(
            &request.train,
            &request.test,
            &request.task,
            request.key_columns.as_deref(),
        )?;
        self.search_sketched(&sketched, config)
    }
}

/// Nanoseconds of a duration, saturating at `u64::MAX` (584 years).
pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Outcome-derived counters and per-round histograms shared by every
/// search path (session exec, synchronous fast path, scatter).
pub(crate) fn record_outcome_metrics(metrics: &Metrics, outcome: &SearchOutcome) {
    for &ns in &outcome.round_eval_ns {
        metrics.search_eval_round.record(ns);
    }
    metrics.search_evaluations.add(outcome.evaluations as u64);
    metrics.search_bound_skips.add(outcome.bound_skips as u64);
    metrics.search_candidates_truncated.add(outcome.candidates_truncated as u64);
    metrics.searches_completed.inc();
}

/// Full recording for a finished session search: the run histogram from
/// the outcome, the shared counters, and the fit/total stages the reply's
/// [`SpanBreakdown`] carries.
pub(crate) fn record_search_metrics(
    metrics: &Metrics,
    outcome: &SearchOutcome,
    reply: &SearchReply,
) {
    metrics.search_run.record_duration(outcome.elapsed);
    record_outcome_metrics(metrics, outcome);
    metrics.search_fit.record(reply.spans.fit_ns);
    metrics.search_total.record(reply.spans.total_ns);
}

/// Train the final proxy model on the augmented statistics of a finished
/// search.
pub(crate) fn fit_final_model(
    outcome: &SearchOutcome,
    target: &str,
    lambda: f64,
) -> Result<LinearModel> {
    let mut model = LinearModel::new(RidgeConfig { lambda, intercept: true });
    let features: Vec<&str> = outcome.state.features().iter().map(|s| s.as_str()).collect();
    let triple = outcome.state.train_triple();
    let sys =
        triple.lr_system(&features, target, true).map_err(|e| CoreError::Search(e.to_string()))?;
    model.fit_from_system(&sys).map_err(|e| CoreError::Search(e.to_string()))?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalDataStore;
    use mileena_datagen::{generate_corpus, CorpusConfig};
    use mileena_privacy::PrivacyBudget;
    use mileena_search::TaskSpec;

    fn corpus() -> mileena_datagen::NycCorpus {
        generate_corpus(&CorpusConfig {
            num_datasets: 15,
            num_signal: 2,
            num_union: 1,
            num_novelty_traps: 2,
            train_rows: 300,
            test_rows: 300,
            provider_rows: 150,
            key_domain: 60,
            signal_rows_per_key: 1,
            noise: 0.1,
            nonlinear_strength: 0.0,
            seed: 55,
        })
    }

    fn request(c: &mileena_datagen::NycCorpus) -> SearchRequest {
        SearchRequest {
            train: c.train.clone(),
            test: c.test.clone(),
            task: TaskSpec::new("y", &["base_x"]),
            budget: None,
            key_columns: Some(vec!["zone".into()]),
        }
    }

    fn sketched(c: &mileena_datagen::NycCorpus) -> SketchedRequest {
        let keys = vec!["zone".to_string()];
        SketchedRequest::sketch(&c.train, &c.test, &TaskSpec::new("y", &["base_x"]), Some(&keys))
            .unwrap()
    }

    #[test]
    fn end_to_end_non_private() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap();
            platform.register(upload).unwrap();
        }
        assert_eq!(platform.num_datasets(), 15);
        let result = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        assert!(
            result.outcome.final_score > result.outcome.base_score + 0.3,
            "{} → {}",
            result.outcome.base_score,
            result.outcome.final_score
        );
        // The returned model is fitted over base + augmented features.
        assert!(result.model.coefficients().is_some());
    }

    #[test]
    fn double_registration_of_private_upload_rejected() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let upload =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(Some(b), 1).unwrap();
        platform.register(upload.clone()).unwrap();
        assert!(platform.register(upload).is_err());
    }

    #[test]
    fn rejected_upload_spends_no_budget() {
        // Regression for the register-ordering leak: a non-private dataset
        // occupies the name; a private upload under the same name must be
        // rejected *without* charging the provider's budget.
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let non_private =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(None, 1).unwrap();
        let name = non_private.sketch.name.clone();
        platform.register(non_private).unwrap();

        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let private =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(Some(b), 2).unwrap();
        assert!(platform.register(private).is_err());
        assert_eq!(
            platform.budget_spent(&name),
            None,
            "failed registration must not leave budget spent"
        );
        assert_eq!(platform.num_datasets(), 1);
    }

    #[test]
    fn searches_are_free_and_repeatable() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        let b = PrivacyBudget::new(2.0, 1e-6).unwrap();
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(Some(b), 11).unwrap();
            platform.register(upload).unwrap();
        }
        let r1 = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        // Many more searches: none can fail on budget; results identical
        // (post-processing of the same release is deterministic).
        for _ in 0..5 {
            let rn = platform.search(&request(&c), &SearchConfig::default()).unwrap();
            assert_eq!(rn.outcome.final_score, r1.outcome.final_score);
        }
    }

    #[test]
    fn legacy_wrapper_matches_sketched_path() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let legacy = platform.search(&request(&c), &SearchConfig::default()).unwrap();
        let new = platform.search_sketched(&sketched(&c), &SearchConfig::default()).unwrap();
        assert_eq!(legacy.outcome.final_score, new.outcome.final_score);
        assert_eq!(legacy.outcome.selected_joins(), new.outcome.selected_joins());
        assert_eq!(legacy.outcome.selected_unions(), new.outcome.selected_unions());
    }

    #[test]
    fn default_search_config_is_honored() {
        let c = corpus();
        let config = PlatformConfig {
            default_search: SearchConfig { max_augmentations: 1, ..Default::default() },
            ..Default::default()
        };
        let platform = CentralPlatform::new(config);
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let reply = platform.submit(sketched(&c), None).unwrap().wait().unwrap();
        assert!(reply.steps.len() <= 1, "platform default (1 round) must apply");
        let full =
            platform.submit(sketched(&c), Some(SearchConfig::default())).unwrap().wait().unwrap();
        assert!(full.steps.len() > reply.steps.len(), "explicit config overrides the default");
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mileena-platform-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path) -> PlatformConfig {
        PlatformConfig { storage: Some(StoragePolicy::at(dir)), ..Default::default() }
    }

    #[test]
    fn durable_reopen_is_bit_identical_with_and_without_checkpoint() {
        let c = corpus();
        let dir = tmp_dir("reopen");
        let reference = CentralPlatform::new(PlatformConfig::default());
        let durable = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        for p in &c.providers {
            let upload = LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap();
            reference.register(upload.clone()).unwrap();
            durable.register(upload).unwrap();
        }
        let want = reference.search(&request(&c), &SearchConfig::default()).unwrap();

        // Reopen from pure WAL replay (no checkpoint ever taken).
        drop(durable);
        let replayed = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        assert_eq!(replayed.num_datasets(), 15);
        let report = replayed.recovery_report().unwrap();
        assert_eq!(report.snapshot_seq, None);
        assert_eq!(report.replayed_records, 15);
        let got = replayed.search(&request(&c), &SearchConfig::default()).unwrap();
        assert_eq!(got.outcome.final_score, want.outcome.final_score);
        assert_eq!(got.outcome.selected_joins(), want.outcome.selected_joins());
        assert_eq!(got.outcome.selected_unions(), want.outcome.selected_unions());

        // Checkpoint, reopen from the snapshot: still bit-identical.
        let receipt = replayed.checkpoint().unwrap();
        assert_eq!(receipt.datasets, 15);
        assert_eq!(receipt.seq, 15);
        drop(replayed);
        let snapshotted = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        let report = snapshotted.recovery_report().unwrap();
        assert_eq!(report.snapshot_seq, Some(15));
        assert_eq!(report.replayed_records, 0);
        let got = snapshotted.search(&request(&c), &SearchConfig::default()).unwrap();
        assert_eq!(got.outcome.final_score, want.outcome.final_score);
        assert_eq!(got.outcome.selected_joins(), want.outcome.selected_joins());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_and_remove_are_journaled_and_recovered() {
        let c = corpus();
        let dir = tmp_dir("mutations");
        let platform = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        // Replace provider 0 with a re-transformed copy, remove provider 1.
        let replacement =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(None, 9).unwrap();
        let removed_name = c.providers[1].name().to_string();
        platform.replace(replacement).unwrap();
        platform.remove(&removed_name).unwrap();
        assert!(platform.remove(&removed_name).is_err(), "double remove is an error");
        assert_eq!(platform.num_datasets(), 14);
        let want = platform.search(&request(&c), &SearchConfig::default()).unwrap();

        drop(platform);
        let reopened = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        assert_eq!(reopened.num_datasets(), 14);
        assert!(reopened.store().get(&removed_name).is_err());
        let got = reopened.search(&request(&c), &SearchConfig::default()).unwrap();
        assert_eq!(got.outcome.final_score, want.outcome.final_score);
        assert_eq!(got.outcome.selected_joins(), want.outcome.selected_joins());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn removal_never_launders_budget() {
        // Remove a private dataset, then try to re-register it with a
        // fresh budget: the durable ledger remembers the spend, across a
        // restart too.
        let c = corpus();
        let dir = tmp_dir("launder");
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let platform = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        let upload =
            LocalDataStore::new(c.providers[0].clone()).prepare_upload(Some(b), 1).unwrap();
        let name = upload.sketch.name.clone();
        platform.register(upload.clone()).unwrap();
        platform.remove(&name).unwrap();
        assert!(platform.register(upload.clone()).is_err(), "spent budget is spent forever");

        drop(platform);
        let reopened = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        assert_eq!(reopened.num_datasets(), 0);
        assert_eq!(reopened.budget_spent(&name), Some(b), "ledger survives removal and restart");
        assert!(reopened.register(upload).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grants_and_charges_survive_restart() {
        let dir = tmp_dir("charges");
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let platform = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        platform.grant_budget("apm_dataset", b).unwrap();
        platform.charge_budget("apm_dataset", b.fraction(0.4).unwrap()).unwrap();
        assert!(platform.charge_budget("apm_dataset", b).is_err(), "over-charge rejected");
        drop(platform);

        let reopened = CentralPlatform::open_with(durable_config(&dir)).unwrap();
        assert_eq!(reopened.budget_spent("apm_dataset").unwrap().epsilon, 0.4);
        assert!((reopened.budget_remaining("apm_dataset").unwrap().epsilon - 0.6).abs() < 1e-12);
        // The rejected over-charge was never journaled: remaining still 0.6.
        reopened.charge_budget("apm_dataset", b.fraction(0.6).unwrap()).unwrap();
        assert!(reopened.budget_remaining("apm_dataset").unwrap().epsilon.abs() < 1e-12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_policy_triggers() {
        let c = corpus();
        let dir = tmp_dir("autockpt");
        let mut config = durable_config(&dir);
        config.storage.as_mut().unwrap().checkpoint_every = 4;
        let platform = CentralPlatform::open_with(config.clone()).unwrap();
        for p in c.providers.iter().take(6) {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let stats = platform.stats().unwrap();
        let storage = stats.storage.unwrap();
        assert_eq!(storage.snapshot_seq, Some(4), "auto-checkpoint at the 4th record");
        assert_eq!(storage.records_since_checkpoint, 2);
        assert!(storage.last_checkpoint_error.is_none());
        drop(platform);
        let reopened = CentralPlatform::open_with(config).unwrap();
        assert_eq!(reopened.recovery_report().unwrap().replayed_records, 2);
        assert_eq!(reopened.num_datasets(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_surface_discovery_counters_and_truncation() {
        let c = corpus();
        let platform = CentralPlatform::new(PlatformConfig::default());
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let stats = platform.stats().unwrap();
        assert_eq!(stats.discovery.datasets, 15);
        assert!(stats.discovery.key_columns >= 15, "every provider carries a key column");
        assert!(stats.discovery.schema_buckets >= 1);
        assert!(stats.discovery.posting_terms > 0);
        assert_eq!(stats.discovery.lsh_buckets, 0, "small corpus never builds the LSH table");
        assert_eq!(stats.search_candidates_truncated, 0);

        // A capped search accumulates its truncation into the fleet totals.
        let cfg = SearchConfig {
            limits: mileena_search::CandidateLimits { max_join: 1, max_union: 0 },
            ..Default::default()
        };
        let result = platform.search(&request(&c), &cfg).unwrap();
        assert!(result.outcome.candidates_truncated > 0);
        let stats = platform.stats().unwrap();
        assert_eq!(stats.search_candidates_truncated, result.outcome.candidates_truncated as u64);
    }

    #[test]
    fn volatile_platform_has_no_storage() {
        let platform = CentralPlatform::new(PlatformConfig::default());
        assert!(matches!(platform.checkpoint(), Err(CoreError::Storage(_))));
        let stats = platform.stats().unwrap();
        assert!(stats.storage.is_none());
        assert!(platform.recovery_report().is_none());
    }

    #[test]
    fn capacity_limit_enforced_and_released() {
        let c = corpus();
        let config = PlatformConfig { max_concurrent_sessions: 0, ..Default::default() };
        let platform = CentralPlatform::new(config);
        for p in c.providers.iter().take(3) {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        let err = platform.submit(sketched(&c), None).unwrap_err();
        assert_eq!(err, CoreError::Capacity(0), "{err}");

        // With capacity 1, sequential sessions reuse the released slot.
        let config = PlatformConfig { max_concurrent_sessions: 1, ..Default::default() };
        let platform = CentralPlatform::new(config);
        for p in &c.providers {
            platform
                .register(LocalDataStore::new(p.clone()).prepare_upload(None, 3).unwrap())
                .unwrap();
        }
        for _ in 0..2 {
            platform.submit(sketched(&c), None).unwrap().wait().unwrap();
        }
        assert_eq!(platform.active_sessions(), 0);
    }
}
