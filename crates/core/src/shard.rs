//! The sharded scatter-gather platform: the corpus partitioned across S
//! shard workers behind the same service surface as [`CentralPlatform`].
//!
//! Each shard worker **is** a full `CentralPlatform` — same journaled
//! mutation path (validate → journal → apply), same WAL/snapshot engine
//! (rooted at `dir/shard-i` for durable deployments), same budget ledger.
//! The coordinator routes every mutation to the shard that owns the
//! dataset and runs searches as scatter-gather greedy rounds over
//! per-shard candidate slices (see `mileena_search::scatter`).
//!
//! **Placement.** A dataset's owning shard is decided once, at first
//! sight, by hashing its interned `DatasetId`; the decision is then
//! remembered in a membership map. On reopen the map is rebuilt from what
//! each shard's store recovered *and* from each shard's budget ledger —
//! ledger entries survive dataset removal, so a remove/re-register cycle
//! still routes to the shard holding the spend and cannot launder budget
//! through the partitioning.
//!
//! **Parity.** All shard stores share one dataset/key interner and all
//! shard indexes share one corpus-global TF-IDF [`TermSpace`], so
//! discovery scores, candidate ranks, and evaluation results are
//! bit-identical to a single `CentralPlatform` over the union corpus.
//! Selections and scores are pinned identical by the `sharded_parity`
//! suite; only execution counters (evaluations/bound skips) may differ,
//! because the distributed pruning walk is a different — equally
//! admissible — walk.
//!
//! **Unavailability.** A shard marked unavailable fails its mutations
//! with the typed [`CoreError::ShardUnavailable`]; searches fail fast when
//! *any* shard is down, because a partial scatter would silently change
//! selections — worse than an honest error. A caller that prefers a
//! partial answer over no answer opts in with `SearchConfig::degraded_ok`:
//! the search then runs over the live shard subset and the reply says so
//! explicitly (`degraded`, `shards_missing`).
//!
//! **Supervision.** Each shard worker sits behind a circuit breaker
//! (Healthy → Suspect → Quarantined → Recovering, see [`ShardHealth`]):
//! consecutive failed shard calls — injected faults, crashes, or gather
//! deadline strikes — open the breaker and quarantine the shard. A
//! quarantined durable shard is auto-recovered on the next touch by
//! re-opening it from its own WAL directory (`dir/shard-i`), the exact
//! recovery path a restart would take, so the rebuilt worker is
//! bit-identical; a volatile shard half-opens with a cheap probe of the
//! still-resident worker. Operator downs (`set_shard_available`) are
//! *not* auto-recovered — only the operator flips them back.

use crate::durable::RecoveryReport;
use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use crate::platform::{
    duration_ns, fit_final_model, record_search_metrics, CentralPlatform, PlatformConfig,
    SessionGuard,
};
use crate::sched::{ExecMode, SchedulerConfig, SessionJob, SessionScheduler};
use crate::service::SearchSession;
use crate::wire::{
    CheckpointReceipt, DiscoveryReport, PlatformStats, SearchReply, ShardHealth, ShardHealthState,
    ShardReport, SpanBreakdown,
};
use mileena_discovery::{DiscoveryIndex, TermSpace};
use mileena_obs::{Metrics, MetricsReport};
use mileena_privacy::PrivacyBudget;
use mileena_relation::{DatasetInterner, FxHashMap};
use mileena_search::{
    build_shard_slices, build_sketched_state, enumerate_candidates, Candidate, CandidateLimits,
    CandidateSet, ScatterSearch, ScatterStats, SearchConfig, SearchControl, SearchError,
    SearchEvent, SearchOutcome, ShardCallFault, ShardCallInterceptor, ShardPartition,
    SketchedRequest,
};
use mileena_sketch::SketchStore;
use mileena_storage::{FaultKind, FaultSite};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Cumulative scatter-gather counters across every search this platform
/// served (the sharded analogue of the central `SearchTotals`, plus the
/// scatter-specific counts surfaced through [`ShardReport`]).
#[derive(Debug, Default)]
struct ScatterTotals {
    evaluations: AtomicU64,
    bound_skips: AtomicU64,
    candidates_truncated: AtomicU64,
    scatter_rounds: AtomicU64,
    gather_rounds: AtomicU64,
    cross_shard_skips: AtomicU64,
}

impl ScatterTotals {
    fn record(&self, outcome: &SearchOutcome, stats: ScatterStats) {
        self.evaluations.fetch_add(outcome.evaluations as u64, Ordering::Relaxed);
        self.bound_skips.fetch_add(outcome.bound_skips as u64, Ordering::Relaxed);
        self.candidates_truncated.fetch_add(outcome.candidates_truncated as u64, Ordering::Relaxed);
        self.scatter_rounds.fetch_add(stats.rounds, Ordering::Relaxed);
        self.gather_rounds.fetch_add(stats.shard_rounds, Ordering::Relaxed);
        self.cross_shard_skips.fetch_add(stats.cross_shard_skips, Ordering::Relaxed);
    }
}

/// Consecutive failed shard calls (injected faults or gather deadline
/// strikes) that open a shard's circuit breaker. A crash opens it
/// immediately regardless of the count.
const BREAKER_THRESHOLD: u64 = 3;

/// One shard's breaker bookkeeping (guarded by the supervisor's per-shard
/// mutex; snapshotted into [`ShardHealth`] for reports).
#[derive(Debug, Default)]
struct BreakerCore {
    state: ShardHealthState,
    consecutive_failures: u64,
    breaker_opened: u64,
    timeout_strikes: u64,
    recoveries: u64,
}

/// The per-shard health supervisors: the breaker state machine
/// Healthy → Suspect → Quarantined → Recovering → Healthy. Failures and
/// timeout strikes are recorded from scatter workers (via the shard-call
/// interceptor and gather stats); recovery transitions are driven by the
/// coordinator on its own threads ([`ShardedPlatform::recover_shard`]).
#[derive(Debug)]
struct ShardSupervisors {
    shards: Vec<Mutex<BreakerCore>>,
    metrics: Arc<Metrics>,
}

impl ShardSupervisors {
    fn new(n: usize, metrics: Arc<Metrics>) -> Self {
        ShardSupervisors {
            shards: (0..n).map(|_| Mutex::new(BreakerCore::default())).collect(),
            metrics,
        }
    }

    fn state(&self, shard: usize) -> ShardHealthState {
        self.shards[shard].lock().state
    }

    /// Snapshot every shard's breaker into the wire form for `stats()`.
    fn health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, core)| {
                let b = core.lock();
                ShardHealth {
                    shard,
                    state: b.state,
                    consecutive_failures: b.consecutive_failures,
                    breaker_opened: b.breaker_opened,
                    timeout_strikes: b.timeout_strikes,
                    recoveries: b.recoveries,
                }
            })
            .collect()
    }

    /// A shard call completed cleanly: close the failure run. Only a
    /// successful *recovery* closes an open breaker.
    fn record_success(&self, shard: usize) {
        let mut b = self.shards[shard].lock();
        if matches!(b.state, ShardHealthState::Healthy | ShardHealthState::Suspect) {
            b.consecutive_failures = 0;
            b.state = ShardHealthState::Healthy;
        }
    }

    /// A shard call failed: extend the failure run; at
    /// [`BREAKER_THRESHOLD`] the breaker opens and the shard quarantines.
    fn record_failure(&self, shard: usize) {
        let mut b = self.shards[shard].lock();
        if matches!(b.state, ShardHealthState::Quarantined | ShardHealthState::Recovering) {
            return;
        }
        self.metrics.shard_call_failures.inc();
        b.consecutive_failures += 1;
        if b.consecutive_failures >= BREAKER_THRESHOLD {
            self.open(&mut b);
        } else {
            b.state = ShardHealthState::Suspect;
        }
    }

    /// A shard blew its per-round gather deadline: a timeout strike, which
    /// feeds the breaker exactly like a failed call.
    fn record_timeout(&self, shard: usize) {
        {
            let mut b = self.shards[shard].lock();
            b.timeout_strikes += 1;
        }
        self.metrics.shard_timeout_strikes.inc();
        self.record_failure(shard);
    }

    /// A shard crashed mid-call: straight to Quarantined, no grace.
    fn quarantine(&self, shard: usize) {
        let mut b = self.shards[shard].lock();
        if !matches!(b.state, ShardHealthState::Quarantined | ShardHealthState::Recovering) {
            b.consecutive_failures += 1;
            self.metrics.shard_call_failures.inc();
            self.open(&mut b);
        }
    }

    fn open(&self, b: &mut BreakerCore) {
        b.state = ShardHealthState::Quarantined;
        b.breaker_opened += 1;
        self.metrics.shard_breaker_opened.inc();
        self.metrics.shards_quarantined.add(1);
    }

    /// Claim the recovery of a quarantined shard (half-open). Returns
    /// false when the shard is not quarantined or another thread already
    /// holds the recovery.
    fn begin_recovery(&self, shard: usize) -> bool {
        let mut b = self.shards[shard].lock();
        if b.state == ShardHealthState::Quarantined {
            b.state = ShardHealthState::Recovering;
            true
        } else {
            false
        }
    }

    /// Settle a claimed recovery: success closes the breaker, failure
    /// re-quarantines for the next probe.
    fn finish_recovery(&self, shard: usize, ok: bool) {
        let mut b = self.shards[shard].lock();
        if ok {
            b.state = ShardHealthState::Healthy;
            b.consecutive_failures = 0;
            b.recoveries += 1;
            self.metrics.shard_recoveries.inc();
            self.metrics.shards_quarantined.add(-1);
        } else {
            b.state = ShardHealthState::Quarantined;
        }
    }
}

/// The sharded platform: S shard workers behind one coordinator.
#[derive(Debug)]
pub struct ShardedPlatform {
    /// Shard workers behind per-slot locks: supervised recovery swaps a
    /// rebuilt worker in while the coordinator keeps serving.
    shards: Vec<Mutex<Arc<CentralPlatform>>>,
    available: Vec<AtomicBool>,
    /// Dataset name → owning shard. Grows on first placement, survives
    /// removal (the shard's ledger may still hold the spend), rebuilt from
    /// shard stores + ledgers at open.
    membership: Mutex<FxHashMap<String, usize>>,
    config: PlatformConfig,
    active_sessions: Arc<AtomicUsize>,
    session_counter: AtomicU64,
    totals: Arc<ScatterTotals>,
    sched: SessionScheduler,
    /// Coordinator-level telemetry registry: the search-stage histograms
    /// and counters for scatter-gather searches. Shard workers keep their
    /// own registries (WAL/snapshot I/O); [`ShardedPlatform::metrics`]
    /// merges everything into one report.
    metrics: Arc<Metrics>,
    /// Per-shard circuit breakers (shared with scatter workers, which
    /// record call failures through the shard-call interceptor).
    supervisors: Arc<ShardSupervisors>,
    /// The corpus-global TF-IDF term space every shard index shares —
    /// kept on the coordinator so a recovered shard's rebuilt index joins
    /// the same space (the parity guarantee for recovery).
    terms: TermSpace,
}

/// The per-shard worker configuration: shard workers never run sessions
/// themselves (the coordinator's scheduler owns admission), so their pools
/// stay minimal; discovery/search tuning is inherited.
fn shard_worker_config(
    config: &PlatformConfig,
    storage: Option<crate::durable::StoragePolicy>,
) -> PlatformConfig {
    PlatformConfig {
        discovery: config.discovery.clone(),
        default_search: config.default_search.clone(),
        max_concurrent_sessions: 1,
        max_session_wall: None,
        scheduler: SchedulerConfig { workers: Some(1), queue_depth: 1, ..Default::default() },
        shards: 1,
        storage,
    }
}

impl ShardedPlatform {
    /// New volatile sharded platform with `config.shards` shard workers
    /// (clamped to ≥ 1). All shards share one dataset/key interner and one
    /// TF-IDF term space — the invariants the parity guarantee rests on.
    pub fn new(config: PlatformConfig) -> Self {
        let s = config.shards.max(1);
        let terms = TermSpace::new();
        let shards = (0..s)
            .map(|_| {
                let store = SketchStore::new();
                let index = DiscoveryIndex::with_term_space(
                    config.discovery.clone(),
                    Arc::clone(store.dataset_interner()),
                    terms.clone(),
                );
                Arc::new(CentralPlatform::new_with_parts(
                    shard_worker_config(&config, None),
                    store,
                    index,
                ))
            })
            .collect();
        Self::assemble(shards, config, terms)
    }

    /// Open a durable sharded platform: shard `i` journals and snapshots
    /// under `<storage.dir>/shard-i`, each recovering independently through
    /// the standard `CentralPlatform` recovery path. The shard count is
    /// pinned by the directory layout — reopening with a different
    /// `config.shards` is an error (partitions on disk cannot be
    /// re-hashed).
    pub fn open_with(config: PlatformConfig) -> Result<Self> {
        let policy = config.storage.clone().ok_or_else(|| {
            CoreError::Storage("open_with requires PlatformConfig.storage".into())
        })?;
        let s = config.shards.max(1);
        let existing = count_shard_dirs(&policy.dir);
        if existing != 0 && existing != s {
            return Err(CoreError::Storage(format!(
                "shard count mismatch: {} holds {existing} shard directories, config wants {s}",
                policy.dir.display()
            )));
        }
        let terms = TermSpace::new();
        // Shards recover from disjoint directories with no cross-shard
        // ordering dependency (the shared interner and term space are
        // concurrency-safe), so the S opens run concurrently — restart
        // time is the slowest shard, not the sum.
        let workers: Vec<Result<CentralPlatform>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..s)
                .map(|i| {
                    let config = &config;
                    let policy = &policy;
                    let terms = terms.clone();
                    scope.spawn(move || {
                        let store = SketchStore::new();
                        let index = DiscoveryIndex::with_term_space(
                            config.discovery.clone(),
                            Arc::clone(store.dataset_interner()),
                            terms,
                        );
                        let mut shard_policy = policy.clone();
                        shard_policy.dir = policy.dir.join(format!("shard-{i}"));
                        CentralPlatform::open_with_parts(
                            shard_worker_config(config, Some(shard_policy)),
                            store,
                            index,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard open panicked")).collect()
        });
        let mut shards = Vec::with_capacity(s);
        for worker in workers {
            shards.push(Arc::new(worker?));
        }
        let platform = Self::assemble(shards, config, terms);
        platform.rebuild_membership();
        Ok(platform)
    }

    fn assemble(
        shards: Vec<Arc<CentralPlatform>>,
        config: PlatformConfig,
        terms: TermSpace,
    ) -> Self {
        let available = shards.iter().map(|_| AtomicBool::new(true)).collect();
        let sched = SessionScheduler::new(
            config.scheduler.effective_workers(config.max_concurrent_sessions),
            config.scheduler.queue_depth,
            config.scheduler.faults.clone(),
        );
        let metrics = Arc::new(Metrics::new());
        let supervisors = Arc::new(ShardSupervisors::new(shards.len(), Arc::clone(&metrics)));
        ShardedPlatform {
            shards: shards.into_iter().map(Mutex::new).collect(),
            available,
            membership: Mutex::new(FxHashMap::default()),
            config,
            active_sessions: Arc::new(AtomicUsize::new(0)),
            session_counter: AtomicU64::new(0),
            totals: Arc::new(ScatterTotals::default()),
            sched,
            metrics,
            supervisors,
            terms,
        }
    }

    /// The current worker behind shard slot `i` (recovery may swap it).
    fn shard(&self, i: usize) -> Arc<CentralPlatform> {
        Arc::clone(&self.shards[i].lock())
    }

    /// The coordinator's live telemetry registry (counters record here).
    pub fn metrics_registry(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// One merged metrics snapshot for the whole deployment: the
    /// coordinator's registry (search stages, per-shard gather times),
    /// its scheduler's queue-wait/run-time histograms, and every shard
    /// worker's report (WAL/snapshot I/O) merged in by name.
    pub fn metrics(&self) -> MetricsReport {
        let mut report = self.metrics.report();
        let (queue_wait, run_time) = self.sched.histograms();
        report.push_histogram("search_queue_wait_ns", queue_wait.report());
        report.push_histogram("scheduler_run_ns", run_time.report());
        for i in 0..self.shards.len() {
            report.merge(&self.shard(i).metrics());
        }
        report
    }

    /// Re-derive the membership map after recovery: whatever a shard's
    /// store recovered lives there, and whatever its ledger remembers —
    /// including removed datasets — stays routed there so the
    /// anti-laundering rejection comes from the shard holding the spend.
    fn rebuild_membership(&self) {
        let mut membership = self.membership.lock();
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            // names() never hydrates — membership rebuild must not defeat
            // lazy sketch hydration by touching every blob.
            for name in shard.store().names() {
                membership.insert(name, i);
            }
            for name in shard.ledger_datasets() {
                membership.insert(name, i);
            }
        }
    }

    /// The shard owning `name`: the membership map when the name is known,
    /// otherwise a first-seen placement by hashing the interned dataset id
    /// (recorded by the mutation that follows, never by the lookup itself).
    fn place(&self, name: &str) -> usize {
        if let Some(&shard) = self.membership.lock().get(name) {
            return shard;
        }
        let id = self.shard(0).store().dataset_interner().intern(name);
        let mixed = (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.shards.len()
    }

    /// Operator-down shards fail outright; breaker-quarantined shards get
    /// one supervised recovery attempt before the typed rejection.
    fn ensure_available(&self, shard: usize) -> Result<()> {
        if !self.available[shard].load(Ordering::SeqCst) {
            return Err(CoreError::ShardUnavailable { shard });
        }
        if self.supervisors.state(shard) == ShardHealthState::Quarantined {
            self.recover_shard(shard).map_err(|_| CoreError::ShardUnavailable { shard })?;
        }
        match self.supervisors.state(shard) {
            ShardHealthState::Quarantined | ShardHealthState::Recovering => {
                Err(CoreError::ShardUnavailable { shard })
            }
            _ => Ok(()),
        }
    }

    /// Mark a shard worker available/unavailable (operator control; the
    /// chaos and failure tests drive it). Mutations owned by an unavailable
    /// shard and all searches fail with [`CoreError::ShardUnavailable`].
    /// Unlike a breaker quarantine, an operator down is never auto-recovered.
    pub fn set_shard_available(&self, shard: usize, up: bool) {
        self.available[shard].store(up, Ordering::SeqCst);
    }

    /// Per-shard breaker health (state, failure runs, strike and recovery
    /// counters) — the same snapshot `stats()` ships in [`ShardReport`].
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.supervisors.health()
    }

    /// Attempt supervised recovery of a breaker-quarantined shard; no-op
    /// when the shard is healthy or another thread holds the recovery.
    ///
    /// Durable deployments rebuild the worker from its own WAL directory
    /// (`dir/shard-i`) through the standard `CentralPlatform` recovery
    /// path — snapshot hydrate, journal replay, index rebuild — and swap
    /// it into the slot, so the recovered shard is bit-identical to the
    /// one that crashed. Volatile deployments half-open the breaker with a
    /// cheap probe of the still-resident worker (the breaker opened on
    /// call faults; the in-memory state never went away).
    pub fn recover_shard(&self, shard: usize) -> Result<()> {
        if !self.supervisors.begin_recovery(shard) {
            return Ok(());
        }
        let result = self.reopen_shard(shard);
        self.supervisors.finish_recovery(shard, result.is_ok());
        result
    }

    fn reopen_shard(&self, shard: usize) -> Result<()> {
        let Some(policy) = self.config.storage.clone() else {
            return self.shard(shard).stats().map(|_| ());
        };
        let store = SketchStore::new();
        let index = DiscoveryIndex::with_term_space(
            self.config.discovery.clone(),
            Arc::clone(store.dataset_interner()),
            self.terms.clone(),
        );
        let mut shard_policy = policy.clone();
        shard_policy.dir = policy.dir.join(format!("shard-{shard}"));
        let worker = Arc::new(CentralPlatform::open_with_parts(
            shard_worker_config(&self.config, Some(shard_policy)),
            store,
            index,
        )?);
        *self.shards[shard].lock() = Arc::clone(&worker);
        // Re-merge the recovered shard's membership: its store and ledger
        // say what it owns, same as the open-time rebuild.
        let mut membership = self.membership.lock();
        for name in worker.store().names() {
            membership.insert(name, shard);
        }
        for name in worker.ledger_datasets() {
            membership.insert(name, shard);
        }
        Ok(())
    }

    /// Register a provider upload on the owning shard (the shard's own
    /// journaled validate → journal → apply path).
    pub fn register(&self, upload: ProviderUpload) -> Result<()> {
        let name = upload.sketch.name.clone();
        let shard = self.place(&name);
        self.ensure_available(shard)?;
        self.shard(shard).register(upload)?;
        self.membership.lock().insert(name, shard);
        Ok(())
    }

    /// Replace (or insert) a dataset on its owning shard.
    pub fn replace(&self, upload: ProviderUpload) -> Result<()> {
        let name = upload.sketch.name.clone();
        let shard = self.place(&name);
        self.ensure_available(shard)?;
        self.shard(shard).replace(upload)?;
        self.membership.lock().insert(name, shard);
        Ok(())
    }

    /// Remove a dataset from its owning shard. The membership entry stays:
    /// the shard's ledger may still hold the dataset's spend, and
    /// re-registration must route back to it.
    pub fn remove(&self, name: &str) -> Result<()> {
        let shard = self.place(name);
        self.ensure_available(shard)?;
        self.shard(shard).remove(name)
    }

    /// Grant budget headroom on the owning shard's ledger.
    pub fn grant_budget(&self, dataset: &str, budget: PrivacyBudget) -> Result<()> {
        let shard = self.place(dataset);
        self.ensure_available(shard)?;
        self.shard(shard).grant_budget(dataset, budget)?;
        self.membership.lock().insert(dataset.to_string(), shard);
        Ok(())
    }

    /// Charge a release against the owning shard's ledger.
    pub fn charge_budget(&self, dataset: &str, cost: PrivacyBudget) -> Result<()> {
        let shard = self.place(dataset);
        self.ensure_available(shard)?;
        self.shard(shard).charge_budget(dataset, cost)
    }

    /// Budget spent by a dataset, answered by its owning shard.
    pub fn budget_spent(&self, dataset: &str) -> Option<PrivacyBudget> {
        self.shard(self.place(dataset)).budget_spent(dataset)
    }

    /// Budget remaining for a dataset, answered by its owning shard.
    pub fn budget_remaining(&self, dataset: &str) -> Result<PrivacyBudget> {
        self.shard(self.place(dataset)).budget_remaining(dataset)
    }

    /// Total registered datasets across all shards.
    pub fn num_datasets(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard(i).num_datasets()).sum()
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Merge the shards' recovery reports into one restart summary:
    /// counters sum across shards; the phase timings take the slowest
    /// shard, since the S opens ran concurrently. `None` on volatile
    /// deployments.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        let reports: Vec<_> =
            (0..self.shards.len()).filter_map(|i| self.shard(i).recovery_report()).collect();
        let mut merged: Option<RecoveryReport> = None;
        for r in reports {
            let m = merged.get_or_insert(RecoveryReport {
                snapshot_seq: None,
                replayed_records: 0,
                torn_tail: false,
                invalid_snapshots: 0,
                snapshot_bytes: 0,
                delta_links: 0,
                eager_ms: 0,
                replay_ms: 0,
                lazy_datasets: 0,
            });
            m.snapshot_seq = m.snapshot_seq.max(r.snapshot_seq);
            m.replayed_records += r.replayed_records;
            m.torn_tail |= r.torn_tail;
            m.invalid_snapshots += r.invalid_snapshots;
            m.snapshot_bytes += r.snapshot_bytes;
            m.delta_links += r.delta_links;
            m.eager_ms = m.eager_ms.max(r.eager_ms);
            m.replay_ms = m.replay_ms.max(r.replay_ms);
            m.lazy_datasets += r.lazy_datasets;
        }
        merged
    }

    /// The shard currently owning a dataset (`None` = never placed).
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.membership.lock().get(name).copied()
    }

    /// The shard workers (read access for tests/inspection).
    pub fn shard_platforms(&self) -> Vec<Arc<CentralPlatform>> {
        (0..self.shards.len()).map(|i| self.shard(i)).collect()
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Sessions admitted and not yet finished (queued + executing).
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Sessions currently waiting in the admission queue.
    pub fn queued_sessions(&self) -> usize {
        self.sched.queued()
    }

    /// Checkpoint every shard, returning the aggregate receipt (max
    /// sequence, summed datasets and snapshot bytes). Errors on volatile
    /// platforms, like the single-shard checkpoint.
    pub fn checkpoint(&self) -> Result<CheckpointReceipt> {
        let mut receipt = CheckpointReceipt { seq: 0, datasets: 0, snapshot_bytes: 0 };
        for i in 0..self.shards.len() {
            let r = self.shard(i).checkpoint()?;
            receipt.seq = receipt.seq.max(r.seq);
            receipt.datasets += r.datasets;
            receipt.snapshot_bytes += r.snapshot_bytes;
        }
        Ok(receipt)
    }

    /// Platform statistics, aggregated across shards, with the
    /// scatter-gather counters in `stats.shards`.
    pub fn stats(&self) -> Result<PlatformStats> {
        let mut discovery = DiscoveryReport {
            datasets: 0,
            key_columns: 0,
            lsh_buckets: 0,
            schema_buckets: 0,
            posting_terms: 0,
        };
        let mut datasets_per_shard = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let s = self.shard(i).stats()?;
            discovery.datasets += s.discovery.datasets;
            discovery.key_columns += s.discovery.key_columns;
            discovery.lsh_buckets += s.discovery.lsh_buckets;
            discovery.schema_buckets += s.discovery.schema_buckets;
            // Postings live in the shared corpus-global term space: every
            // shard reports the same census, so take it, don't sum it.
            discovery.posting_terms = discovery.posting_terms.max(s.discovery.posting_terms);
            datasets_per_shard.push(s.datasets);
        }
        let unavailable = self
            .available
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.load(Ordering::SeqCst))
            .map(|(i, _)| i)
            .collect();
        Ok(PlatformStats {
            datasets: datasets_per_shard.iter().sum(),
            active_sessions: self.active_sessions(),
            search_evaluations: self.totals.evaluations.load(Ordering::Relaxed),
            search_bound_skips: self.totals.bound_skips.load(Ordering::Relaxed),
            search_candidates_truncated: self.totals.candidates_truncated.load(Ordering::Relaxed),
            discovery,
            scheduler: self.sched.report(),
            storage: None,
            shards: Some(ShardReport {
                shards: self.shards.len(),
                datasets_per_shard,
                scatter_rounds: self.totals.scatter_rounds.load(Ordering::Relaxed),
                gather_rounds: self.totals.gather_rounds.load(Ordering::Relaxed),
                cross_shard_bound_skips: self.totals.cross_shard_skips.load(Ordering::Relaxed),
                gather: self.metrics.shard_gather.summary(),
                unavailable,
                health: self.supervisors.health(),
            }),
        })
    }

    /// The scatter shard-call interceptor: rolls the chaos plan's
    /// [`FaultSite::ShardCall`] site once per shard call and records the
    /// outcome against the shard's breaker — an `Error` is a failed call,
    /// a `Panic` is a crash (straight to quarantine), a clean roll closes
    /// the shard's failure run. `None` when no fault plan is armed.
    fn shard_call_interceptor(&self) -> Option<ShardCallInterceptor> {
        let plan = self.config.scheduler.faults.clone()?;
        let supervisors = Arc::clone(&self.supervisors);
        Some(Arc::new(move |shard: usize| match plan.decide(FaultSite::ShardCall) {
            None => {
                supervisors.record_success(shard);
                None
            }
            Some(FaultKind::Latency(d)) => Some(ShardCallFault::Latency(d)),
            Some(FaultKind::Error) => {
                supervisors.record_failure(shard);
                Some(ShardCallFault::Fail)
            }
            Some(FaultKind::Panic) => {
                supervisors.quarantine(shard);
                Some(ShardCallFault::Fail)
            }
        }))
    }

    /// Submit a sketched search: scatter-gather rounds across the shards,
    /// admission-controlled by the coordinator's scheduler exactly like
    /// [`CentralPlatform::submit`].
    pub fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        self.submit_with_control(request, config, SearchControl::new())
    }

    /// [`ShardedPlatform::submit`] with caller-supplied run control. The
    /// admission semantics (queueing, overload shedding, deadline shedding)
    /// are the coordinator scheduler's — identical to the single-shard
    /// platform's.
    pub fn submit_with_control(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
        mut control: SearchControl,
    ) -> Result<SearchSession> {
        let cfg = config.unwrap_or_else(|| self.config.default_search.clone());
        // A search wants every shard: a partial scatter silently changes
        // selections, so by default any down shard fails the submit
        // outright (after one supervised recovery attempt for
        // breaker-quarantined shards). With `degraded_ok` the search
        // instead proceeds over the live subset and the reply is labeled.
        let mut missing: Vec<u32> = Vec::new();
        for i in 0..self.shards.len() {
            let live = self.available[i].load(Ordering::SeqCst) && {
                if self.supervisors.state(i) == ShardHealthState::Quarantined {
                    let _ = self.recover_shard(i);
                }
                !matches!(
                    self.supervisors.state(i),
                    ShardHealthState::Quarantined | ShardHealthState::Recovering
                )
            };
            if !live {
                if cfg.degraded_ok {
                    missing.push(i as u32);
                } else {
                    return Err(CoreError::ShardUnavailable { shard: i });
                }
            }
        }
        if missing.len() == self.shards.len() {
            // Nothing left to search over; degraded cannot mean "empty".
            return Err(CoreError::ShardUnavailable { shard: missing[0] as usize });
        }
        if self.config.max_concurrent_sessions == 0 {
            return Err(CoreError::Capacity(0));
        }
        let submit_start = Instant::now();
        self.metrics.searches_started.inc();
        self.active_sessions.fetch_add(1, Ordering::SeqCst);
        let guard = SessionGuard(Arc::clone(&self.active_sessions));

        if let Some(wall) = self.config.max_session_wall {
            control.set_deadline(Instant::now() + wall);
        }
        let state = build_sketched_state(&request, &cfg)?;
        let prepare = submit_start.elapsed();
        self.metrics.search_prepare.record_duration(prepare);
        // Scatter enumeration: one frozen corpus snapshot per shard, each
        // enumerated under its index read lock, merged into the exact
        // global candidate order a single shard would produce.
        let enumerate_start = Instant::now();
        let mut stores = Vec::with_capacity(self.shards.len());
        let mut sets = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            let corpus = shard.store().frozen();
            // A missing shard contributes no candidates but keeps its slot
            // (slice alignment): its empty slice is simply never visited.
            let set = if missing.contains(&(i as u32)) {
                CandidateSet::default()
            } else {
                let index = shard.index().read();
                enumerate_candidates(&index, &corpus, &request.profile, &cfg.limits)
            };
            stores.push(corpus);
            sets.push(set);
        }
        let names = Arc::clone(self.shard(0).store().dataset_interner());
        let (assignments, truncated) = merge_shard_candidates(sets, &cfg.limits, &names);
        let enumerate = enumerate_start.elapsed();
        self.metrics.search_enumerate.record_duration(enumerate);

        let id = self.session_counter.fetch_add(1, Ordering::SeqCst) + 1;
        let target = request.task.target.clone();
        let requester: Arc<str> = Arc::from(request.requester.as_deref().unwrap_or(""));

        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::sync_channel(1);
        let worker_control = control.clone();
        let totals = Arc::clone(&self.totals);
        let metrics = Arc::clone(&self.metrics);
        let supervisors = Arc::clone(&self.supervisors);
        let shard_count = self.shards.len();
        let interceptor = self.shard_call_interceptor();
        let spans_base = SpanBreakdown {
            prepare_ns: duration_ns(prepare),
            enumerate_ns: duration_ns(enumerate),
            ..SpanBreakdown::default()
        };
        let exec = Box::new(move |mode: ExecMode| {
            let mut observer = move |ev: SearchEvent| {
                let _ = event_tx.send(ev);
            };
            match mode {
                ExecMode::Run { queue_wait } => {
                    let parts: Vec<ShardPartition<'_>> = assignments
                        .into_iter()
                        .zip(&stores)
                        .enumerate()
                        .map(|(shard, ((candidates, positions), store))| ShardPartition {
                            shard,
                            candidates,
                            positions,
                            store,
                        })
                        .collect();
                    let (slices, _) = build_shard_slices(&state, parts, cfg.pruning);
                    let mut search = ScatterSearch::new(cfg.clone());
                    if let Some(hook) = interceptor {
                        search = search.with_interceptor(hook);
                    }
                    search
                        .run_observed(
                            state,
                            slices,
                            truncated,
                            &names,
                            &worker_control,
                            &mut observer,
                        )
                        .map_err(|e| match e {
                            // A shard failure without degraded_ok is the
                            // same typed rejection a down shard gets at
                            // submit time.
                            SearchError::ShardFailed { shard } => {
                                CoreError::ShardUnavailable { shard }
                            }
                            other => CoreError::from(other),
                        })
                        .and_then(|(outcome, stats)| {
                            for &ns in &stats.gather_ns {
                                metrics.shard_gather.record(ns);
                            }
                            // Feed the breakers: deadline strikes count
                            // against a shard, clean participation closes
                            // its failure run.
                            for &s in &stats.timeouts {
                                supervisors.record_timeout(s);
                            }
                            for i in 0..shard_count {
                                if missing.contains(&(i as u32))
                                    || stats.dead_shards.contains(&i)
                                    || stats.timeouts.contains(&i)
                                {
                                    continue;
                                }
                                supervisors.record_success(i);
                            }
                            let mut shards_missing = missing.clone();
                            for &s in &stats.dead_shards {
                                if !shards_missing.contains(&(s as u32)) {
                                    shards_missing.push(s as u32);
                                }
                            }
                            shards_missing.sort_unstable();
                            totals.record(&outcome, stats);
                            let fit_start = Instant::now();
                            let model = fit_final_model(&outcome, &target, cfg.lambda)?;
                            let fit = fit_start.elapsed();
                            let mut reply = SearchReply::from_outcome(&outcome, &model);
                            reply.degraded = !shards_missing.is_empty();
                            reply.shards_missing = shards_missing;
                            if reply.degraded {
                                metrics.searches_degraded.inc();
                            }
                            reply.spans.prepare_ns = spans_base.prepare_ns;
                            reply.spans.enumerate_ns = spans_base.enumerate_ns;
                            reply.spans.queue_wait_ns = duration_ns(queue_wait);
                            reply.spans.fit_ns = duration_ns(fit);
                            reply.spans.total_ns = duration_ns(submit_start.elapsed());
                            record_search_metrics(&metrics, &outcome, &reply);
                            Ok(reply)
                        })
                }
                ExecMode::Immediate(reason) => {
                    // Same synthesized zero-round reply as the central
                    // platform's shed/cancel path.
                    let base_score = state.current_score().map_err(CoreError::from)?;
                    observer(SearchEvent::Finished {
                        stop_reason: reason,
                        final_score: base_score,
                        rounds: 0,
                        evaluations: 0,
                        bound_skips: 0,
                        elapsed_ms: 0,
                    });
                    let outcome = SearchOutcome {
                        base_score,
                        final_score: base_score,
                        steps: Vec::new(),
                        evaluations: 0,
                        bound_skips: 0,
                        candidates_truncated: 0,
                        round_eval_ns: Vec::new(),
                        elapsed: Duration::ZERO,
                        stop_reason: reason,
                        state,
                    };
                    let model = fit_final_model(&outcome, &target, cfg.lambda)?;
                    let mut reply = SearchReply::from_outcome(&outcome, &model);
                    // Even a shed/cancelled zero-round reply is honest
                    // about the shards it never could have consulted.
                    reply.degraded = !missing.is_empty();
                    reply.shards_missing = missing.clone();
                    reply.spans.prepare_ns = spans_base.prepare_ns;
                    reply.spans.enumerate_ns = spans_base.enumerate_ns;
                    reply.spans.total_ns = duration_ns(submit_start.elapsed());
                    record_search_metrics(&metrics, &outcome, &reply);
                    Ok(reply)
                }
            }
        });
        self.sched.admit(SessionJob {
            requester,
            control: control.clone(),
            guard,
            result_tx,
            enqueued: Instant::now(),
            exec,
        })?;
        Ok(SearchSession::new(id, control, event_rx, result_rx))
    }
}

/// Number of `shard-<i>` subdirectories under `dir` (0 when the directory
/// does not exist yet).
fn count_shard_dirs(dir: &std::path::Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.path().is_dir()
                && e.file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("shard-"))
                    .is_some_and(|i| i.parse::<usize>().is_ok())
        })
        .count()
}

fn similarity(c: &Candidate) -> f64 {
    match c {
        Candidate::Join { similarity, .. } | Candidate::Union { similarity, .. } => *similarity,
    }
}

/// Per-shard slice of the merged candidate list: the shard's candidates in
/// global-order restriction, paired with their global positions.
type ShardCandidates = Vec<(Vec<Candidate>, Vec<usize>)>;

/// Merge per-shard candidate sets into the exact global enumeration order
/// the single-shard reference produces: joins ranked (descending Jaccard,
/// ascending name), then unions ranked (descending cosine, ascending name)
/// — the same total orders the discovery tier sorts with, over globally
/// unique names — with the per-class limits re-applied across the merged
/// set. Returns, per shard, its candidates (in global-order restriction)
/// with their global positions, plus the total truncation count
/// (per-shard enumeration truncation + merge-time drops).
fn merge_shard_candidates(
    sets: Vec<CandidateSet>,
    limits: &CandidateLimits,
    names: &DatasetInterner,
) -> (ShardCandidates, usize) {
    let num_shards = sets.len();
    let mut truncated: usize = sets.iter().map(|s| s.truncated()).sum();
    let mut joins: Vec<(usize, Candidate)> = Vec::new();
    let mut unions: Vec<(usize, Candidate)> = Vec::new();
    for (shard, set) in sets.into_iter().enumerate() {
        for cand in set.candidates {
            match cand {
                Candidate::Join { .. } => joins.push((shard, cand)),
                Candidate::Union { .. } => unions.push((shard, cand)),
            }
        }
    }
    let name_of = |c: &Candidate| names.name(c.dataset()).unwrap_or_else(|| Arc::from(""));
    let rank = |a: &(usize, Candidate), b: &(usize, Candidate)| {
        similarity(&b.1)
            .partial_cmp(&similarity(&a.1))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| name_of(&a.1).cmp(&name_of(&b.1)))
    };
    joins.sort_by(rank);
    unions.sort_by(rank);
    let keep_joins = joins.len().min(limits.max_join);
    let keep_unions = unions.len().min(limits.max_union);
    truncated += (joins.len() - keep_joins) + (unions.len() - keep_unions);

    let mut out: Vec<(Vec<Candidate>, Vec<usize>)> =
        (0..num_shards).map(|_| Default::default()).collect();
    for (pos, (shard, cand)) in
        joins.into_iter().take(keep_joins).chain(unions.into_iter().take(keep_unions)).enumerate()
    {
        out[shard].0.push(cand);
        out[shard].1.push(pos);
    }
    (out, truncated)
}
