//! Admission-controlled session scheduler: the platform's overload
//! backbone.
//!
//! [`CentralPlatform::submit`](crate::CentralPlatform::submit) used to
//! spawn one OS thread per session and hard-reject everything past
//! `max_concurrent_sessions`. This module replaces that with a bounded
//! worker pool fed by an admission queue:
//!
//! - **Backpressure** — the queue has a configurable depth; submissions
//!   past it are shed *at submit time* with
//!   [`CoreError::Overloaded`], carrying the queue depth and a
//!   `retry_after_ms` hint derived from an EWMA of recent session run
//!   times (see [`crate::retry`] for the matching client-side backoff).
//! - **Fairness** — the queue is keyed by the request's self-declared
//!   `requester` label and drained round-robin across keys, so one
//!   requester flooding the platform cannot starve everyone else. The
//!   label is cooperative, not authenticated: it bounds accidental
//!   monopolization, not adversarial impersonation.
//! - **Deadline-aware shedding** — a session whose deadline has already
//!   passed, or provably will pass before its estimated queue wait, is
//!   answered immediately with a zero-round reply marked
//!   [`StopReason::Shed`] instead of wasting a worker on doomed work.
//!   The same preflight runs again at dequeue, so a session cancelled or
//!   expired *while queued* never runs a round.
//! - **Panic isolation** — workers run sessions under `catch_unwind`; a
//!   panicking search produces a typed `Internal` error reply, never a
//!   hung client, and the worker thread survives to serve the next job.
//! - **Graceful drain** — dropping the scheduler (platform shutdown)
//!   cancels in-flight sessions at their next round boundary, answers
//!   every queued session with [`CoreError::Shutdown`], and joins the
//!   pool. Every admitted session terminates with a reply or a typed
//!   error; slot and queue counters return to zero.
//!
//! Chaos hooks: a [`FaultPlan`] (shared with the storage engine) can
//! inject panics, errors, and latency at the [`FaultSite::Worker`] site,
//! which is how `tests/chaos.rs` proves the termination invariant.

use crate::error::{CoreError, Result};
use crate::platform::SessionGuard;
use crate::wire::{SchedulerReport, SearchReply, StopCounts};
use mileena_obs::Histogram;
use mileena_search::{SearchControl, StopReason};
use mileena_storage::{FaultKind, FaultPlan, FaultSite};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Retry hint returned before any session has completed (no EWMA yet).
const DEFAULT_RETRY_HINT_MS: u64 = 50;
/// Clamp bounds for the overload retry hint.
const MIN_RETRY_HINT_MS: u64 = 10;
const MAX_RETRY_HINT_MS: u64 = 5_000;

/// Scheduler tuning, part of
/// [`PlatformConfig`](crate::platform::PlatformConfig).
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker-pool size; `None` sizes it to the host's available
    /// parallelism. The effective pool is additionally capped by
    /// `max_concurrent_sessions` and never smaller than 1.
    pub workers: Option<usize>,
    /// Admission-queue bound: submissions arriving with this many
    /// sessions already waiting are shed with [`CoreError::Overloaded`].
    /// A depth of 0 is treated as 1.
    pub queue_depth: usize,
    /// Chaos hook: fault plan rolled at [`FaultSite::Worker`] before each
    /// dispatched session. Share the same plan with
    /// [`StoragePolicy`](crate::durable::StoragePolicy) to exercise
    /// storage and scheduler faults from one deterministic schedule.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { workers: None, queue_depth: 256, faults: None }
    }
}

impl SchedulerConfig {
    /// The pool size this config yields on this host, given the
    /// platform's session cap.
    pub fn effective_workers(&self, max_concurrent_sessions: usize) -> usize {
        let requested = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
        requested.clamp(1, max_concurrent_sessions.max(1))
    }
}

/// How a worker (or inline shed) executes a session.
pub(crate) enum ExecMode {
    /// Run the full greedy search. Carries the measured admission-queue
    /// wait so the session can report it in its span breakdown.
    Run {
        /// Enqueue → worker dequeue.
        queue_wait: Duration,
    },
    /// Skip the search: answer with a zero-round reply carrying this
    /// stop reason (queued-cancel, queued-deadline-expiry, admission
    /// shed).
    Immediate(StopReason),
}

/// One admitted session, queued until a worker picks it up.
pub(crate) struct SessionJob {
    /// Fair-queueing key (empty string when the request carried none).
    pub(crate) requester: Arc<str>,
    /// The session's run control (shared with the requester's handle).
    pub(crate) control: SearchControl,
    /// Holds the platform's active-session slot until the job finishes.
    pub(crate) guard: SessionGuard,
    /// Where the final reply goes.
    pub(crate) result_tx: mpsc::SyncSender<Result<SearchReply>>,
    /// When the platform built this job (queue-wait measurement anchor).
    pub(crate) enqueued: Instant,
    /// The session body, built by the platform at submit time over a
    /// frozen corpus snapshot.
    pub(crate) exec: Box<dyn FnOnce(ExecMode) -> Result<SearchReply> + Send>,
}

/// Per-requester FIFO queues drained round-robin. Invariant: a requester
/// key is in `ring` exactly once iff its queue is non-empty.
struct QueueState {
    queues: HashMap<Arc<str>, VecDeque<SessionJob>>,
    ring: VecDeque<Arc<str>>,
    queued: usize,
    /// Controls of sessions currently executing, by worker slot — what
    /// shutdown cancels.
    running_controls: Vec<Option<SearchControl>>,
    shutdown: bool,
}

impl QueueState {
    fn enqueue(&mut self, job: SessionJob) {
        let key = Arc::clone(&job.requester);
        let queue = self.queues.entry(Arc::clone(&key)).or_default();
        if queue.is_empty() {
            self.ring.push_back(key);
        }
        queue.push_back(job);
        self.queued += 1;
    }

    fn pop_next(&mut self) -> Option<SessionJob> {
        let key = self.ring.pop_front()?;
        let queue = self.queues.get_mut(&key).expect("ring key has a queue");
        let job = queue.pop_front().expect("ring key queue is non-empty");
        if queue.is_empty() {
            self.queues.remove(&key);
        } else {
            self.ring.push_back(key);
        }
        self.queued -= 1;
        Some(job)
    }

    fn drain_all(&mut self) -> Vec<SessionJob> {
        let mut out = Vec::with_capacity(self.queued);
        while let Some(job) = self.pop_next() {
            out.push(job);
        }
        out
    }
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_shutdown: AtomicU64,
    panicked: AtomicU64,
    queue_high_water: AtomicUsize,
}

struct Inner {
    workers: usize,
    queue_depth: usize,
    faults: Option<Arc<FaultPlan>>,
    state: Mutex<QueueState>,
    cv: Condvar,
    running: AtomicUsize,
    /// EWMA of executed-session wall time in nanoseconds (0 = no sample
    /// yet). Feeds the deadline-shed wait estimate and the retry hint.
    avg_run_ns: AtomicU64,
    counters: Counters,
    stops: Mutex<StopCounts>,
    /// Admission-queue wait of every job a worker dequeued.
    queue_wait: Histogram,
    /// Worker execution time of jobs that actually ran.
    run_time: Histogram,
}

impl Inner {
    /// Poison-tolerant lock: a worker can only panic *outside* the lock
    /// (sessions run under `catch_unwind`), but the termination invariant
    /// must not hinge on that.
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Estimated wait for a session admitted now; `None` until the first
    /// session completes (no EWMA sample — admission never sheds on a
    /// guess it cannot back).
    fn estimated_wait(&self) -> Option<Duration> {
        let avg = self.avg_run_ns.load(Ordering::Relaxed);
        if avg == 0 {
            return None;
        }
        let queued = self.lock_state().queued;
        let idle = self.workers.saturating_sub(self.running.load(Ordering::Relaxed));
        if queued == 0 && idle > 0 {
            return Some(Duration::ZERO);
        }
        let drain_rounds = (queued as u64) / (self.workers as u64) + 1;
        Some(Duration::from_nanos(avg.saturating_mul(drain_rounds)))
    }

    /// How soon a retry is likely to find a free queue slot: one session
    /// drains roughly every `avg / workers`.
    fn retry_after_ms(&self) -> u64 {
        let avg = self.avg_run_ns.load(Ordering::Relaxed);
        if avg == 0 {
            return DEFAULT_RETRY_HINT_MS;
        }
        let per_slot_ms = avg / (self.workers as u64) / 1_000_000;
        per_slot_ms.clamp(MIN_RETRY_HINT_MS, MAX_RETRY_HINT_MS)
    }

    fn note_run(&self, elapsed: Duration) {
        let ns = (elapsed.as_nanos().min(u64::MAX as u128) as u64).max(1);
        let old = self.avg_run_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { (3 * old + ns) / 4 };
        self.avg_run_ns.store(new.max(1), Ordering::Relaxed);
    }
}

/// The bounded worker pool + admission queue. One per platform.
pub(crate) struct SessionScheduler {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for SessionScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionScheduler")
            .field("workers", &self.inner.workers)
            .field("queue_depth", &self.inner.queue_depth)
            .finish()
    }
}

impl SessionScheduler {
    pub(crate) fn new(workers: usize, queue_depth: usize, faults: Option<Arc<FaultPlan>>) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            workers,
            queue_depth: queue_depth.max(1),
            faults,
            state: Mutex::new(QueueState {
                queues: HashMap::new(),
                ring: VecDeque::new(),
                queued: 0,
                running_controls: vec![None; workers],
                shutdown: false,
            }),
            cv: Condvar::new(),
            running: AtomicUsize::new(0),
            avg_run_ns: AtomicU64::new(0),
            counters: Counters::default(),
            stops: Mutex::new(StopCounts::default()),
            queue_wait: Histogram::new(),
            run_time: Histogram::new(),
        });
        let handles = (0..workers)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mileena-session-{slot}"))
                    .spawn(move || worker_loop(inner, slot))
                    .expect("spawn session worker")
            })
            .collect();
        SessionScheduler { inner, handles }
    }

    /// Admit a session: enqueue it for a worker, shed it inline with a
    /// `StopReason::Shed` reply when its deadline is hopeless, or refuse
    /// it with a typed error when the queue is full / the platform is
    /// shutting down. On `Err` the job is dropped here, which releases
    /// its session slot and closes its reply channel.
    pub(crate) fn admit(&self, job: SessionJob) -> Result<()> {
        let inner = &self.inner;
        if let Some(deadline) = job.control.deadline() {
            let now = Instant::now();
            let hopeless = now >= deadline
                || inner.estimated_wait().is_some_and(|wait| now + wait >= deadline);
            if hopeless {
                inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
                inner.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                finish_job(inner, job, ExecMode::Immediate(StopReason::Shed), None);
                return Ok(());
            }
        }
        let mut state = inner.lock_state();
        if state.shutdown {
            return Err(CoreError::Shutdown);
        }
        if state.queued >= inner.queue_depth {
            drop(state);
            inner.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::Overloaded {
                queue_depth: inner.queue_depth,
                retry_after_ms: inner.retry_after_ms(),
            });
        }
        state.enqueue(job);
        let depth_now = state.queued;
        drop(state);
        inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        inner.counters.queue_high_water.fetch_max(depth_now, Ordering::Relaxed);
        inner.cv.notify_one();
        Ok(())
    }

    /// Sessions currently waiting in the admission queue.
    pub(crate) fn queued(&self) -> usize {
        self.inner.lock_state().queued
    }

    /// Counters for `stats()`.
    pub(crate) fn report(&self) -> SchedulerReport {
        let inner = &self.inner;
        let queued = inner.lock_state().queued;
        SchedulerReport {
            workers: inner.workers,
            queued,
            queue_depth_limit: inner.queue_depth,
            queue_high_water: inner.counters.queue_high_water.load(Ordering::Relaxed),
            admitted: inner.counters.admitted.load(Ordering::Relaxed),
            completed: inner.counters.completed.load(Ordering::Relaxed),
            shed_overload: inner.counters.shed_overload.load(Ordering::Relaxed),
            shed_deadline: inner.counters.shed_deadline.load(Ordering::Relaxed),
            shed_shutdown: inner.counters.shed_shutdown.load(Ordering::Relaxed),
            panicked: inner.counters.panicked.load(Ordering::Relaxed),
            stops: *inner.stops.lock().unwrap_or_else(|e| e.into_inner()),
            queue_wait: inner.queue_wait.summary(),
            run_time: inner.run_time.summary(),
        }
    }

    /// The live queue-wait and run-time histograms (for the platform's
    /// metrics dump, which wants full bucket reports, not summaries).
    pub(crate) fn histograms(&self) -> (&Histogram, &Histogram) {
        (&self.inner.queue_wait, &self.inner.run_time)
    }
}

impl Drop for SessionScheduler {
    /// Graceful drain: no admitted session is left without an answer.
    fn drop(&mut self) {
        let (drained, running) = {
            let mut state = self.inner.lock_state();
            state.shutdown = true;
            let drained = state.drain_all();
            let running: Vec<SearchControl> =
                state.running_controls.iter().flatten().cloned().collect();
            (drained, running)
        };
        // In-flight sessions stop at their next round boundary and reply
        // normally (StopReason::Cancelled).
        for control in &running {
            control.cancel();
        }
        self.inner.cv.notify_all();
        // Queued sessions never run: typed Shutdown error, slot released.
        for job in drained {
            self.inner.counters.shed_shutdown.fetch_add(1, Ordering::Relaxed);
            let SessionJob { guard, result_tx, .. } = job;
            drop(guard);
            let _ = result_tx.send(Err(CoreError::Shutdown));
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>, slot: usize) {
    loop {
        let job = {
            let mut state = inner.lock_state();
            loop {
                if let Some(job) = state.pop_next() {
                    // Register as running under the same lock that
                    // dequeues, so shutdown observes the session as
                    // queued or running — never neither.
                    state.running_controls[slot] = Some(job.control.clone());
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = inner.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        inner.running.fetch_add(1, Ordering::SeqCst);

        let queue_wait = job.enqueued.elapsed();
        inner.queue_wait.record_duration(queue_wait);

        // Dequeue preflight: sessions cancelled or expired while queued
        // never run a round.
        let mode = if job.control.is_cancelled() {
            ExecMode::Immediate(StopReason::Cancelled)
        } else if job.control.deadline_exceeded() {
            inner.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
            ExecMode::Immediate(StopReason::Shed)
        } else {
            ExecMode::Run { queue_wait }
        };
        let executed = matches!(mode, ExecMode::Run { .. });
        let inject = match (&mode, &inner.faults) {
            (ExecMode::Run { .. }, Some(plan)) => plan.decide(FaultSite::Worker),
            _ => None,
        };
        let start = Instant::now();
        finish_job(&inner, job, mode, inject);
        if executed {
            let elapsed = start.elapsed();
            inner.note_run(elapsed);
            inner.run_time.record_duration(elapsed);
        }

        inner.running.fetch_sub(1, Ordering::SeqCst);
        inner.lock_state().running_controls[slot] = None;
    }
}

/// Execute one session under panic isolation and deliver its reply.
/// Ordering contract (shared with the pre-scheduler implementation): the
/// event stream closes, then the session slot frees, *then* the reply
/// becomes visible — a caller that `wait()`s and immediately resubmits
/// must find its slot free.
fn finish_job(inner: &Inner, job: SessionJob, mode: ExecMode, inject: Option<FaultKind>) {
    let SessionJob { guard, result_tx, exec, .. } = job;
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        match inject {
            Some(FaultKind::Panic) => panic!("injected worker panic (chaos)"),
            Some(FaultKind::Error) => {
                return Err(CoreError::Service("injected worker fault (chaos)".into()));
            }
            Some(FaultKind::Latency(delay)) => std::thread::sleep(delay),
            None => {}
        }
        exec(mode)
    }));
    let reply = match outcome {
        Ok(reply) => reply,
        Err(panic) => {
            inner.counters.panicked.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::Service(format!(
                "search worker panicked: {}",
                panic_message(panic.as_ref())
            )))
        }
    };
    if let Ok(reply) = &reply {
        inner.counters.completed.fetch_add(1, Ordering::Relaxed);
        inner.stops.lock().unwrap_or_else(|e| e.into_inner()).record(reply.stop_reason);
    }
    drop(guard);
    let _ = result_tx.send(reply);
}

fn panic_message(panic: &(dyn Any + Send)) -> &str {
    panic
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn dummy_job(
        requester: &str,
        active: &Arc<AtomicUsize>,
        exec: Box<dyn FnOnce(ExecMode) -> Result<SearchReply> + Send>,
    ) -> (SessionJob, mpsc::Receiver<Result<SearchReply>>) {
        active.fetch_add(1, Ordering::SeqCst);
        let (result_tx, result_rx) = mpsc::sync_channel(1);
        let job = SessionJob {
            requester: Arc::from(requester),
            control: SearchControl::new(),
            guard: SessionGuard(Arc::clone(active)),
            result_tx,
            enqueued: Instant::now(),
            exec,
        };
        (job, result_rx)
    }

    fn failing_exec() -> Box<dyn FnOnce(ExecMode) -> Result<SearchReply> + Send> {
        Box::new(|_| Err(CoreError::Service("dummy session".into())))
    }

    #[test]
    fn fair_queue_drains_round_robin_across_requesters() {
        let active = Arc::new(AtomicUsize::new(0));
        let mut state = QueueState {
            queues: HashMap::new(),
            ring: VecDeque::new(),
            queued: 0,
            running_controls: Vec::new(),
            shutdown: false,
        };
        // A hog enqueues 3 before b and c get one each.
        for requester in ["hog", "hog", "hog", "b", "c"] {
            let (job, _rx) = dummy_job(requester, &active, failing_exec());
            state.enqueue(job);
        }
        let order: Vec<String> =
            std::iter::from_fn(|| state.pop_next()).map(|job| job.requester.to_string()).collect();
        assert_eq!(order, ["hog", "b", "c", "hog", "hog"]);
        assert_eq!(state.queued, 0);
        assert!(state.queues.is_empty() && state.ring.is_empty());
    }

    #[test]
    fn overload_shed_is_typed_and_releases_the_slot() {
        let active = Arc::new(AtomicUsize::new(0));
        let sched = SessionScheduler::new(1, 1, None);
        // Occupy the single worker with a job that blocks until released.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (blocker, blocker_rx) = dummy_job(
            "a",
            &active,
            Box::new(move |_| {
                let _ = gate_rx.recv();
                Err(CoreError::Service("blocker done".into()))
            }),
        );
        sched.admit(blocker).unwrap();
        // Wait until the worker has actually dequeued it.
        while sched.queued() > 0 {
            std::thread::yield_now();
        }
        // Fill the queue, then overflow it.
        let (queued_job, queued_rx) = dummy_job("a", &active, failing_exec());
        sched.admit(queued_job).unwrap();
        let (overflow, overflow_rx) = dummy_job("a", &active, failing_exec());
        let err = sched.admit(overflow).unwrap_err();
        assert!(
            matches!(err, CoreError::Overloaded { queue_depth: 1, .. }),
            "want Overloaded, got {err}"
        );
        // The shed job's slot was released and its channel closed.
        assert!(overflow_rx.recv().is_err(), "shed job must not get a reply");
        assert_eq!(active.load(Ordering::SeqCst), 2, "shed job's slot released");

        gate_tx.send(()).unwrap();
        assert!(blocker_rx.recv().unwrap().is_err());
        assert!(queued_rx.recv().unwrap().is_err());
        drop(sched);
        assert_eq!(active.load(Ordering::SeqCst), 0, "all slots released");
    }

    #[test]
    fn shutdown_answers_queued_jobs_with_typed_error() {
        let active = Arc::new(AtomicUsize::new(0));
        let sched = SessionScheduler::new(1, 8, None);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (blocker, blocker_rx) = dummy_job(
            "a",
            &active,
            Box::new(move |_| {
                let _ = gate_rx.recv();
                Err(CoreError::Service("blocker done".into()))
            }),
        );
        sched.admit(blocker).unwrap();
        while sched.queued() > 0 {
            std::thread::yield_now();
        }
        let mut queued_rxs = Vec::new();
        for _ in 0..3 {
            let (job, rx) = dummy_job("b", &active, failing_exec());
            sched.admit(job).unwrap();
            queued_rxs.push(rx);
        }
        // Unblock the worker right as shutdown begins, then drop.
        gate_tx.send(()).unwrap();
        let report_before = sched.report();
        assert_eq!(report_before.admitted, 4);
        drop(sched);
        for rx in queued_rxs {
            match rx.recv() {
                Ok(Err(CoreError::Shutdown)) => {}
                // The worker may have legitimately dequeued one more job
                // between the gate release and the drain.
                Ok(Err(CoreError::Service(_))) => {}
                other => panic!("queued job must get Shutdown or run: {other:?}"),
            }
        }
        assert!(blocker_rx.recv().unwrap().is_err());
        assert_eq!(active.load(Ordering::SeqCst), 0, "every slot released on shutdown");
    }

    #[test]
    fn worker_panic_yields_typed_error_and_worker_survives() {
        let active = Arc::new(AtomicUsize::new(0));
        let sched = SessionScheduler::new(1, 8, None);
        let (job, rx) = dummy_job("a", &active, Box::new(|_| panic!("search exploded")));
        sched.admit(job).unwrap();
        let reply = rx.recv().unwrap();
        match reply {
            Err(CoreError::Service(msg)) => {
                assert!(msg.contains("panicked"), "{msg}");
                assert!(msg.contains("search exploded"), "{msg}");
            }
            other => panic!("want typed panic error, got {other:?}"),
        }
        // The same worker serves the next session.
        let (job, rx) = dummy_job("a", &active, failing_exec());
        sched.admit(job).unwrap();
        assert!(rx.recv().unwrap().is_err());
        let report = sched.report();
        assert_eq!(report.panicked, 1);
        assert_eq!(report.admitted, 2);
        drop(sched);
        assert_eq!(active.load(Ordering::SeqCst), 0);
    }
}
