//! Durable platform state: the semantic encoding layered over
//! `mileena-storage`'s payload-agnostic WAL + snapshot engine.
//!
//! Two payload families exist, both JSON (the workspace's one
//! deterministic, versioned serialization format):
//!
//! - **WAL records** — one [`WalOp`] per platform mutation (sketch
//!   register/replace/remove, budget charge), journaled *before* the
//!   in-memory state mutates. Replay after a crash re-applies exactly the
//!   records past the last snapshot, in sequence order, so an acknowledged
//!   mutation is never lost and a budget charge is never double-counted.
//! - **Snapshots** — the complete [`PlatformSnapshot`]: every sketch with
//!   its discovery profile, plus the full budget ledger (limits *and*
//!   spent amounts — the ledger, not the sketches, is what the DP
//!   guarantee makes mandatory to persist).
//!
//! Both have by-reference serializers ([`WalOpRef`],
//! [`PlatformSnapshotRef`]) so journaling and checkpointing never deep-copy
//! sketch slabs; byte-equivalence with the derived owned forms is pinned by
//! tests below.

use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use mileena_discovery::DatasetProfile;
use mileena_privacy::PrivacyBudget;
use mileena_sketch::DatasetSketch;
use serde::ser::{SerializeSeq, SerializeStruct, Serializer};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Where and how the platform persists its state.
#[derive(Debug, Clone)]
pub struct StoragePolicy {
    /// Directory holding the WAL segments and snapshots.
    pub dir: PathBuf,
    /// Auto-checkpoint after this many journaled records (0 = checkpoint
    /// only on explicit `PlatformService::checkpoint` calls).
    pub checkpoint_every: u64,
    /// `fsync` every append (power-loss durable) vs flush-to-OS only
    /// (process-crash durable).
    pub fsync_appends: bool,
    /// Snapshots to retain; ≥ 2 lets recovery survive a corrupted newest
    /// snapshot by falling back one checkpoint.
    pub retain_snapshots: usize,
    /// Hydrate v2 snapshot sketches lazily: profiles and the ledger load
    /// eagerly at open, sketch blobs decode on first evaluation touch.
    /// `false` forces the v1 behavior (everything materializes at open).
    pub lazy_hydration: bool,
    /// Spawn a background thread at open that drains the unhydrated pool
    /// while the platform already serves traffic. Only meaningful with
    /// `lazy_hydration`.
    pub background_hydration: bool,
    /// Emit differential checkpoints when a base snapshot exists: the
    /// auto-checkpoint writes only the datasets/ledger rows changed since
    /// the chain head. Explicit checkpoints are always full.
    pub delta_checkpoints: bool,
    /// Delta links to chain before the next auto-checkpoint is forced
    /// full (caps the recovery read amplification).
    pub max_delta_chain: usize,
    /// Chaos hook: deterministic fault plan rolled at the storage-engine
    /// sites (WAL append/fsync, snapshot/delta write). `None` in
    /// production.
    pub faults: Option<std::sync::Arc<mileena_storage::FaultPlan>>,
}

impl StoragePolicy {
    /// Default policy rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoragePolicy {
            dir: dir.into(),
            checkpoint_every: 256,
            fsync_appends: false,
            retain_snapshots: 2,
            lazy_hydration: true,
            background_hydration: true,
            delta_checkpoints: true,
            max_delta_chain: 4,
            faults: None,
        }
    }
}

/// One journaled platform mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// A provider upload entered the corpus (sketch + profile + optional
    /// budget registration-and-charge).
    Register {
        /// The full upload bundle.
        upload: ProviderUpload,
    },
    /// A provider re-upload replaced an existing dataset; a budget on the
    /// upload adds to the dataset's cumulative privacy loss.
    Replace {
        /// The replacement upload bundle.
        upload: ProviderUpload,
    },
    /// A dataset left the corpus. Its ledger entry survives — spent budget
    /// is spent forever.
    Remove {
        /// Dataset name.
        dataset: String,
    },
    /// Budget headroom was granted to a dataset without being charged
    /// (the APM-style flow: releases draw it down per query).
    Grant {
        /// Dataset name.
        dataset: String,
        /// The (ε, δ) granted.
        budget: PrivacyBudget,
    },
    /// A release was charged against a dataset's budget.
    Charge {
        /// Dataset name.
        dataset: String,
        /// The (ε, δ) cost.
        cost: PrivacyBudget,
    },
}

impl WalOp {
    /// Decode a journaled record payload.
    pub fn decode(payload: &[u8]) -> Result<WalOp> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| CoreError::Storage(format!("wal record is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Storage(format!("undecodable wal record: {e}")))
    }
}

/// Borrowed form of [`WalOp`] — what the live mutation path journals, so a
/// provider upload is never cloned just to hit the log. Serializes
/// byte-identically to the derived owned form (pinned by a test).
#[derive(Debug, Clone, Copy)]
pub enum WalOpRef<'a> {
    /// See [`WalOp::Register`].
    Register {
        /// The upload being journaled.
        upload: &'a ProviderUpload,
    },
    /// See [`WalOp::Replace`].
    Replace {
        /// The replacement upload being journaled.
        upload: &'a ProviderUpload,
    },
    /// See [`WalOp::Remove`].
    Remove {
        /// Dataset name.
        dataset: &'a str,
    },
    /// See [`WalOp::Grant`].
    Grant {
        /// Dataset name.
        dataset: &'a str,
        /// The (ε, δ) granted.
        budget: PrivacyBudget,
    },
    /// See [`WalOp::Charge`].
    Charge {
        /// Dataset name.
        dataset: &'a str,
        /// The (ε, δ) cost.
        cost: PrivacyBudget,
    },
}

impl WalOpRef<'_> {
    /// Encode to the journal payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| CoreError::Storage(format!("encode wal record: {e}")))
    }
}

impl Serialize for WalOpRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        match self {
            WalOpRef::Register { upload } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Register", 1)?;
                sv.serialize_field("upload", upload)?;
                sv.end()
            }
            WalOpRef::Replace { upload } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Replace", 1)?;
                sv.serialize_field("upload", upload)?;
                sv.end()
            }
            WalOpRef::Remove { dataset } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Remove", 1)?;
                sv.serialize_field("dataset", dataset)?;
                sv.end()
            }
            WalOpRef::Grant { dataset, budget } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Grant", 2)?;
                sv.serialize_field("dataset", dataset)?;
                sv.serialize_field("budget", budget)?;
                sv.end()
            }
            WalOpRef::Charge { dataset, cost } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Charge", 2)?;
                sv.serialize_field("dataset", dataset)?;
                sv.serialize_field("cost", cost)?;
                sv.end()
            }
        }
    }
}

/// Snapshot-only compact form of a keyed sketch: the feature schema
/// written **once** (the wire format repeats it per key — fine for
/// per-upload payloads, ruinous for a full-corpus snapshot), parallel
/// row slabs straight from the arena, and the symmetric `q` matrix packed
/// as its upper triangle (`m(m+1)/2` of `m²` entries). Since the arena
/// itself stores the packed triangle, this layout is now a **by-reference
/// identity** over the slabs: compaction copies rows verbatim (key-sorted)
/// and rehydration hands `qu` straight to `GroupedArena::from_parts` with
/// no repacking pass in either direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactKeyed {
    /// The join-key column.
    pub key_column: String,
    /// Shared feature schema (once, not per key).
    pub features: Vec<String>,
    /// Key values, one per row, in sorted key order.
    pub keys: Vec<Vec<mileena_relation::KeyValue>>,
    /// Row counts, length `d`.
    pub c: Vec<f64>,
    /// Feature sums, length `d·m`, row-major.
    pub s: Vec<f64>,
    /// Packed upper triangles of the symmetric `q`, length `d·m(m+1)/2` —
    /// the arena's own storage layout.
    pub qu: Vec<f64>,
}

impl CompactKeyed {
    /// Compact a keyed sketch (owned path, used by tests; the checkpoint
    /// writer serializes by reference instead).
    pub fn of(keyed: &mileena_sketch::KeyedSketch) -> CompactKeyed {
        let arena = keyed.arena();
        let m = arena.num_features();
        let sorted = arena.sorted_keys();
        let mut keys = Vec::with_capacity(sorted.len());
        let mut c = Vec::with_capacity(sorted.len());
        let mut s = Vec::with_capacity(sorted.len() * m);
        let mut qu = Vec::with_capacity(sorted.len() * mileena_semiring::packed_len(m));
        for (r, key) in sorted {
            let (rc, rs, rq) = arena.row(r);
            keys.push(key);
            c.push(rc);
            s.extend_from_slice(rs);
            qu.extend_from_slice(rq);
        }
        CompactKeyed {
            key_column: keyed.key_column.clone(),
            features: arena.schema().to_vec(),
            keys,
            c,
            s,
            qu,
        }
    }

    /// Rehydrate into an arena-backed keyed sketch on the global key space
    /// (the store re-interns on registration when it uses an isolated one).
    /// Slab lengths are validated by `GroupedArena::from_parts` — sheared
    /// slabs surface as a typed storage error, never a panic.
    pub fn into_keyed(self) -> Result<mileena_sketch::KeyedSketch> {
        let arena = mileena_semiring::GroupedArena::from_parts(
            self.features,
            self.keys,
            self.c,
            self.s,
            self.qu,
            mileena_semiring::KeyInterner::global(),
        )
        .map_err(|e| CoreError::Storage(format!("compact sketch: {e}")))?;
        Ok(mileena_sketch::KeyedSketch::from_arena(self.key_column, arena))
    }
}

/// Snapshot-only compact form of a full dataset sketch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactSketch {
    /// Dataset name.
    pub name: String,
    /// Original (unqualified) feature names.
    pub raw_features: Vec<String>,
    /// Qualified feature names.
    pub features: Vec<String>,
    /// The full (non-keyed) triple.
    pub full: mileena_semiring::CovarTriple,
    /// Compact keyed sketches.
    pub keyed: Vec<CompactKeyed>,
    /// Source row count.
    pub row_count: usize,
}

impl CompactSketch {
    /// Compact a dataset sketch (owned path; see [`CompactKeyed::of`]).
    pub fn of(sketch: &DatasetSketch) -> CompactSketch {
        CompactSketch {
            name: sketch.name.clone(),
            raw_features: sketch.raw_features.clone(),
            features: sketch.features.clone(),
            full: sketch.full.clone(),
            keyed: sketch.keyed.iter().map(CompactKeyed::of).collect(),
            row_count: sketch.row_count,
        }
    }

    /// Rehydrate the full dataset sketch.
    pub fn into_sketch(self) -> Result<DatasetSketch> {
        let keyed: Result<Vec<_>> = self.keyed.into_iter().map(CompactKeyed::into_keyed).collect();
        Ok(DatasetSketch {
            name: self.name,
            raw_features: self.raw_features,
            features: self.features,
            full: self.full,
            keyed: keyed?,
            row_count: self.row_count,
        })
    }
}

/// One dataset in a snapshot: its sketches (compact form) plus the
/// discovery profile the index is rebuilt from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// The dataset's compact sketch bundle.
    pub sketch: CompactSketch,
    /// Its discovery profile.
    pub profile: DatasetProfile,
}

/// One budget-ledger row: cumulative limit and spend for a dataset name —
/// retained even after the dataset is removed (spent budget is permanent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Dataset name.
    pub dataset: String,
    /// Total budget granted across all releases.
    pub limit: PrivacyBudget,
    /// Budget consumed so far.
    pub spent: PrivacyBudget,
}

/// The platform's complete durable state as of one WAL sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSnapshot {
    /// Every registered dataset, name-sorted (store iteration order).
    pub datasets: Vec<DatasetEntry>,
    /// The full budget ledger, name-sorted.
    pub ledger: Vec<LedgerEntry>,
}

impl PlatformSnapshot {
    /// Decode a snapshot payload, any format version: v2 binary (leading
    /// [`SNAPSHOT_V2_MARKER`] byte) materializes every sketch blob; v1
    /// JSON (leading `{`) takes the serde path unchanged, so snapshots
    /// written before the binary format still recover bit-identically.
    pub fn decode(payload: &[u8]) -> Result<PlatformSnapshot> {
        if payload.first() == Some(&SNAPSHOT_V2_MARKER) {
            let index = SnapshotIndex::decode(payload)?;
            let mut datasets = Vec::with_capacity(index.datasets.len());
            for slot in index.datasets {
                let sketch = slot.sketch.materialize(payload)?;
                datasets.push(DatasetEntry { sketch, profile: slot.profile });
            }
            return Ok(PlatformSnapshot { datasets, ledger: index.ledger });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|e| CoreError::Storage(format!("snapshot is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Storage(format!("undecodable snapshot: {e}")))
    }
}

/// Borrowed snapshot writer: checkpointing serializes straight from the
/// live store/index/ledger without cloning any sketch. Byte-identical to
/// the derived [`PlatformSnapshot`] encoding (pinned by a test).
pub struct PlatformSnapshotRef<'a> {
    /// `(sketch, profile)` per dataset, name-sorted.
    pub datasets: Vec<(&'a DatasetSketch, &'a DatasetProfile)>,
    /// `(dataset, limit, spent)` ledger rows, name-sorted.
    pub ledger: &'a [(String, PrivacyBudget, PrivacyBudget)],
}

impl PlatformSnapshotRef<'_> {
    /// Encode to the snapshot payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| CoreError::Storage(format!("encode snapshot: {e}")))
    }
}

/// Serializes one keyed sketch in [`CompactKeyed`] layout straight from
/// the arena slabs, cloning nothing but the key values themselves.
struct CompactKeyedRef<'a>(&'a mileena_sketch::KeyedSketch);

impl Serialize for CompactKeyedRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        use mileena_relation::KeyValue;
        use mileena_semiring::GroupedArena;

        let arena = self.0.arena();
        // Sorted by key *value* so snapshot bytes are process-independent
        // (arena row order follows interner-id assignment order).
        let sorted = arena.sorted_keys();

        struct Keys<'a>(&'a [(usize, Vec<KeyValue>)]);
        impl Serialize for Keys<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for (_, key) in self.0 {
                    seq.serialize_element(key)?;
                }
                seq.end()
            }
        }
        struct Counts<'a>(&'a GroupedArena, &'a [(usize, Vec<KeyValue>)]);
        impl Serialize for Counts<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.1.len()))?;
                for (r, _) in self.1 {
                    seq.serialize_element(&self.0.row(*r).0)?;
                }
                seq.end()
            }
        }
        struct Sums<'a>(&'a GroupedArena, &'a [(usize, Vec<KeyValue>)]);
        impl Serialize for Sums<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let m = self.0.num_features();
                let mut seq = serializer.serialize_seq(Some(self.1.len() * m))?;
                for (r, _) in self.1 {
                    for v in self.0.row(*r).1 {
                        seq.serialize_element(v)?;
                    }
                }
                seq.end()
            }
        }
        struct PackedQ<'a>(&'a GroupedArena, &'a [(usize, Vec<KeyValue>)]);
        impl Serialize for PackedQ<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let m = self.0.num_features();
                let p = mileena_semiring::packed_len(m);
                let mut seq = serializer.serialize_seq(Some(self.1.len() * p))?;
                for (r, _) in self.1 {
                    // The arena row *is* the packed triangle: serialize it
                    // verbatim.
                    for v in self.0.row(*r).2 {
                        seq.serialize_element(v)?;
                    }
                }
                seq.end()
            }
        }

        let mut st = serializer.serialize_struct("CompactKeyed", 6)?;
        st.serialize_field("key_column", &self.0.key_column)?;
        st.serialize_field("features", &arena.schema())?;
        st.serialize_field("keys", &Keys(&sorted))?;
        st.serialize_field("c", &Counts(arena, &sorted))?;
        st.serialize_field("s", &Sums(arena, &sorted))?;
        st.serialize_field("qu", &PackedQ(arena, &sorted))?;
        st.end()
    }
}

/// Serializes one dataset sketch in [`CompactSketch`] layout by reference.
struct CompactSketchRef<'a>(&'a DatasetSketch);

impl Serialize for CompactSketchRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        struct KeyedList<'a>(&'a [mileena_sketch::KeyedSketch]);
        impl Serialize for KeyedList<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for keyed in self.0 {
                    seq.serialize_element(&CompactKeyedRef(keyed))?;
                }
                seq.end()
            }
        }
        let mut st = serializer.serialize_struct("CompactSketch", 6)?;
        st.serialize_field("name", &self.0.name)?;
        st.serialize_field("raw_features", &self.0.raw_features)?;
        st.serialize_field("features", &self.0.features)?;
        st.serialize_field("full", &self.0.full)?;
        st.serialize_field("keyed", &KeyedList(&self.0.keyed))?;
        st.serialize_field("row_count", &self.0.row_count)?;
        st.end()
    }
}

impl Serialize for PlatformSnapshotRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        struct EntryRef<'a>(&'a DatasetSketch, &'a DatasetProfile);
        impl Serialize for EntryRef<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut st = serializer.serialize_struct("DatasetEntry", 2)?;
                st.serialize_field("sketch", &CompactSketchRef(self.0))?;
                st.serialize_field("profile", self.1)?;
                st.end()
            }
        }
        struct Datasets<'a>(&'a [(&'a DatasetSketch, &'a DatasetProfile)]);
        impl Serialize for Datasets<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for (sketch, profile) in self.0 {
                    seq.serialize_element(&EntryRef(sketch, profile))?;
                }
                seq.end()
            }
        }
        struct LedgerRef<'a>(&'a (String, PrivacyBudget, PrivacyBudget));
        impl Serialize for LedgerRef<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut st = serializer.serialize_struct("LedgerEntry", 3)?;
                st.serialize_field("dataset", &self.0 .0)?;
                st.serialize_field("limit", &self.0 .1)?;
                st.serialize_field("spent", &self.0 .2)?;
                st.end()
            }
        }
        struct Ledger<'a>(&'a [(String, PrivacyBudget, PrivacyBudget)]);
        impl Serialize for Ledger<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for row in self.0 {
                    seq.serialize_element(&LedgerRef(row))?;
                }
                seq.end()
            }
        }
        let mut st = serializer.serialize_struct("PlatformSnapshot", 2)?;
        st.serialize_field("datasets", &Datasets(&self.datasets))?;
        st.serialize_field("ledger", &Ledger(self.ledger))?;
        st.end()
    }
}

// ---------------------------------------------------------------------------
// Snapshot format v2: binary, zero-parse slabs, per-dataset skippable blobs.
//
// Payload layout (all integers/floats little-endian):
//
// ```text
// [0x02]                                   version marker (v1 JSON is '{')
// [u32 n_datasets]
//   per dataset:
//     [u32 profile_len][profile bytes]     eager: discovery needs it at open
//     [u64 sketch_len][sketch blob]        skippable: hydrates on touch
// [u32 n_ledger]
//   per row: [str dataset][f64 ε_limit][f64 δ_limit][f64 ε_spent][f64 δ_spent]
//
// profile bytes:
//   [str name][u64 rows][u32 n_columns]
//   per column:
//     [str name][u8 type]                  0x00 = Int | 0x01 = Float | 0x02 = Str
//     [u64 distinct][u64 non_null]
//     [u32 k][raw u64 LE ...]              minhash slab, k×8 bytes
//     [f64 total][u32 n_terms] per term (term-sorted): [str term][f64 count]
//
// sketch blob:
//   [str name][strs raw_features][strs features]
//   [u32 full_len][full CovarTriple JSON]
//   [u64 row_count][u32 n_keyed]
//   per keyed:
//     [str key_column][strs features]
//     [u32 d] per key: [u32 n_values] per value:
//         0x00 = Null | 0x01 [i64] = Int | 0x02 [str] = Str
//     [u64 bytes][raw f64 LE ...]          c slab, length d
//     [u64 bytes][raw f64 LE ...]          s slab, length d·m
//     [u64 bytes][raw f64 LE ...]          qu slab, length d·m(m+1)/2
//
// str  = [u32 len][UTF-8 bytes]
// strs = [u32 count][str ...]
// ```
//
// The c/s/qu slabs — the dominant snapshot bytes — rehydrate by bulk
// `f64::from_le_bytes` copy into `GroupedArena::from_parts` with zero float
// parsing; the per-dataset `sketch_len` prefix lets the eager open skip
// every blob and index `(offset, len)` spans for lazy hydration.
// ---------------------------------------------------------------------------

/// Leading payload byte of a v2 binary snapshot (v1 JSON leads with `{`).
pub const SNAPSHOT_V2_MARKER: u8 = 0x02;

/// Leading payload byte of a delta-checkpoint payload.
pub const DELTA_MARKER: u8 = 0x03;

fn put_u32(out: &mut Vec<u8>, n: usize) -> Result<()> {
    let n = u32::try_from(n)
        .map_err(|_| CoreError::Storage(format!("snapshot section too large: {n}")))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    put_u32(out, s.len())?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_strs(out: &mut Vec<u8>, strs: &[String]) -> Result<()> {
    put_u32(out, strs.len())?;
    for s in strs {
        put_str(out, s)?;
    }
    Ok(())
}

fn put_budget(out: &mut Vec<u8>, b: &PrivacyBudget) {
    out.extend_from_slice(&b.epsilon.to_le_bytes());
    out.extend_from_slice(&b.delta.to_le_bytes());
}

/// Length-prefixed binary profile. Profiles are the *eager* half of a v2
/// snapshot — every open decodes all of them before the first search — so
/// the MinHash signatures (the dominant profile bytes) serialize as raw
/// u64 slabs instead of JSON number lists.
fn put_profile(out: &mut Vec<u8>, profile: &DatasetProfile) -> Result<()> {
    use mileena_relation::DataType;
    let mut body = Vec::new();
    put_str(&mut body, &profile.name)?;
    body.extend_from_slice(&(profile.rows as u64).to_le_bytes());
    put_u32(&mut body, profile.columns.len())?;
    for col in &profile.columns {
        put_str(&mut body, &col.name)?;
        body.push(match col.data_type {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
        });
        body.extend_from_slice(&(col.distinct as u64).to_le_bytes());
        body.extend_from_slice(&(col.non_null as u64).to_le_bytes());
        let mins = col.minhash.mins();
        put_u32(&mut body, mins.len())?;
        for m in mins {
            body.extend_from_slice(&m.to_le_bytes());
        }
        body.extend_from_slice(&col.terms.total.to_le_bytes());
        // Term-sorted: FxHashMap iteration order is not deterministic and
        // snapshot bytes must be process-independent.
        let mut terms: Vec<(&String, &f64)> = col.terms.counts.iter().collect();
        terms.sort_unstable_by(|a, b| a.0.cmp(b.0));
        put_u32(&mut body, terms.len())?;
        for (term, count) in terms {
            put_str(&mut body, term)?;
            body.extend_from_slice(&count.to_le_bytes());
        }
    }
    put_u32(out, body.len())?;
    out.extend_from_slice(&body);
    Ok(())
}

/// Inverse of [`put_profile`].
fn read_profile(r: &mut ByteReader<'_>) -> Result<DatasetProfile> {
    use mileena_discovery::{ColumnProfile, MinHashSignature, TermVector};
    use mileena_relation::{DataType, FxHashMap};
    let len = r.u32("profile")?;
    let mut pr = ByteReader::new(r.take(len, "profile")?);
    let name = pr.str_("profile name")?;
    let rows = pr.u64("profile rows")? as usize;
    let n_columns = pr.u32("profile column count")?;
    let mut columns = Vec::new();
    for _ in 0..n_columns {
        let col_name = pr.str_("column name")?;
        let data_type = match pr.u8("column type")? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Str,
            tag => return Err(CoreError::Storage(format!("unknown column type tag {tag}"))),
        };
        let distinct = pr.u64("column distinct")? as usize;
        let non_null = pr.u64("column non_null")? as usize;
        let k = pr.u32("minhash length")?;
        let raw = pr.take(
            k.checked_mul(8).ok_or_else(|| CoreError::Storage("minhash slab too large".into()))?,
            "minhash slab",
        )?;
        let mins = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let total = pr.f64("terms total")?;
        let n_terms = pr.u32("term count")?;
        let mut counts = FxHashMap::default();
        for _ in 0..n_terms {
            let term = pr.str_("term")?;
            let count = pr.f64("term weight")?;
            counts.insert(term, count);
        }
        columns.push(ColumnProfile {
            name: col_name,
            data_type,
            distinct,
            non_null,
            minhash: MinHashSignature::from_mins(mins),
            terms: TermVector { counts, total },
        });
    }
    if !pr.done() {
        return Err(CoreError::Storage("trailing bytes after profile".into()));
    }
    Ok(DatasetProfile { name, rows, columns })
}

/// Bounds-checked little-endian reader over a snapshot payload; every
/// overrun surfaces as a typed storage error, never a panic or a
/// corrupt-length allocation.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.buf.len())
            .ok_or_else(|| CoreError::Storage(format!("truncated snapshot: {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<usize> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str_(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CoreError::Storage(format!("snapshot {what} is not UTF-8: {e}")))
    }

    fn strs(&mut self, what: &str) -> Result<Vec<String>> {
        let count = self.u32(what)?;
        let mut out = Vec::new();
        for _ in 0..count {
            out.push(self.str_(what)?);
        }
        Ok(out)
    }

    fn budget(&mut self, what: &str) -> Result<PrivacyBudget> {
        Ok(PrivacyBudget { epsilon: self.f64(what)?, delta: self.f64(what)? })
    }

    /// A length-prefixed raw f64 slab: the zero-parse bulk copy.
    fn f64_slab(&mut self, what: &str) -> Result<Vec<f64>> {
        let bytes = self.u64(what)?;
        if bytes % 8 != 0 {
            return Err(CoreError::Storage(format!(
                "snapshot {what} slab is {bytes} bytes, not a multiple of 8"
            )));
        }
        let raw = self.take(bytes as usize, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_key_value(out: &mut Vec<u8>, v: &mileena_relation::KeyValue) -> Result<()> {
    use mileena_relation::KeyValue;
    match v {
        KeyValue::Null => out.push(0x00),
        KeyValue::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&i.to_le_bytes());
        }
        KeyValue::Str(s) => {
            out.push(0x02);
            put_str(out, s)?;
        }
    }
    Ok(())
}

fn read_key_value(r: &mut ByteReader<'_>) -> Result<mileena_relation::KeyValue> {
    use mileena_relation::KeyValue;
    match r.u8("key value tag")? {
        0x00 => Ok(KeyValue::Null),
        0x01 => Ok(KeyValue::Int(r.i64("int key value")?)),
        0x02 => Ok(KeyValue::Str(r.str_("str key value")?)),
        tag => Err(CoreError::Storage(format!("unknown key value tag {tag:#x}"))),
    }
}

/// Encode one dataset sketch as a v2 binary blob, straight from the live
/// arena slabs (by reference — nothing is cloned but the bytes written).
fn encode_sketch_blob(sketch: &DatasetSketch) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    put_str(&mut out, &sketch.name)?;
    put_strs(&mut out, &sketch.raw_features)?;
    put_strs(&mut out, &sketch.features)?;
    let full = serde_json::to_string(&sketch.full)
        .map_err(|e| CoreError::Storage(format!("encode full triple: {e}")))?;
    put_u32(&mut out, full.len())?;
    out.extend_from_slice(full.as_bytes());
    out.extend_from_slice(&(sketch.row_count as u64).to_le_bytes());
    put_u32(&mut out, sketch.keyed.len())?;
    for keyed in &sketch.keyed {
        let arena = keyed.arena();
        let m = arena.num_features();
        let p = mileena_semiring::packed_len(m);
        // Sorted by key *value* so snapshot bytes are process-independent
        // (arena row order follows interner-id assignment order).
        let sorted = arena.sorted_keys();
        let d = sorted.len();
        put_str(&mut out, &keyed.key_column)?;
        put_strs(&mut out, arena.schema())?;
        put_u32(&mut out, d)?;
        for (_, key) in &sorted {
            put_u32(&mut out, key.len())?;
            for v in key {
                put_key_value(&mut out, v)?;
            }
        }
        out.extend_from_slice(&((d * 8) as u64).to_le_bytes());
        for (r, _) in &sorted {
            out.extend_from_slice(&arena.row(*r).0.to_le_bytes());
        }
        out.extend_from_slice(&((d * m * 8) as u64).to_le_bytes());
        for (r, _) in &sorted {
            for v in arena.row(*r).1 {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out.extend_from_slice(&((d * p * 8) as u64).to_le_bytes());
        for (r, _) in &sorted {
            // The arena row *is* the packed triangle: write it verbatim.
            for v in arena.row(*r).2 {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// Decode one v2 sketch blob (the lazy-hydration unit).
pub fn decode_sketch_blob(bytes: &[u8]) -> Result<CompactSketch> {
    let mut r = ByteReader::new(bytes);
    let sketch = read_sketch_blob(&mut r)?;
    if !r.done() {
        return Err(CoreError::Storage("trailing bytes after sketch blob".into()));
    }
    Ok(sketch)
}

fn read_sketch_blob(r: &mut ByteReader<'_>) -> Result<CompactSketch> {
    let name = r.str_("sketch name")?;
    let raw_features = r.strs("raw features")?;
    let features = r.strs("features")?;
    let full_len = r.u32("full triple")?;
    let full_text = std::str::from_utf8(r.take(full_len, "full triple")?)
        .map_err(|e| CoreError::Storage(format!("full triple is not UTF-8: {e}")))?;
    let full: mileena_semiring::CovarTriple = serde_json::from_str(full_text)
        .map_err(|e| CoreError::Storage(format!("undecodable full triple: {e}")))?;
    let row_count = r.u64("row count")? as usize;
    let n_keyed = r.u32("keyed count")?;
    let mut keyed = Vec::new();
    for _ in 0..n_keyed {
        let key_column = r.str_("key column")?;
        let kfeatures = r.strs("keyed features")?;
        let d = r.u32("key count")?;
        let mut keys = Vec::new();
        for _ in 0..d {
            let n_values = r.u32("key width")?;
            let mut key = Vec::new();
            for _ in 0..n_values {
                key.push(read_key_value(r)?);
            }
            keys.push(key);
        }
        let c = r.f64_slab("c slab")?;
        let s = r.f64_slab("s slab")?;
        let qu = r.f64_slab("qu slab")?;
        keyed.push(CompactKeyed { key_column, features: kfeatures, keys, c, s, qu });
    }
    Ok(CompactSketch { name, raw_features, features, full, keyed, row_count })
}

/// Where one dataset's sketch bytes live in a decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchRegion {
    /// v1 JSON: the sketch came as part of the document, already
    /// materialized.
    Inline(Box<CompactSketch>),
    /// v2 binary: a skippable span of the shared payload; decode on touch.
    Span {
        /// Byte offset of the blob in the payload.
        offset: usize,
        /// Blob length in bytes.
        len: usize,
    },
}

impl SketchRegion {
    /// Materialize the compact sketch (decoding the span against the
    /// payload it was indexed from).
    pub fn materialize(self, payload: &[u8]) -> Result<CompactSketch> {
        match self {
            SketchRegion::Inline(sketch) => Ok(*sketch),
            SketchRegion::Span { offset, len } => {
                let end = offset
                    .checked_add(len)
                    .filter(|end| *end <= payload.len())
                    .ok_or_else(|| CoreError::Storage("sketch span out of bounds".into()))?;
                decode_sketch_blob(&payload[offset..end])
            }
        }
    }
}

/// One dataset's eager half in a decoded snapshot: the profile (discovery
/// hydrates immediately) plus where the sketch bytes are.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSlot {
    /// Dataset name (from the profile, so the eager pass never touches
    /// the sketch blob).
    pub name: String,
    /// The discovery profile.
    pub profile: DatasetProfile,
    /// The sketch bytes (inline for v1, a payload span for v2).
    pub sketch: SketchRegion,
}

/// The eager skeleton of a decoded snapshot: profiles and the ledger
/// materialize; sketch blobs stay as spans until touched. Decoding one of
/// these is what makes time-to-first-search independent of sketch volume.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotIndex {
    /// Every dataset, snapshot order (name-sorted at write time).
    pub datasets: Vec<DatasetSlot>,
    /// The full budget ledger.
    pub ledger: Vec<LedgerEntry>,
}

impl SnapshotIndex {
    /// Decode a snapshot payload's eager skeleton, either format version.
    /// For v1 JSON the sketches are already materialized (inline); for v2
    /// each sketch is a `(offset, len)` span into `payload`.
    pub fn decode(payload: &[u8]) -> Result<SnapshotIndex> {
        if payload.first() != Some(&SNAPSHOT_V2_MARKER) {
            let snapshot = PlatformSnapshot::decode(payload)?;
            let datasets = snapshot
                .datasets
                .into_iter()
                .map(|entry| DatasetSlot {
                    name: entry.sketch.name.clone(),
                    profile: entry.profile,
                    sketch: SketchRegion::Inline(Box::new(entry.sketch)),
                })
                .collect();
            return Ok(SnapshotIndex { datasets, ledger: snapshot.ledger });
        }
        let mut r = ByteReader::new(payload);
        r.u8("version marker")?;
        let n_datasets = r.u32("dataset count")?;
        let mut datasets = Vec::new();
        for _ in 0..n_datasets {
            let profile = read_profile(&mut r)?;
            let len = r.u64("sketch blob")? as usize;
            let offset = r.pos;
            r.take(len, "sketch blob")?;
            datasets.push(DatasetSlot {
                name: profile.name.clone(),
                profile,
                sketch: SketchRegion::Span { offset, len },
            });
        }
        let n_ledger = r.u32("ledger count")?;
        let mut ledger = Vec::new();
        for _ in 0..n_ledger {
            let dataset = r.str_("ledger dataset")?;
            let limit = r.budget("ledger limit")?;
            let spent = r.budget("ledger spent")?;
            ledger.push(LedgerEntry { dataset, limit, spent });
        }
        if !r.done() {
            return Err(CoreError::Storage("trailing bytes after snapshot".into()));
        }
        Ok(SnapshotIndex { datasets, ledger })
    }
}

impl PlatformSnapshotRef<'_> {
    /// Encode to the v2 binary payload (the checkpoint writer's format;
    /// [`encode`](Self::encode) keeps producing v1 JSON for the
    /// format-evolution pin tests).
    pub fn encode_binary(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        out.push(SNAPSHOT_V2_MARKER);
        put_u32(&mut out, self.datasets.len())?;
        for (sketch, profile) in &self.datasets {
            put_profile(&mut out, profile)?;
            let blob = encode_sketch_blob(sketch)?;
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        put_u32(&mut out, self.ledger.len())?;
        for (dataset, limit, spent) in self.ledger {
            put_str(&mut out, dataset)?;
            put_budget(&mut out, limit);
            put_budget(&mut out, spent);
        }
        Ok(out)
    }
}

/// A decoded delta-checkpoint payload: only what changed since the base.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPayload {
    /// Datasets registered or replaced since the base (full entries).
    pub datasets: Vec<DatasetEntry>,
    /// Dataset names removed since the base.
    pub removed: Vec<String>,
    /// Ledger rows that changed since the base (full rows, keyed by name).
    pub ledger: Vec<LedgerEntry>,
}

impl DeltaPayload {
    /// Decode a delta payload (leading [`DELTA_MARKER`] byte). Deltas are
    /// small — everything materializes eagerly.
    pub fn decode(payload: &[u8]) -> Result<DeltaPayload> {
        let mut r = ByteReader::new(payload);
        if r.u8("delta marker")? != DELTA_MARKER {
            return Err(CoreError::Storage("not a delta payload".into()));
        }
        let n_datasets = r.u32("delta dataset count")?;
        let mut datasets = Vec::new();
        for _ in 0..n_datasets {
            let profile = read_profile(&mut r)?;
            let len = r.u64("delta sketch blob")? as usize;
            let sketch = decode_sketch_blob(r.take(len, "delta sketch blob")?)?;
            datasets.push(DatasetEntry { sketch, profile });
        }
        let removed = r.strs("delta removed")?;
        let n_ledger = r.u32("delta ledger count")?;
        let mut ledger = Vec::new();
        for _ in 0..n_ledger {
            let dataset = r.str_("delta ledger dataset")?;
            let limit = r.budget("delta ledger limit")?;
            let spent = r.budget("delta ledger spent")?;
            ledger.push(LedgerEntry { dataset, limit, spent });
        }
        if !r.done() {
            return Err(CoreError::Storage("trailing bytes after delta".into()));
        }
        Ok(DeltaPayload { datasets, removed, ledger })
    }
}

/// Borrowed delta writer: serializes the changed subset straight from the
/// live store, same dataset-entry layout as the v2 snapshot body.
pub struct DeltaPayloadRef<'a> {
    /// `(sketch, profile)` per changed dataset, name-sorted.
    pub datasets: Vec<(&'a DatasetSketch, &'a DatasetProfile)>,
    /// Names removed since the base, sorted.
    pub removed: &'a [String],
    /// Changed ledger rows, name-sorted.
    pub ledger: &'a [(String, PrivacyBudget, PrivacyBudget)],
}

impl DeltaPayloadRef<'_> {
    /// Encode to the delta payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        out.push(DELTA_MARKER);
        put_u32(&mut out, self.datasets.len())?;
        for (sketch, profile) in &self.datasets {
            put_profile(&mut out, profile)?;
            let blob = encode_sketch_blob(sketch)?;
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        put_strs(&mut out, self.removed)?;
        put_u32(&mut out, self.ledger.len())?;
        for (dataset, limit, spent) in self.ledger {
            put_str(&mut out, dataset)?;
            put_budget(&mut out, limit);
            put_budget(&mut out, spent);
        }
        Ok(out)
    }
}

/// What recovery found on disk, surfaced through `stats()` so operators can
/// see whether the last shutdown was clean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Sequence covered by the snapshot recovery started from.
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// A torn final record was truncated away (crash mid-append).
    pub torn_tail: bool,
    /// Snapshot files skipped for failing verification.
    pub invalid_snapshots: u64,
    /// Snapshot payload bytes read at open (base plus delta chain).
    #[serde(default)]
    pub snapshot_bytes: u64,
    /// Delta-checkpoint links applied on top of the base snapshot.
    #[serde(default)]
    pub delta_links: u64,
    /// Milliseconds spent in the eager open phase (snapshot skeleton,
    /// deltas, replay, index rebuild) before the platform served traffic.
    #[serde(default)]
    pub eager_ms: u64,
    /// Milliseconds of the eager phase spent replaying WAL records.
    #[serde(default)]
    pub replay_ms: u64,
    /// Datasets left unhydrated at open (lazy sketch slots; drains via
    /// evaluation touches and the background hydrator).
    #[serde(default)]
    pub lazy_datasets: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalDataStore;
    use mileena_relation::RelationBuilder;

    fn upload() -> ProviderUpload {
        let r = RelationBuilder::new("d")
            .int_col("k", &[1, 2, 3])
            .float_col("x", &[0.5, 1.5, 2.5])
            .build()
            .unwrap();
        LocalDataStore::new(r)
            .prepare_upload(Some(PrivacyBudget::new(1.0, 1e-6).unwrap()), 3)
            .unwrap()
    }

    #[test]
    fn wal_op_roundtrip() {
        let ops = vec![
            WalOp::Register { upload: upload() },
            WalOp::Remove { dataset: "d".into() },
            WalOp::Charge { dataset: "d".into(), cost: PrivacyBudget::new(0.5, 0.0).unwrap() },
        ];
        for op in ops {
            let json = serde_json::to_string(&op).unwrap();
            let back = WalOp::decode(json.as_bytes()).unwrap();
            assert_eq!(op, back);
        }
    }

    #[test]
    fn borrowed_wal_encoding_matches_owned() {
        let u = upload();
        let cases = vec![
            (WalOpRef::Register { upload: &u }, WalOp::Register { upload: u.clone() }),
            (WalOpRef::Replace { upload: &u }, WalOp::Replace { upload: u.clone() }),
            (WalOpRef::Remove { dataset: "d" }, WalOp::Remove { dataset: "d".into() }),
            (
                WalOpRef::Grant { dataset: "d", budget: PrivacyBudget::new(2.0, 1e-7).unwrap() },
                WalOp::Grant {
                    dataset: "d".into(),
                    budget: PrivacyBudget::new(2.0, 1e-7).unwrap(),
                },
            ),
            (
                WalOpRef::Charge { dataset: "d", cost: PrivacyBudget::new(0.25, 1e-9).unwrap() },
                WalOp::Charge {
                    dataset: "d".into(),
                    cost: PrivacyBudget::new(0.25, 1e-9).unwrap(),
                },
            ),
        ];
        for (by_ref, owned) in cases {
            assert_eq!(
                String::from_utf8(by_ref.encode().unwrap()).unwrap(),
                serde_json::to_string(&owned).unwrap(),
            );
        }
    }

    #[test]
    fn borrowed_snapshot_encoding_matches_owned() {
        let u = upload();
        let ledger = vec![(
            "d".to_string(),
            PrivacyBudget::new(1.0, 1e-6).unwrap(),
            PrivacyBudget::new(1.0, 1e-6).unwrap(),
        )];
        let by_ref =
            PlatformSnapshotRef { datasets: vec![(&u.sketch, &u.profile)], ledger: &ledger };
        let owned = PlatformSnapshot {
            datasets: vec![DatasetEntry {
                sketch: CompactSketch::of(&u.sketch),
                profile: u.profile.clone(),
            }],
            ledger: vec![LedgerEntry {
                dataset: "d".into(),
                limit: ledger[0].1,
                spent: ledger[0].2,
            }],
        };
        let bytes = by_ref.encode().unwrap();
        assert_eq!(
            String::from_utf8(bytes.clone()).unwrap(),
            serde_json::to_string(&owned).unwrap(),
        );
        let decoded = PlatformSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, owned);
    }

    #[test]
    fn compact_sketch_roundtrips_bit_identically() {
        // Compaction (schema once + packed symmetric q) must lose nothing:
        // rehydration reproduces the exact sketch, including a privatized
        // one whose q carries correlated noise.
        let u = upload();
        let back = CompactSketch::of(&u.sketch).into_sketch().unwrap();
        assert_eq!(u.sketch, back);

        // Compact form is strictly smaller than the wire form for keyed
        // sketches (the point of having it).
        let compact = serde_json::to_string(&CompactSketch::of(&u.sketch)).unwrap();
        let wire = serde_json::to_string(&u.sketch).unwrap();
        assert!(compact.len() < wire.len(), "{} !< {}", compact.len(), wire.len());
    }

    #[test]
    fn compact_sketch_rejects_sheared_slabs() {
        let mut compact = CompactSketch::of(&upload().sketch);
        compact.keyed[0].qu.pop();
        assert!(compact.into_sketch().is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalOp::decode(b"{ nope").is_err());
        assert!(WalOp::decode(&[0xFF, 0xFE]).is_err());
        assert!(PlatformSnapshot::decode(b"[]").is_err());
        assert!(PlatformSnapshot::decode(&[SNAPSHOT_V2_MARKER]).is_err());
        assert!(DeltaPayload::decode(&[DELTA_MARKER, 0xFF]).is_err());
        assert!(DeltaPayload::decode(b"{}").is_err());
    }

    fn second_upload() -> ProviderUpload {
        let r = RelationBuilder::new("e")
            .int_col("k", &[2, 3, 5, 5])
            .str_col("city", &["ny", "sf", "ny", "la"])
            .float_col("y", &[4.0, -1.25, 0.0, 9.5])
            .build()
            .unwrap();
        LocalDataStore::new(r).prepare_upload(None, 4).unwrap()
    }

    fn reference_snapshot() -> (PlatformSnapshotRef<'static>, PlatformSnapshot) {
        let u = Box::leak(Box::new(upload()));
        let v = Box::leak(Box::new(second_upload()));
        let ledger = Box::leak(Box::new(vec![(
            "d".to_string(),
            PrivacyBudget::new(1.0, 1e-6).unwrap(),
            PrivacyBudget::new(0.25, 1e-7).unwrap(),
        )]));
        let by_ref = PlatformSnapshotRef {
            datasets: vec![(&u.sketch, &u.profile), (&v.sketch, &v.profile)],
            ledger,
        };
        let owned = PlatformSnapshot {
            datasets: vec![
                DatasetEntry { sketch: CompactSketch::of(&u.sketch), profile: u.profile.clone() },
                DatasetEntry { sketch: CompactSketch::of(&v.sketch), profile: v.profile.clone() },
            ],
            ledger: vec![LedgerEntry {
                dataset: "d".into(),
                limit: ledger[0].1,
                spent: ledger[0].2,
            }],
        };
        (by_ref, owned)
    }

    #[test]
    fn binary_snapshot_roundtrips_bit_identically() {
        let (by_ref, owned) = reference_snapshot();
        let bytes = by_ref.encode_binary().unwrap();
        assert_eq!(bytes[0], SNAPSHOT_V2_MARKER);
        // Full decode is value-identical to the v1 path over the same state.
        let decoded = PlatformSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, owned);
        // The rehydrated sketches are bit-identical to the originals (the
        // raw-f64 slabs round-trip with zero parsing).
        for (entry, (sketch, _)) in decoded.datasets.into_iter().zip(&by_ref.datasets) {
            assert_eq!(&entry.sketch.into_sketch().unwrap(), *sketch);
        }
    }

    #[test]
    fn snapshot_index_spans_hydrate_independently() {
        let (by_ref, owned) = reference_snapshot();
        let bytes = by_ref.encode_binary().unwrap();
        let index = SnapshotIndex::decode(&bytes).unwrap();
        assert_eq!(index.datasets.len(), 2);
        assert_eq!(index.ledger, owned.ledger);
        for (slot, entry) in index.datasets.into_iter().zip(owned.datasets) {
            assert_eq!(slot.name, entry.profile.name);
            assert_eq!(slot.profile, entry.profile);
            assert!(matches!(slot.sketch, SketchRegion::Span { .. }));
            assert_eq!(slot.sketch.materialize(&bytes).unwrap(), entry.sketch);
        }
        // The v1 JSON form indexes too (inline, already materialized).
        let v1 = by_ref.encode().unwrap();
        let index = SnapshotIndex::decode(&v1).unwrap();
        assert!(index.datasets.iter().all(|s| matches!(s.sketch, SketchRegion::Inline(_))));
    }

    #[test]
    fn binary_snapshot_rejects_every_truncation() {
        let (by_ref, _) = reference_snapshot();
        let bytes = by_ref.encode_binary().unwrap();
        for len in 0..bytes.len() {
            assert!(
                PlatformSnapshot::decode(&bytes[..len]).is_err(),
                "prefix of {len}/{} bytes decoded",
                bytes.len()
            );
        }
        // Trailing garbage is rejected too, not silently ignored.
        let mut padded = bytes;
        padded.push(0x00);
        assert!(PlatformSnapshot::decode(&padded).is_err());
    }

    #[test]
    fn delta_payload_roundtrips() {
        let u = upload();
        let removed = vec!["gone".to_string()];
        let ledger = vec![(
            "d".to_string(),
            PrivacyBudget::new(1.0, 1e-6).unwrap(),
            PrivacyBudget::new(0.5, 0.0).unwrap(),
        )];
        let bytes = DeltaPayloadRef {
            datasets: vec![(&u.sketch, &u.profile)],
            removed: &removed,
            ledger: &ledger,
        }
        .encode()
        .unwrap();
        assert_eq!(bytes[0], DELTA_MARKER);
        let decoded = DeltaPayload::decode(&bytes).unwrap();
        assert_eq!(decoded.removed, removed);
        assert_eq!(decoded.datasets.len(), 1);
        assert_eq!(decoded.datasets[0].profile, u.profile);
        assert_eq!(decoded.datasets[0].sketch.clone().into_sketch().unwrap(), u.sketch);
        assert_eq!(
            decoded.ledger,
            vec![LedgerEntry { dataset: "d".into(), limit: ledger[0].1, spent: ledger[0].2 }]
        );
        for len in 0..bytes.len() {
            assert!(DeltaPayload::decode(&bytes[..len]).is_err());
        }
    }
}
