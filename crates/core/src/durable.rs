//! Durable platform state: the semantic encoding layered over
//! `mileena-storage`'s payload-agnostic WAL + snapshot engine.
//!
//! Two payload families exist, both JSON (the workspace's one
//! deterministic, versioned serialization format):
//!
//! - **WAL records** — one [`WalOp`] per platform mutation (sketch
//!   register/replace/remove, budget charge), journaled *before* the
//!   in-memory state mutates. Replay after a crash re-applies exactly the
//!   records past the last snapshot, in sequence order, so an acknowledged
//!   mutation is never lost and a budget charge is never double-counted.
//! - **Snapshots** — the complete [`PlatformSnapshot`]: every sketch with
//!   its discovery profile, plus the full budget ledger (limits *and*
//!   spent amounts — the ledger, not the sketches, is what the DP
//!   guarantee makes mandatory to persist).
//!
//! Both have by-reference serializers ([`WalOpRef`],
//! [`PlatformSnapshotRef`]) so journaling and checkpointing never deep-copy
//! sketch slabs; byte-equivalence with the derived owned forms is pinned by
//! tests below.

use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use mileena_discovery::DatasetProfile;
use mileena_privacy::PrivacyBudget;
use mileena_sketch::DatasetSketch;
use serde::ser::{SerializeSeq, SerializeStruct, Serializer};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Where and how the platform persists its state.
#[derive(Debug, Clone)]
pub struct StoragePolicy {
    /// Directory holding the WAL segments and snapshots.
    pub dir: PathBuf,
    /// Auto-checkpoint after this many journaled records (0 = checkpoint
    /// only on explicit `PlatformService::checkpoint` calls).
    pub checkpoint_every: u64,
    /// `fsync` every append (power-loss durable) vs flush-to-OS only
    /// (process-crash durable).
    pub fsync_appends: bool,
    /// Snapshots to retain; ≥ 2 lets recovery survive a corrupted newest
    /// snapshot by falling back one checkpoint.
    pub retain_snapshots: usize,
    /// Chaos hook: deterministic fault plan rolled at the storage-engine
    /// sites (WAL append/fsync, snapshot write). `None` in production.
    pub faults: Option<std::sync::Arc<mileena_storage::FaultPlan>>,
}

impl StoragePolicy {
    /// Default policy rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoragePolicy {
            dir: dir.into(),
            checkpoint_every: 256,
            fsync_appends: false,
            retain_snapshots: 2,
            faults: None,
        }
    }
}

/// One journaled platform mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// A provider upload entered the corpus (sketch + profile + optional
    /// budget registration-and-charge).
    Register {
        /// The full upload bundle.
        upload: ProviderUpload,
    },
    /// A provider re-upload replaced an existing dataset; a budget on the
    /// upload adds to the dataset's cumulative privacy loss.
    Replace {
        /// The replacement upload bundle.
        upload: ProviderUpload,
    },
    /// A dataset left the corpus. Its ledger entry survives — spent budget
    /// is spent forever.
    Remove {
        /// Dataset name.
        dataset: String,
    },
    /// Budget headroom was granted to a dataset without being charged
    /// (the APM-style flow: releases draw it down per query).
    Grant {
        /// Dataset name.
        dataset: String,
        /// The (ε, δ) granted.
        budget: PrivacyBudget,
    },
    /// A release was charged against a dataset's budget.
    Charge {
        /// Dataset name.
        dataset: String,
        /// The (ε, δ) cost.
        cost: PrivacyBudget,
    },
}

impl WalOp {
    /// Decode a journaled record payload.
    pub fn decode(payload: &[u8]) -> Result<WalOp> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| CoreError::Storage(format!("wal record is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Storage(format!("undecodable wal record: {e}")))
    }
}

/// Borrowed form of [`WalOp`] — what the live mutation path journals, so a
/// provider upload is never cloned just to hit the log. Serializes
/// byte-identically to the derived owned form (pinned by a test).
#[derive(Debug, Clone, Copy)]
pub enum WalOpRef<'a> {
    /// See [`WalOp::Register`].
    Register {
        /// The upload being journaled.
        upload: &'a ProviderUpload,
    },
    /// See [`WalOp::Replace`].
    Replace {
        /// The replacement upload being journaled.
        upload: &'a ProviderUpload,
    },
    /// See [`WalOp::Remove`].
    Remove {
        /// Dataset name.
        dataset: &'a str,
    },
    /// See [`WalOp::Grant`].
    Grant {
        /// Dataset name.
        dataset: &'a str,
        /// The (ε, δ) granted.
        budget: PrivacyBudget,
    },
    /// See [`WalOp::Charge`].
    Charge {
        /// Dataset name.
        dataset: &'a str,
        /// The (ε, δ) cost.
        cost: PrivacyBudget,
    },
}

impl WalOpRef<'_> {
    /// Encode to the journal payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| CoreError::Storage(format!("encode wal record: {e}")))
    }
}

impl Serialize for WalOpRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        match self {
            WalOpRef::Register { upload } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Register", 1)?;
                sv.serialize_field("upload", upload)?;
                sv.end()
            }
            WalOpRef::Replace { upload } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Replace", 1)?;
                sv.serialize_field("upload", upload)?;
                sv.end()
            }
            WalOpRef::Remove { dataset } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Remove", 1)?;
                sv.serialize_field("dataset", dataset)?;
                sv.end()
            }
            WalOpRef::Grant { dataset, budget } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Grant", 2)?;
                sv.serialize_field("dataset", dataset)?;
                sv.serialize_field("budget", budget)?;
                sv.end()
            }
            WalOpRef::Charge { dataset, cost } => {
                let mut sv = serializer.serialize_struct_variant("WalOp", "Charge", 2)?;
                sv.serialize_field("dataset", dataset)?;
                sv.serialize_field("cost", cost)?;
                sv.end()
            }
        }
    }
}

/// Snapshot-only compact form of a keyed sketch: the feature schema
/// written **once** (the wire format repeats it per key — fine for
/// per-upload payloads, ruinous for a full-corpus snapshot), parallel
/// row slabs straight from the arena, and the symmetric `q` matrix packed
/// as its upper triangle (`m(m+1)/2` of `m²` entries). Since the arena
/// itself stores the packed triangle, this layout is now a **by-reference
/// identity** over the slabs: compaction copies rows verbatim (key-sorted)
/// and rehydration hands `qu` straight to `GroupedArena::from_parts` with
/// no repacking pass in either direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactKeyed {
    /// The join-key column.
    pub key_column: String,
    /// Shared feature schema (once, not per key).
    pub features: Vec<String>,
    /// Key values, one per row, in sorted key order.
    pub keys: Vec<Vec<mileena_relation::KeyValue>>,
    /// Row counts, length `d`.
    pub c: Vec<f64>,
    /// Feature sums, length `d·m`, row-major.
    pub s: Vec<f64>,
    /// Packed upper triangles of the symmetric `q`, length `d·m(m+1)/2` —
    /// the arena's own storage layout.
    pub qu: Vec<f64>,
}

impl CompactKeyed {
    /// Compact a keyed sketch (owned path, used by tests; the checkpoint
    /// writer serializes by reference instead).
    pub fn of(keyed: &mileena_sketch::KeyedSketch) -> CompactKeyed {
        let arena = keyed.arena();
        let m = arena.num_features();
        let sorted = arena.sorted_keys();
        let mut keys = Vec::with_capacity(sorted.len());
        let mut c = Vec::with_capacity(sorted.len());
        let mut s = Vec::with_capacity(sorted.len() * m);
        let mut qu = Vec::with_capacity(sorted.len() * mileena_semiring::packed_len(m));
        for (r, key) in sorted {
            let (rc, rs, rq) = arena.row(r);
            keys.push(key);
            c.push(rc);
            s.extend_from_slice(rs);
            qu.extend_from_slice(rq);
        }
        CompactKeyed {
            key_column: keyed.key_column.clone(),
            features: arena.schema().to_vec(),
            keys,
            c,
            s,
            qu,
        }
    }

    /// Rehydrate into an arena-backed keyed sketch on the global key space
    /// (the store re-interns on registration when it uses an isolated one).
    /// Slab lengths are validated by `GroupedArena::from_parts` — sheared
    /// slabs surface as a typed storage error, never a panic.
    pub fn into_keyed(self) -> Result<mileena_sketch::KeyedSketch> {
        let arena = mileena_semiring::GroupedArena::from_parts(
            self.features,
            self.keys,
            self.c,
            self.s,
            self.qu,
            mileena_semiring::KeyInterner::global(),
        )
        .map_err(|e| CoreError::Storage(format!("compact sketch: {e}")))?;
        Ok(mileena_sketch::KeyedSketch::from_arena(self.key_column, arena))
    }
}

/// Snapshot-only compact form of a full dataset sketch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactSketch {
    /// Dataset name.
    pub name: String,
    /// Original (unqualified) feature names.
    pub raw_features: Vec<String>,
    /// Qualified feature names.
    pub features: Vec<String>,
    /// The full (non-keyed) triple.
    pub full: mileena_semiring::CovarTriple,
    /// Compact keyed sketches.
    pub keyed: Vec<CompactKeyed>,
    /// Source row count.
    pub row_count: usize,
}

impl CompactSketch {
    /// Compact a dataset sketch (owned path; see [`CompactKeyed::of`]).
    pub fn of(sketch: &DatasetSketch) -> CompactSketch {
        CompactSketch {
            name: sketch.name.clone(),
            raw_features: sketch.raw_features.clone(),
            features: sketch.features.clone(),
            full: sketch.full.clone(),
            keyed: sketch.keyed.iter().map(CompactKeyed::of).collect(),
            row_count: sketch.row_count,
        }
    }

    /// Rehydrate the full dataset sketch.
    pub fn into_sketch(self) -> Result<DatasetSketch> {
        let keyed: Result<Vec<_>> = self.keyed.into_iter().map(CompactKeyed::into_keyed).collect();
        Ok(DatasetSketch {
            name: self.name,
            raw_features: self.raw_features,
            features: self.features,
            full: self.full,
            keyed: keyed?,
            row_count: self.row_count,
        })
    }
}

/// One dataset in a snapshot: its sketches (compact form) plus the
/// discovery profile the index is rebuilt from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// The dataset's compact sketch bundle.
    pub sketch: CompactSketch,
    /// Its discovery profile.
    pub profile: DatasetProfile,
}

/// One budget-ledger row: cumulative limit and spend for a dataset name —
/// retained even after the dataset is removed (spent budget is permanent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Dataset name.
    pub dataset: String,
    /// Total budget granted across all releases.
    pub limit: PrivacyBudget,
    /// Budget consumed so far.
    pub spent: PrivacyBudget,
}

/// The platform's complete durable state as of one WAL sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSnapshot {
    /// Every registered dataset, name-sorted (store iteration order).
    pub datasets: Vec<DatasetEntry>,
    /// The full budget ledger, name-sorted.
    pub ledger: Vec<LedgerEntry>,
}

impl PlatformSnapshot {
    /// Decode a snapshot payload.
    pub fn decode(payload: &[u8]) -> Result<PlatformSnapshot> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| CoreError::Storage(format!("snapshot is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Storage(format!("undecodable snapshot: {e}")))
    }
}

/// Borrowed snapshot writer: checkpointing serializes straight from the
/// live store/index/ledger without cloning any sketch. Byte-identical to
/// the derived [`PlatformSnapshot`] encoding (pinned by a test).
pub struct PlatformSnapshotRef<'a> {
    /// `(sketch, profile)` per dataset, name-sorted.
    pub datasets: Vec<(&'a DatasetSketch, &'a DatasetProfile)>,
    /// `(dataset, limit, spent)` ledger rows, name-sorted.
    pub ledger: &'a [(String, PrivacyBudget, PrivacyBudget)],
}

impl PlatformSnapshotRef<'_> {
    /// Encode to the snapshot payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| CoreError::Storage(format!("encode snapshot: {e}")))
    }
}

/// Serializes one keyed sketch in [`CompactKeyed`] layout straight from
/// the arena slabs, cloning nothing but the key values themselves.
struct CompactKeyedRef<'a>(&'a mileena_sketch::KeyedSketch);

impl Serialize for CompactKeyedRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        use mileena_relation::KeyValue;
        use mileena_semiring::GroupedArena;

        let arena = self.0.arena();
        // Sorted by key *value* so snapshot bytes are process-independent
        // (arena row order follows interner-id assignment order).
        let sorted = arena.sorted_keys();

        struct Keys<'a>(&'a [(usize, Vec<KeyValue>)]);
        impl Serialize for Keys<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for (_, key) in self.0 {
                    seq.serialize_element(key)?;
                }
                seq.end()
            }
        }
        struct Counts<'a>(&'a GroupedArena, &'a [(usize, Vec<KeyValue>)]);
        impl Serialize for Counts<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.1.len()))?;
                for (r, _) in self.1 {
                    seq.serialize_element(&self.0.row(*r).0)?;
                }
                seq.end()
            }
        }
        struct Sums<'a>(&'a GroupedArena, &'a [(usize, Vec<KeyValue>)]);
        impl Serialize for Sums<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let m = self.0.num_features();
                let mut seq = serializer.serialize_seq(Some(self.1.len() * m))?;
                for (r, _) in self.1 {
                    for v in self.0.row(*r).1 {
                        seq.serialize_element(v)?;
                    }
                }
                seq.end()
            }
        }
        struct PackedQ<'a>(&'a GroupedArena, &'a [(usize, Vec<KeyValue>)]);
        impl Serialize for PackedQ<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let m = self.0.num_features();
                let p = mileena_semiring::packed_len(m);
                let mut seq = serializer.serialize_seq(Some(self.1.len() * p))?;
                for (r, _) in self.1 {
                    // The arena row *is* the packed triangle: serialize it
                    // verbatim.
                    for v in self.0.row(*r).2 {
                        seq.serialize_element(v)?;
                    }
                }
                seq.end()
            }
        }

        let mut st = serializer.serialize_struct("CompactKeyed", 6)?;
        st.serialize_field("key_column", &self.0.key_column)?;
        st.serialize_field("features", &arena.schema())?;
        st.serialize_field("keys", &Keys(&sorted))?;
        st.serialize_field("c", &Counts(arena, &sorted))?;
        st.serialize_field("s", &Sums(arena, &sorted))?;
        st.serialize_field("qu", &PackedQ(arena, &sorted))?;
        st.end()
    }
}

/// Serializes one dataset sketch in [`CompactSketch`] layout by reference.
struct CompactSketchRef<'a>(&'a DatasetSketch);

impl Serialize for CompactSketchRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        struct KeyedList<'a>(&'a [mileena_sketch::KeyedSketch]);
        impl Serialize for KeyedList<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for keyed in self.0 {
                    seq.serialize_element(&CompactKeyedRef(keyed))?;
                }
                seq.end()
            }
        }
        let mut st = serializer.serialize_struct("CompactSketch", 6)?;
        st.serialize_field("name", &self.0.name)?;
        st.serialize_field("raw_features", &self.0.raw_features)?;
        st.serialize_field("features", &self.0.features)?;
        st.serialize_field("full", &self.0.full)?;
        st.serialize_field("keyed", &KeyedList(&self.0.keyed))?;
        st.serialize_field("row_count", &self.0.row_count)?;
        st.end()
    }
}

impl Serialize for PlatformSnapshotRef<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        struct EntryRef<'a>(&'a DatasetSketch, &'a DatasetProfile);
        impl Serialize for EntryRef<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut st = serializer.serialize_struct("DatasetEntry", 2)?;
                st.serialize_field("sketch", &CompactSketchRef(self.0))?;
                st.serialize_field("profile", self.1)?;
                st.end()
            }
        }
        struct Datasets<'a>(&'a [(&'a DatasetSketch, &'a DatasetProfile)]);
        impl Serialize for Datasets<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for (sketch, profile) in self.0 {
                    seq.serialize_element(&EntryRef(sketch, profile))?;
                }
                seq.end()
            }
        }
        struct LedgerRef<'a>(&'a (String, PrivacyBudget, PrivacyBudget));
        impl Serialize for LedgerRef<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut st = serializer.serialize_struct("LedgerEntry", 3)?;
                st.serialize_field("dataset", &self.0 .0)?;
                st.serialize_field("limit", &self.0 .1)?;
                st.serialize_field("spent", &self.0 .2)?;
                st.end()
            }
        }
        struct Ledger<'a>(&'a [(String, PrivacyBudget, PrivacyBudget)]);
        impl Serialize for Ledger<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for row in self.0 {
                    seq.serialize_element(&LedgerRef(row))?;
                }
                seq.end()
            }
        }
        let mut st = serializer.serialize_struct("PlatformSnapshot", 2)?;
        st.serialize_field("datasets", &Datasets(&self.datasets))?;
        st.serialize_field("ledger", &Ledger(self.ledger))?;
        st.end()
    }
}

/// What recovery found on disk, surfaced through `stats()` so operators can
/// see whether the last shutdown was clean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Sequence covered by the snapshot recovery started from.
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// A torn final record was truncated away (crash mid-append).
    pub torn_tail: bool,
    /// Snapshot files skipped for failing verification.
    pub invalid_snapshots: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalDataStore;
    use mileena_relation::RelationBuilder;

    fn upload() -> ProviderUpload {
        let r = RelationBuilder::new("d")
            .int_col("k", &[1, 2, 3])
            .float_col("x", &[0.5, 1.5, 2.5])
            .build()
            .unwrap();
        LocalDataStore::new(r)
            .prepare_upload(Some(PrivacyBudget::new(1.0, 1e-6).unwrap()), 3)
            .unwrap()
    }

    #[test]
    fn wal_op_roundtrip() {
        let ops = vec![
            WalOp::Register { upload: upload() },
            WalOp::Remove { dataset: "d".into() },
            WalOp::Charge { dataset: "d".into(), cost: PrivacyBudget::new(0.5, 0.0).unwrap() },
        ];
        for op in ops {
            let json = serde_json::to_string(&op).unwrap();
            let back = WalOp::decode(json.as_bytes()).unwrap();
            assert_eq!(op, back);
        }
    }

    #[test]
    fn borrowed_wal_encoding_matches_owned() {
        let u = upload();
        let cases = vec![
            (WalOpRef::Register { upload: &u }, WalOp::Register { upload: u.clone() }),
            (WalOpRef::Replace { upload: &u }, WalOp::Replace { upload: u.clone() }),
            (WalOpRef::Remove { dataset: "d" }, WalOp::Remove { dataset: "d".into() }),
            (
                WalOpRef::Grant { dataset: "d", budget: PrivacyBudget::new(2.0, 1e-7).unwrap() },
                WalOp::Grant {
                    dataset: "d".into(),
                    budget: PrivacyBudget::new(2.0, 1e-7).unwrap(),
                },
            ),
            (
                WalOpRef::Charge { dataset: "d", cost: PrivacyBudget::new(0.25, 1e-9).unwrap() },
                WalOp::Charge {
                    dataset: "d".into(),
                    cost: PrivacyBudget::new(0.25, 1e-9).unwrap(),
                },
            ),
        ];
        for (by_ref, owned) in cases {
            assert_eq!(
                String::from_utf8(by_ref.encode().unwrap()).unwrap(),
                serde_json::to_string(&owned).unwrap(),
            );
        }
    }

    #[test]
    fn borrowed_snapshot_encoding_matches_owned() {
        let u = upload();
        let ledger = vec![(
            "d".to_string(),
            PrivacyBudget::new(1.0, 1e-6).unwrap(),
            PrivacyBudget::new(1.0, 1e-6).unwrap(),
        )];
        let by_ref =
            PlatformSnapshotRef { datasets: vec![(&u.sketch, &u.profile)], ledger: &ledger };
        let owned = PlatformSnapshot {
            datasets: vec![DatasetEntry {
                sketch: CompactSketch::of(&u.sketch),
                profile: u.profile.clone(),
            }],
            ledger: vec![LedgerEntry {
                dataset: "d".into(),
                limit: ledger[0].1,
                spent: ledger[0].2,
            }],
        };
        let bytes = by_ref.encode().unwrap();
        assert_eq!(
            String::from_utf8(bytes.clone()).unwrap(),
            serde_json::to_string(&owned).unwrap(),
        );
        let decoded = PlatformSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, owned);
    }

    #[test]
    fn compact_sketch_roundtrips_bit_identically() {
        // Compaction (schema once + packed symmetric q) must lose nothing:
        // rehydration reproduces the exact sketch, including a privatized
        // one whose q carries correlated noise.
        let u = upload();
        let back = CompactSketch::of(&u.sketch).into_sketch().unwrap();
        assert_eq!(u.sketch, back);

        // Compact form is strictly smaller than the wire form for keyed
        // sketches (the point of having it).
        let compact = serde_json::to_string(&CompactSketch::of(&u.sketch)).unwrap();
        let wire = serde_json::to_string(&u.sketch).unwrap();
        assert!(compact.len() < wire.len(), "{} !< {}", compact.len(), wire.len());
    }

    #[test]
    fn compact_sketch_rejects_sheared_slabs() {
        let mut compact = CompactSketch::of(&upload().sketch);
        compact.keyed[0].qu.pop();
        assert!(compact.into_sketch().is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalOp::decode(b"{ nope").is_err());
        assert!(WalOp::decode(&[0xFF, 0xFE]).is_err());
        assert!(PlatformSnapshot::decode(b"[]").is_err());
    }
}
