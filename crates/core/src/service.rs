//! The platform service boundary: one trait, two transports.
//!
//! [`PlatformService`] is the versioned API every deployment shape serves:
//! register provider uploads, submit sketched searches, stream progress.
//! Two transports implement it against the same [`CentralPlatform`]:
//!
//! - [`InProcess`] — direct calls, for co-located/embedded deployments and
//!   as the reference the wire path must match bit for bit;
//! - [`JsonWire`] — every request, event, and response round-trips through
//!   the versioned JSON protocol of [`crate::wire`], exactly as an HTTP or
//!   socket frontend would ship it. No raw relation can cross: the request
//!   body type is [`SketchedRequest`].
//!
//! `submit` returns a [`SearchSession`]: a handle streaming per-round
//! [`SearchEvent`]s, supporting cooperative cancellation, and yielding the
//! final [`SearchReply`]. Sessions run on worker threads, so N requesters
//! search concurrently against consistent corpus snapshots.

use crate::error::{CoreError, Result};
use crate::local::ProviderUpload;
use crate::platform::CentralPlatform;
use crate::wire::{
    AdminOp, AdminReply, CheckpointReceipt, ErrorCode, PlatformStats, RegisterReceipt, SearchReply,
    WireAdminRequest, WireAdminResponse, WireEvent, WireRegisterRequest, WireRegisterResponse,
    WireSearchRequest, WireSearchResponse, WIRE_VERSION,
};
use mileena_obs::{Metrics, MetricsReport};
use mileena_search::{SearchConfig, SearchControl, SearchEvent, SketchedRequest};
use std::sync::mpsc;
use std::sync::Arc;

/// The versioned service API of the central platform. Object-safe: hold a
/// `&dyn PlatformService` to stay transport-agnostic.
pub trait PlatformService {
    /// Register a provider upload into the corpus.
    fn register(&self, upload: ProviderUpload) -> Result<()>;

    /// Submit a sketched search; returns a live session streaming progress.
    /// `config: None` uses the platform's configured default.
    fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession>;

    /// [`PlatformService::submit`] with a caller-chosen correlation id.
    /// Wire transports carry the id in the request envelope and the server
    /// echoes it into the reply's `request_id` (and its slow-search log);
    /// the default ignores it — in-process callers correlate by session
    /// handle, so there is nothing to thread through.
    fn submit_tagged(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
        request_id: Option<u64>,
    ) -> Result<SearchSession> {
        let _ = request_id;
        self.submit(request, config)
    }

    /// Submit and block until the final reply.
    fn search(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchReply> {
        self.submit(request, config)?.wait()
    }

    /// Number of registered datasets.
    fn num_datasets(&self) -> usize;

    /// Write a full-state snapshot and compact the log (admin). Errors on
    /// volatile platforms, which have nothing to checkpoint to.
    fn checkpoint(&self) -> Result<CheckpointReceipt>;

    /// Platform + storage statistics (admin).
    fn stats(&self) -> Result<PlatformStats>;

    /// Telemetry snapshot: every counter, gauge, and latency histogram the
    /// deployment has recorded (admin).
    fn metrics(&self) -> Result<MetricsReport>;

    /// The live registry this service's platform records into, when the
    /// deployment exposes one — the TCP server uses it to record
    /// connection/frame telemetry alongside the platform's own series.
    /// `None` for client-side transports, which only see snapshots.
    fn metrics_handle(&self) -> Option<Arc<Metrics>> {
        None
    }
}

/// A live search session: consumes streamed [`SearchEvent`]s, supports
/// cooperative cancellation, and yields the final [`SearchReply`].
#[derive(Debug)]
pub struct SearchSession {
    id: u64,
    control: SearchControl,
    events: mpsc::Receiver<SearchEvent>,
    result: mpsc::Receiver<Result<SearchReply>>,
}

impl SearchSession {
    pub(crate) fn new(
        id: u64,
        control: SearchControl,
        events: mpsc::Receiver<SearchEvent>,
        result: mpsc::Receiver<Result<SearchReply>>,
    ) -> Self {
        SearchSession { id, control, events, result }
    }

    /// Platform-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's run control; clone it to cancel from another thread.
    pub fn control(&self) -> &SearchControl {
        &self.control
    }

    /// Request cooperative cancellation: the search stops at the next
    /// round boundary and the final reply reports `StopReason::Cancelled`.
    pub fn cancel(&self) {
        self.control.cancel();
    }

    /// Next streamed event, blocking; `None` once the stream ends.
    pub fn next_event(&self) -> Option<SearchEvent> {
        self.events.recv().ok()
    }

    /// Drain remaining events, then return the final reply.
    pub fn wait(self) -> Result<SearchReply> {
        self.wait_with(|_| {})
    }

    /// Like [`SearchSession::wait`], forwarding each event to `on_event`
    /// as it streams in.
    pub fn wait_with(self, mut on_event: impl FnMut(SearchEvent)) -> Result<SearchReply> {
        while let Ok(ev) = self.events.recv() {
            on_event(ev);
        }
        self.result
            .recv()
            .map_err(|_| CoreError::Service("search session worker vanished".into()))?
    }
}

/// Direct in-process transport: calls land on the platform without any
/// serialization. The reference implementation the wire path must match.
#[derive(Debug, Clone)]
pub struct InProcess {
    platform: Arc<CentralPlatform>,
}

impl InProcess {
    /// Wrap a shared platform.
    pub fn new(platform: Arc<CentralPlatform>) -> Self {
        InProcess { platform }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Arc<CentralPlatform> {
        &self.platform
    }
}

impl PlatformService for InProcess {
    fn register(&self, upload: ProviderUpload) -> Result<()> {
        self.platform.register(upload)
    }

    fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        self.platform.submit(request, config)
    }

    fn num_datasets(&self) -> usize {
        self.platform.num_datasets()
    }

    fn checkpoint(&self) -> Result<CheckpointReceipt> {
        self.platform.checkpoint()
    }

    fn stats(&self) -> Result<PlatformStats> {
        self.platform.stats()
    }

    fn metrics(&self) -> Result<MetricsReport> {
        Ok(self.platform.metrics())
    }

    fn metrics_handle(&self) -> Option<Arc<Metrics>> {
        Some(Arc::clone(self.platform.metrics_registry()))
    }
}

/// Serialize a value to wire JSON, mapping failures to a wire error.
fn to_wire_json<T: serde::Serialize>(value: &T) -> Result<String> {
    serde_json::to_string(value).map_err(|e| CoreError::Wire {
        code: ErrorCode::Malformed,
        message: format!("encode: {e}"),
    })
}

/// Wire transport: every message round-trips through the versioned JSON
/// protocol — requests client→server, events and responses server→client —
/// exactly as a networked frontend would carry them. The transport itself
/// is in-memory (`Arc` to the platform), so tests and benches exercise the
/// full serialization path without sockets.
#[derive(Debug, Clone)]
pub struct JsonWire {
    platform: Arc<CentralPlatform>,
}

impl JsonWire {
    /// Wrap a shared platform.
    pub fn new(platform: Arc<CentralPlatform>) -> Self {
        JsonWire { platform }
    }

    /// Ship one admin op through the wire protocol.
    fn admin(&self, op: AdminOp) -> Result<AdminReply> {
        let json = to_wire_json(&WireAdminRequest { v: WIRE_VERSION, op })?;
        let response = self.platform.wire_admin(&json);
        let decoded: WireAdminResponse =
            serde_json::from_str(&response).map_err(|e| CoreError::Wire {
                code: ErrorCode::Malformed,
                message: format!("decode admin response: {e}"),
            })?;
        decoded.into_result()
    }
}

impl PlatformService for JsonWire {
    fn register(&self, upload: ProviderUpload) -> Result<()> {
        let json = to_wire_json(&WireRegisterRequest { v: WIRE_VERSION, upload })?;
        let response = self.platform.wire_register(&json);
        let decoded: WireRegisterResponse =
            serde_json::from_str(&response).map_err(|e| CoreError::Wire {
                code: ErrorCode::Malformed,
                message: format!("decode register response: {e}"),
            })?;
        decoded.into_result().map(|_| ())
    }

    fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        self.submit_tagged(request, config, None)
    }

    fn submit_tagged(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
        request_id: Option<u64>,
    ) -> Result<SearchSession> {
        let json =
            to_wire_json(&WireSearchRequest { v: WIRE_VERSION, request, config, request_id })?;
        let wire_session = match self.platform.wire_submit(&json) {
            Ok(s) => s,
            Err(error_json) => {
                let decoded: WireSearchResponse =
                    serde_json::from_str(&error_json).map_err(|e| CoreError::Wire {
                        code: ErrorCode::Malformed,
                        message: format!("decode submit error: {e}"),
                    })?;
                return Err(decoded
                    .into_result()
                    .err()
                    .unwrap_or_else(|| CoreError::Service("submit failed without error".into())));
            }
        };

        // Client-side decoder: turn the JSON event/response stream back
        // into typed values on a forwarding thread.
        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::sync_channel(1);
        let id = wire_session.id;
        let control = wire_session.control.clone();
        std::thread::spawn(move || {
            for event_json in wire_session.events.iter() {
                match serde_json::from_str::<WireEvent>(&event_json) {
                    Ok(we) if we.v == WIRE_VERSION => {
                        let _ = event_tx.send(we.event);
                    }
                    _ => break,
                }
            }
            drop(event_tx);
            let result = match wire_session.result.recv() {
                Ok(response_json) => serde_json::from_str::<WireSearchResponse>(&response_json)
                    .map_err(|e| CoreError::Wire {
                        code: ErrorCode::Malformed,
                        message: format!("decode search response: {e}"),
                    })
                    .and_then(WireSearchResponse::into_result),
                Err(_) => Err(CoreError::Service("wire session dropped".into())),
            };
            let _ = result_tx.send(result);
        });
        Ok(SearchSession::new(id, control, event_rx, result_rx))
    }

    fn num_datasets(&self) -> usize {
        self.platform.num_datasets()
    }

    fn checkpoint(&self) -> Result<CheckpointReceipt> {
        match self.admin(AdminOp::Checkpoint)? {
            AdminReply::Checkpoint(receipt) => Ok(receipt),
            _ => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "mismatched reply to a checkpoint request".into(),
            }),
        }
    }

    fn stats(&self) -> Result<PlatformStats> {
        match self.admin(AdminOp::Stats)? {
            AdminReply::Stats(stats) => Ok(stats),
            _ => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "mismatched reply to a stats request".into(),
            }),
        }
    }

    fn metrics(&self) -> Result<MetricsReport> {
        match self.admin(AdminOp::Metrics)? {
            AdminReply::Metrics(report) => Ok(report),
            _ => Err(CoreError::Wire {
                code: ErrorCode::Malformed,
                message: "mismatched reply to a metrics request".into(),
            }),
        }
    }
}

/// Server side of a wire-transport session: streams of already-serialized
/// envelopes (one JSON string per event, one final response).
#[derive(Debug)]
pub struct WireSession {
    /// Platform-assigned session id.
    pub id: u64,
    /// Shared run control (the transport's out-of-band cancellation line).
    pub control: SearchControl,
    /// Serialized [`WireEvent`] envelopes, in order.
    pub events: mpsc::Receiver<String>,
    /// The serialized final [`WireSearchResponse`].
    pub result: mpsc::Receiver<String>,
}

/// Server entry point for registration over the wire: parse, check the
/// version, execute against any [`PlatformService`]; always answers with a
/// serialized [`WireRegisterResponse`] envelope.
pub fn wire_register(service: &(impl PlatformService + ?Sized), request_json: &str) -> String {
    let response = match serde_json::from_str::<WireRegisterRequest>(request_json) {
        Err(e) => WireRegisterResponse::err(ErrorCode::Malformed, e.to_string()),
        Ok(req) if req.v != WIRE_VERSION => WireRegisterResponse::err(
            ErrorCode::UnsupportedVersion,
            format!("server speaks v{WIRE_VERSION}, request is v{}", req.v),
        ),
        Ok(req) => {
            let dataset = req.upload.sketch.name.clone();
            match service.register(req.upload) {
                Ok(()) => WireRegisterResponse::ok(RegisterReceipt {
                    dataset,
                    datasets_total: service.num_datasets(),
                }),
                Err(e) => WireRegisterResponse::err_core(&e),
            }
        }
    };
    serde_json::to_string(&response)
        .unwrap_or_else(|_| format!("{{\"v\":{WIRE_VERSION},\"ok\":null,\"err\":{{\"code\":\"Internal\",\"message\":\"encode failure\"}}}}"))
}

/// Server entry point for admin calls over the wire: parse, check the
/// version, execute against any [`PlatformService`]; always answers with a
/// serialized [`WireAdminResponse`] envelope.
pub fn wire_admin(service: &(impl PlatformService + ?Sized), request_json: &str) -> String {
    let response = match serde_json::from_str::<WireAdminRequest>(request_json) {
        Err(e) => WireAdminResponse::err(ErrorCode::Malformed, e.to_string()),
        Ok(req) if req.v != WIRE_VERSION => WireAdminResponse::err(
            ErrorCode::UnsupportedVersion,
            format!("server speaks v{WIRE_VERSION}, request is v{}", req.v),
        ),
        Ok(req) => {
            let result = match req.op {
                AdminOp::Checkpoint => service.checkpoint().map(AdminReply::Checkpoint),
                AdminOp::Stats => service.stats().map(AdminReply::Stats),
                AdminOp::Metrics => service.metrics().map(AdminReply::Metrics),
            };
            match result {
                Ok(reply) => WireAdminResponse::ok(reply),
                Err(e) => WireAdminResponse::err_core(&e),
            }
        }
    };
    serde_json::to_string(&response)
        .unwrap_or_else(|_| format!("{{\"v\":{WIRE_VERSION},\"ok\":null,\"err\":{{\"code\":\"Internal\",\"message\":\"encode failure\"}}}}"))
}

/// Server entry point for search over the wire: parse, check the version,
/// submit to any [`PlatformService`]. On acceptance, returns a
/// [`WireSession`] whose events/result are serialized envelopes; on
/// rejection, returns the serialized error response.
pub fn wire_submit(
    service: &(impl PlatformService + ?Sized),
    request_json: &str,
) -> std::result::Result<WireSession, String> {
    let reject = |code: ErrorCode, message: String| {
        serde_json::to_string(&WireSearchResponse::err(code, message))
            .unwrap_or_else(|_| "{\"v\":1,\"ok\":null,\"err\":null}".to_string())
    };
    let req = match serde_json::from_str::<WireSearchRequest>(request_json) {
        Err(e) => return Err(reject(ErrorCode::Malformed, e.to_string())),
        Ok(req) if req.v != WIRE_VERSION => {
            return Err(reject(
                ErrorCode::UnsupportedVersion,
                format!("server speaks v{WIRE_VERSION}, request is v{}", req.v),
            ))
        }
        Ok(req) => req,
    };
    let request_id = req.request_id;
    let session = match service.submit_tagged(req.request, req.config, request_id) {
        Ok(s) => s,
        // Structured rejection: Overloaded keeps its queue depth and
        // retry hint on the wire so clients can back off properly.
        Err(e) => {
            return Err(serde_json::to_string(&WireSearchResponse::err_core(&e))
                .unwrap_or_else(|_| "{\"v\":1,\"ok\":null,\"err\":null}".to_string()))
        }
    };

    // Server-side encoder: serialize each event and the final reply.
    let (event_tx, event_rx) = mpsc::channel();
    let (result_tx, result_rx) = mpsc::sync_channel(1);
    let id = session.id();
    let control = session.control().clone();
    std::thread::spawn(move || {
        let session_id = id;
        let reply = session.wait_with(|ev| {
            let envelope = WireEvent { v: WIRE_VERSION, session: session_id, event: ev };
            if let Ok(json) = serde_json::to_string(&envelope) {
                let _ = event_tx.send(json);
            }
        });
        let response = match reply {
            // Echo the caller's correlation id into the reply here, at the
            // wire boundary — the platform itself never sees request ids.
            Ok(mut r) => {
                r.request_id = request_id;
                WireSearchResponse::ok(r)
            }
            Err(e) => WireSearchResponse::err_core(&e),
        };
        let json = serde_json::to_string(&response)
            .unwrap_or_else(|_| "{\"v\":1,\"ok\":null,\"err\":null}".to_string());
        let _ = result_tx.send(json);
    });
    Ok(WireSession { id, control, events: event_rx, result: result_rx })
}

/// The platform itself is a [`PlatformService`]: the trait's reference
/// implementation, letting transports and the TCP server hold `&dyn
/// PlatformService` over a [`CentralPlatform`] or [`ShardedPlatform`]
/// interchangeably.
impl PlatformService for CentralPlatform {
    fn register(&self, upload: ProviderUpload) -> Result<()> {
        CentralPlatform::register(self, upload)
    }

    fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        CentralPlatform::submit(self, request, config)
    }

    fn num_datasets(&self) -> usize {
        CentralPlatform::num_datasets(self)
    }

    fn checkpoint(&self) -> Result<CheckpointReceipt> {
        CentralPlatform::checkpoint(self)
    }

    fn stats(&self) -> Result<PlatformStats> {
        CentralPlatform::stats(self)
    }

    fn metrics(&self) -> Result<MetricsReport> {
        Ok(CentralPlatform::metrics(self))
    }

    fn metrics_handle(&self) -> Option<Arc<Metrics>> {
        Some(Arc::clone(self.metrics_registry()))
    }
}

impl PlatformService for crate::shard::ShardedPlatform {
    fn register(&self, upload: ProviderUpload) -> Result<()> {
        crate::shard::ShardedPlatform::register(self, upload)
    }

    fn submit(
        &self,
        request: SketchedRequest,
        config: Option<SearchConfig>,
    ) -> Result<SearchSession> {
        crate::shard::ShardedPlatform::submit(self, request, config)
    }

    fn num_datasets(&self) -> usize {
        crate::shard::ShardedPlatform::num_datasets(self)
    }

    fn checkpoint(&self) -> Result<CheckpointReceipt> {
        crate::shard::ShardedPlatform::checkpoint(self)
    }

    fn stats(&self) -> Result<PlatformStats> {
        crate::shard::ShardedPlatform::stats(self)
    }

    fn metrics(&self) -> Result<MetricsReport> {
        Ok(crate::shard::ShardedPlatform::metrics(self))
    }

    fn metrics_handle(&self) -> Option<Arc<Metrics>> {
        Some(Arc::clone(self.metrics_registry()))
    }
}

impl CentralPlatform {
    /// Registration over the wire ([`wire_register`] against this
    /// platform).
    pub fn wire_register(&self, request_json: &str) -> String {
        wire_register(self, request_json)
    }

    /// Admin calls over the wire ([`wire_admin`] against this platform).
    pub fn wire_admin(&self, request_json: &str) -> String {
        wire_admin(self, request_json)
    }

    /// Search over the wire ([`wire_submit`] against this platform).
    pub fn wire_submit(&self, request_json: &str) -> std::result::Result<WireSession, String> {
        wire_submit(self, request_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::LocalDataStore;
    use mileena_relation::RelationBuilder;
    use mileena_search::TaskSpec;

    fn platform_with_provider() -> Arc<CentralPlatform> {
        let platform = Arc::new(CentralPlatform::new(PlatformConfig::default()));
        let provider = RelationBuilder::new("weather")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("temp", &(0..50).map(|z| (z as f64 * 0.7).sin()).collect::<Vec<_>>())
            .build()
            .unwrap();
        platform.register(LocalDataStore::new(provider).prepare_upload(None, 7).unwrap()).unwrap();
        platform
    }

    fn sketched() -> SketchedRequest {
        let train = RelationBuilder::new("train")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("y", &(0..50).map(|z| (z as f64 * 0.7).sin() * 2.0).collect::<Vec<_>>())
            .build()
            .unwrap();
        let test = train.clone().with_name("test");
        let keys = vec!["zone".to_string()];
        SketchedRequest::sketch(&train, &test, &TaskSpec::new("y", &[]), Some(&keys)).unwrap()
    }

    fn assert_object_safe(service: &dyn PlatformService) -> usize {
        service.num_datasets()
    }

    #[test]
    fn both_transports_serve_the_same_search() {
        let platform = platform_with_provider();
        let in_process = InProcess::new(Arc::clone(&platform));
        let wire = JsonWire::new(Arc::clone(&platform));
        assert_eq!(assert_object_safe(&in_process), 1);
        assert_eq!(assert_object_safe(&wire), 1);

        let direct = in_process.search(sketched(), None).unwrap();
        let via_wire = wire.search(sketched(), None).unwrap();
        // Bit-identical modulo wall-clock: scores, selections, model.
        assert_eq!(direct.base_score, via_wire.base_score);
        assert_eq!(direct.final_score, via_wire.final_score);
        assert_eq!(direct.selected_joins(), via_wire.selected_joins());
        assert_eq!(direct.features, via_wire.features);
        assert_eq!(direct.model, via_wire.model);
        assert_eq!(direct.stop_reason, via_wire.stop_reason);
        assert_eq!(direct.selected_joins(), vec!["weather"]);
    }

    #[test]
    fn wire_register_rejects_versions_and_garbage() {
        let platform = platform_with_provider();
        // Garbage payload.
        let resp: WireRegisterResponse =
            serde_json::from_str(&platform.wire_register("{ not json")).unwrap();
        assert_eq!(resp.err.as_ref().unwrap().code, ErrorCode::Malformed);
        // Wrong version: serialize a valid request, then bump v.
        let upload = LocalDataStore::new(
            RelationBuilder::new("extra")
                .int_col("zone", &[1, 2])
                .float_col("f", &[0.5, 0.7])
                .build()
                .unwrap(),
        )
        .prepare_upload(None, 1)
        .unwrap();
        let json = serde_json::to_string(&WireRegisterRequest { v: 99, upload }).unwrap();
        let resp: WireRegisterResponse =
            serde_json::from_str(&platform.wire_register(&json)).unwrap();
        assert_eq!(resp.err.as_ref().unwrap().code, ErrorCode::UnsupportedVersion);
        assert_eq!(platform.num_datasets(), 1, "rejected upload must not register");
    }

    #[test]
    fn wire_submit_rejects_unsupported_version() {
        let platform = platform_with_provider();
        let json = serde_json::to_string(&WireSearchRequest {
            v: 2,
            request: sketched(),
            config: None,
            request_id: None,
        })
        .unwrap();
        let err_json = platform.wire_submit(&json).unwrap_err();
        let resp: WireSearchResponse = serde_json::from_str(&err_json).unwrap();
        let err = resp.into_result().unwrap_err();
        assert!(matches!(err, CoreError::Wire { code: ErrorCode::UnsupportedVersion, .. }));
    }

    #[test]
    fn admin_calls_work_on_both_transports() {
        let dir =
            std::env::temp_dir().join(format!("mileena-service-admin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PlatformConfig {
            storage: Some(crate::durable::StoragePolicy::at(&dir)),
            ..Default::default()
        };
        let platform = Arc::new(CentralPlatform::open_with(config).unwrap());
        let provider = RelationBuilder::new("weather")
            .int_col("zone", &(0..50).collect::<Vec<_>>())
            .float_col("temp", &(0..50).map(|z| (z as f64 * 0.7).sin()).collect::<Vec<_>>())
            .build()
            .unwrap();
        platform.register(LocalDataStore::new(provider).prepare_upload(None, 7).unwrap()).unwrap();

        let in_process = InProcess::new(Arc::clone(&platform));
        let wire = JsonWire::new(Arc::clone(&platform));

        // Checkpoint over the wire; stats agree across transports.
        let receipt = wire.checkpoint().unwrap();
        assert_eq!(receipt.datasets, 1);
        assert_eq!(receipt.seq, 1);
        let direct = in_process.stats().unwrap();
        let via_wire = wire.stats().unwrap();
        assert_eq!(direct, via_wire, "stats must round-trip bit-identically");
        assert_eq!(via_wire.storage.as_ref().unwrap().snapshot_seq, Some(1));

        // Version and garbage rejection on the admin entry point.
        let resp: WireAdminResponse = serde_json::from_str(&platform.wire_admin("{ nope")).unwrap();
        assert_eq!(resp.err.as_ref().unwrap().code, ErrorCode::Malformed);
        let bad = serde_json::to_string(&WireAdminRequest { v: 9, op: AdminOp::Stats }).unwrap();
        let resp: WireAdminResponse = serde_json::from_str(&platform.wire_admin(&bad)).unwrap();
        assert_eq!(resp.err.as_ref().unwrap().code, ErrorCode::UnsupportedVersion);

        // Volatile platforms answer stats but refuse checkpoint, with the
        // refusal typed on the wire.
        let volatile = JsonWire::new(Arc::new(CentralPlatform::new(PlatformConfig::default())));
        assert!(volatile.stats().unwrap().storage.is_none());
        assert!(matches!(
            volatile.checkpoint(),
            Err(CoreError::Wire { code: ErrorCode::Internal, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_surface_evaluation_and_skip_totals() {
        let platform = platform_with_provider();
        let service = InProcess::new(Arc::clone(&platform));
        let before = service.stats().unwrap();
        assert_eq!(before.search_evaluations, 0);
        assert_eq!(before.search_bound_skips, 0);

        let pruned = service.search(sketched(), None).unwrap();
        let after_pruned = service.stats().unwrap();
        assert_eq!(after_pruned.search_evaluations, pruned.evaluations as u64);
        assert_eq!(after_pruned.search_bound_skips, pruned.bound_skips as u64);

        // Exhaustive mode adds evaluations but never skips.
        let exhaustive = service
            .search(sketched(), Some(SearchConfig { pruning: false, ..Default::default() }))
            .unwrap();
        assert_eq!(exhaustive.bound_skips, 0);
        let after_both = service.stats().unwrap();
        assert_eq!(
            after_both.search_evaluations,
            (pruned.evaluations + exhaustive.evaluations) as u64
        );
        assert_eq!(after_both.search_bound_skips, after_pruned.search_bound_skips);
    }

    #[test]
    fn degraded_search_labels_cross_the_wire_envelope() {
        let sharded = Arc::new(crate::shard::ShardedPlatform::new(PlatformConfig {
            shards: 3,
            ..Default::default()
        }));
        for i in 0..6 {
            let provider = RelationBuilder::new(format!("w{i}"))
                .int_col("zone", &(0..50).collect::<Vec<_>>())
                .float_col(
                    "temp",
                    &(0..50).map(|z| ((z + i) as f64 * 0.7).sin()).collect::<Vec<_>>(),
                )
                .build()
                .unwrap();
            sharded
                .register(LocalDataStore::new(provider).prepare_upload(None, 7).unwrap())
                .unwrap();
        }
        sharded.set_shard_available(1, false);

        // Fail-fast default: the typed shard error crosses the envelope.
        let strict = serde_json::to_string(&WireSearchRequest {
            v: WIRE_VERSION,
            request: sketched(),
            config: None,
            request_id: None,
        })
        .unwrap();
        let err_json = wire_submit(sharded.as_ref(), &strict).unwrap_err();
        let resp: WireSearchResponse = serde_json::from_str(&err_json).unwrap();
        assert_eq!(resp.into_result().unwrap_err(), CoreError::ShardUnavailable { shard: 1 });

        // Degraded opt-in: the partial reply crosses labeled.
        let degraded = serde_json::to_string(&WireSearchRequest {
            v: WIRE_VERSION,
            request: sketched(),
            config: Some(SearchConfig { degraded_ok: true, ..Default::default() }),
            request_id: None,
        })
        .unwrap();
        let session = wire_submit(sharded.as_ref(), &degraded).unwrap();
        let reply = serde_json::from_str::<WireSearchResponse>(&session.result.recv().unwrap())
            .unwrap()
            .into_result()
            .unwrap();
        assert!(reply.degraded, "partial scatter must label the reply");
        assert_eq!(reply.shards_missing, vec![1]);

        // Back to full strength: unlabeled again.
        sharded.set_shard_available(1, true);
        let session = wire_submit(sharded.as_ref(), &degraded).unwrap();
        let reply = serde_json::from_str::<WireSearchResponse>(&session.result.recv().unwrap())
            .unwrap()
            .into_result()
            .unwrap();
        assert!(!reply.degraded);
        assert!(reply.shards_missing.is_empty());
    }

    #[test]
    fn wire_session_streams_versioned_events() {
        let platform = platform_with_provider();
        let json = serde_json::to_string(&WireSearchRequest {
            v: WIRE_VERSION,
            request: sketched(),
            config: None,
            request_id: Some(7001),
        })
        .unwrap();
        let session = platform.wire_submit(&json).unwrap();
        let events: Vec<String> = session.events.iter().collect();
        assert!(!events.is_empty());
        for ev in &events {
            let decoded: WireEvent = serde_json::from_str(ev).unwrap();
            assert_eq!(decoded.v, WIRE_VERSION);
            assert_eq!(decoded.session, session.id);
        }
        let final_json = session.result.recv().unwrap();
        let response: WireSearchResponse = serde_json::from_str(&final_json).unwrap();
        let reply = response.into_result().unwrap();
        assert_eq!(reply.request_id, Some(7001), "wire layer must echo the correlation id");
        assert!(reply.spans.total_ns >= reply.spans.run_ns, "total span covers the run stage");
    }
}
