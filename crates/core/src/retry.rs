//! Client-side retry for overload sheds.
//!
//! When the platform's admission queue is full, `submit`/`search` fail
//! with [`CoreError::Overloaded`], carrying the server's `retry_after_ms`
//! estimate. [`search_with_retry`] wraps any [`PlatformService`] call in
//! jittered exponential backoff that honors that hint: each sleep is the
//! larger of the server's estimate and the client's exponential schedule,
//! plus a deterministic seed-derived jitter so a herd of identical
//! clients doesn't re-arrive in lockstep. Every other error — including
//! [`CoreError::Shutdown`], which is not retryable against the same
//! instance — passes straight through, and the final `Overloaded` is
//! surfaced once attempts are exhausted.
//!
//! [`CoreError::ShardUnavailable`] is retryable *by opt-in only*
//! (`retry_shard_unavailable`): the sharded platform auto-recovers a
//! quarantined shard on the next touch, so a retry often lands after the
//! recovery — but the default stays pass-through, because a client that
//! did not ask for shard-fault handling should see the typed error.

use crate::error::{CoreError, Result};
use crate::service::PlatformService;
use crate::wire::SearchReply;
use mileena_search::{SearchConfig, SketchedRequest};
use std::time::Duration;

/// Backoff schedule for [`search_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means no retry).
    pub max_attempts: u32,
    /// First backoff step; doubles each retry.
    pub base: Duration,
    /// Upper bound on a single backoff sleep (jitter excluded).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Also retry [`CoreError::ShardUnavailable`] rejections (off by
    /// default). Useful against a sharded platform whose supervisor
    /// auto-recovers quarantined shards: the next attempt triggers — or
    /// lands after — the recovery.
    pub retry_shard_unavailable: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x6d69_6c65_656e_6121,
            retry_shard_unavailable: false,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based: the sleep after
    /// the first failure is `delay(0, ..)`), honoring the server's hint:
    /// `max(hint, base·2^attempt capped at cap)` plus up to 25% jitter.
    pub fn delay(&self, attempt: u32, server_hint: Duration) -> Duration {
        let exp_ms = (self.base.as_millis() as u64)
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap.as_millis() as u64);
        let floor_ms = exp_ms.max(server_hint.as_millis() as u64);
        let jitter_ms = match floor_ms / 4 {
            0 => 0,
            span => splitmix64(self.seed ^ u64::from(attempt)) % (span + 1),
        };
        Duration::from_millis(floor_ms + jitter_ms)
    }
}

/// SplitMix64 finalizer — the same mixer the chaos `FaultPlan` uses, kept
/// private here to avoid a dependency for one function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Run `service.search(..)`, retrying [`CoreError::Overloaded`] sheds
/// with backoff per `policy`. Works over any transport: on the wire path
/// the typed overload error (queue depth + retry hint) round-trips
/// through the JSON envelope, so the hint survives end to end.
pub fn search_with_retry(
    service: &dyn PlatformService,
    request: &SketchedRequest,
    config: Option<&SearchConfig>,
    policy: &RetryPolicy,
) -> Result<SearchReply> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match service.search(request.clone(), config.cloned()) {
            Ok(reply) => return Ok(reply),
            Err(CoreError::Overloaded { queue_depth, retry_after_ms }) => {
                let err = CoreError::Overloaded { queue_depth, retry_after_ms };
                if attempt + 1 < attempts {
                    std::thread::sleep(
                        policy.delay(attempt, Duration::from_millis(retry_after_ms)),
                    );
                }
                last_err = Some(err);
            }
            Err(CoreError::ShardUnavailable { shard }) if policy.retry_shard_unavailable => {
                if attempt + 1 < attempts {
                    std::thread::sleep(policy.delay(attempt, Duration::ZERO));
                }
                last_err = Some(CoreError::ShardUnavailable { shard });
            }
            Err(other) => return Err(other),
        }
    }
    Err(last_err.expect("loop ran at least once"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SearchSession;
    use crate::wire::ModelReply;
    use mileena_search::StopReason;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::mpsc;

    fn canned_reply() -> SearchReply {
        SearchReply {
            base_score: 0.5,
            final_score: 0.5,
            steps: Vec::new(),
            evaluations: 0,
            bound_skips: 0,
            candidates_truncated: 0,
            elapsed_ms: 0,
            stop_reason: StopReason::Converged,
            features: vec!["x".into()],
            model: ModelReply { intercept: true, coefficients: vec![0.0, 1.0] },
            request_id: None,
            spans: crate::wire::SpanBreakdown::default(),
            degraded: false,
            shards_missing: Vec::new(),
        }
    }

    /// A service that sheds the first `shed_first` submissions with
    /// `Overloaded`, then answers with a canned reply.
    struct Flaky {
        shed_first: u32,
        calls: AtomicU32,
    }

    impl PlatformService for Flaky {
        fn register(&self, _upload: crate::local::ProviderUpload) -> Result<()> {
            Ok(())
        }
        fn submit(
            &self,
            _request: SketchedRequest,
            _config: Option<SearchConfig>,
        ) -> Result<SearchSession> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.shed_first {
                return Err(CoreError::Overloaded { queue_depth: 4, retry_after_ms: 1 });
            }
            let (_event_tx, event_rx) = mpsc::channel();
            let (result_tx, result_rx) = mpsc::sync_channel(1);
            result_tx.send(Ok(canned_reply())).unwrap();
            Ok(SearchSession::new(1, mileena_search::SearchControl::new(), event_rx, result_rx))
        }
        fn num_datasets(&self) -> usize {
            0
        }
        fn checkpoint(&self) -> Result<crate::wire::CheckpointReceipt> {
            Err(CoreError::Storage("volatile".into()))
        }
        fn stats(&self) -> Result<crate::wire::PlatformStats> {
            Err(CoreError::Service("unused".into()))
        }
        fn metrics(&self) -> Result<mileena_obs::MetricsReport> {
            Err(CoreError::Service("unused".into()))
        }
    }

    fn request() -> SketchedRequest {
        let train = mileena_relation::RelationBuilder::new("train")
            .int_col("zone", &[1, 2, 3, 4])
            .float_col("y", &[1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let test = train.clone().with_name("test");
        let keys = vec!["zone".to_string()];
        SketchedRequest::sketch(
            &train,
            &test,
            &mileena_search::TaskSpec::new("y", &[]),
            Some(&keys),
        )
        .unwrap()
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            seed: 7,
            retry_shard_unavailable: false,
        }
    }

    #[test]
    fn delay_honors_server_hint_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 42,
            retry_shard_unavailable: false,
        };
        // Server hint above the exponential floor wins.
        let hinted = policy.delay(0, Duration::from_millis(700));
        assert!(hinted >= Duration::from_millis(700));
        assert!(hinted <= Duration::from_millis(700 + 700 / 4));
        // Deep attempts cap at `cap` (+ jitter).
        let deep = policy.delay(10, Duration::ZERO);
        assert!(deep >= Duration::from_secs(2));
        assert!(deep <= Duration::from_millis(2500));
        // Deterministic for the same (seed, attempt).
        assert_eq!(policy.delay(2, Duration::ZERO), policy.delay(2, Duration::ZERO));
    }

    #[test]
    fn retries_overload_until_success() {
        let service = Flaky { shed_first: 2, calls: AtomicU32::new(0) };
        let reply = search_with_retry(&service, &request(), None, &fast_policy()).unwrap();
        assert_eq!(reply.stop_reason, StopReason::Converged);
        assert_eq!(service.calls.load(Ordering::SeqCst), 3, "two sheds then success");
    }

    #[test]
    fn exhausted_attempts_surface_the_final_overload() {
        let service = Flaky { shed_first: u32::MAX, calls: AtomicU32::new(0) };
        let err = search_with_retry(&service, &request(), None, &fast_policy()).unwrap_err();
        assert!(matches!(err, CoreError::Overloaded { queue_depth: 4, retry_after_ms: 1 }));
        assert_eq!(service.calls.load(Ordering::SeqCst), 3, "capped at max_attempts");
    }

    /// A service that always answers `Shutdown` (never retryable).
    struct Down;
    impl PlatformService for Down {
        fn register(&self, _u: crate::local::ProviderUpload) -> Result<()> {
            Ok(())
        }
        fn submit(&self, _r: SketchedRequest, _c: Option<SearchConfig>) -> Result<SearchSession> {
            Err(CoreError::Shutdown)
        }
        fn num_datasets(&self) -> usize {
            0
        }
        fn checkpoint(&self) -> Result<crate::wire::CheckpointReceipt> {
            Err(CoreError::Storage("volatile".into()))
        }
        fn stats(&self) -> Result<crate::wire::PlatformStats> {
            Err(CoreError::Service("unused".into()))
        }
        fn metrics(&self) -> Result<mileena_obs::MetricsReport> {
            Err(CoreError::Service("unused".into()))
        }
    }

    #[test]
    fn non_overload_errors_pass_through_immediately() {
        let err = search_with_retry(&Down, &request(), None, &fast_policy()).unwrap_err();
        assert_eq!(err, CoreError::Shutdown, "Shutdown is not retryable");
    }

    /// A service whose shard 1 is down for the first `down_first` calls,
    /// then healthy (the supervisor recovered it).
    struct FlakyShard {
        down_first: u32,
        calls: AtomicU32,
    }

    impl PlatformService for FlakyShard {
        fn register(&self, _upload: crate::local::ProviderUpload) -> Result<()> {
            Ok(())
        }
        fn submit(
            &self,
            _request: SketchedRequest,
            _config: Option<SearchConfig>,
        ) -> Result<SearchSession> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.down_first {
                return Err(CoreError::ShardUnavailable { shard: 1 });
            }
            let (_event_tx, event_rx) = mpsc::channel();
            let (result_tx, result_rx) = mpsc::sync_channel(1);
            result_tx.send(Ok(canned_reply())).unwrap();
            Ok(SearchSession::new(1, mileena_search::SearchControl::new(), event_rx, result_rx))
        }
        fn num_datasets(&self) -> usize {
            0
        }
        fn checkpoint(&self) -> Result<crate::wire::CheckpointReceipt> {
            Err(CoreError::Storage("volatile".into()))
        }
        fn stats(&self) -> Result<crate::wire::PlatformStats> {
            Err(CoreError::Service("unused".into()))
        }
        fn metrics(&self) -> Result<mileena_obs::MetricsReport> {
            Err(CoreError::Service("unused".into()))
        }
    }

    #[test]
    fn shard_unavailable_passes_through_by_default() {
        let service = FlakyShard { down_first: 1, calls: AtomicU32::new(0) };
        let err = search_with_retry(&service, &request(), None, &fast_policy()).unwrap_err();
        assert_eq!(err, CoreError::ShardUnavailable { shard: 1 });
        assert_eq!(service.calls.load(Ordering::SeqCst), 1, "no retry without opt-in");
    }

    #[test]
    fn shard_unavailable_retries_when_opted_in() {
        let service = FlakyShard { down_first: 2, calls: AtomicU32::new(0) };
        let policy = RetryPolicy { retry_shard_unavailable: true, ..fast_policy() };
        let reply = search_with_retry(&service, &request(), None, &policy).unwrap();
        assert_eq!(reply.stop_reason, StopReason::Converged);
        assert_eq!(service.calls.load(Ordering::SeqCst), 3, "two rejections then success");
    }

    #[test]
    fn shutdown_still_passes_through_with_shard_retry_on() {
        let policy = RetryPolicy { retry_shard_unavailable: true, ..fast_policy() };
        let err = search_with_retry(&Down, &request(), None, &policy).unwrap_err();
        assert_eq!(err, CoreError::Shutdown, "opt-in covers ShardUnavailable only");
    }
}
