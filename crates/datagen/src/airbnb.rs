//! Airbnb-like listings generator for the transformation experiment
//! (Figure 6b).
//!
//! The nightly price is a linear function of features that raw numerics do
//! not expose:
//!
//! - bedroom count, embedded in the listing title ("Cozy 2BR in …");
//! - tenure in days, derivable only from two date *strings*;
//! - neighborhood and room-type effects (categorical strings);
//! - log of the cleaning fee (heavily skewed raw column);
//! - reviews-per-month with missingness that itself carries signal.
//!
//! A linear model on well-engineered features therefore beats any model on
//! raw columns — the paper's headline Figure 6b observation.

use mileena_relation::{Column, Relation, RelationBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AirbnbConfig {
    /// Number of listings.
    pub rows: usize,
    /// Price noise std (dollars).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirbnbConfig {
    fn default() -> Self {
        AirbnbConfig { rows: 2000, noise: 12.0, seed: 11 }
    }
}

/// Neighborhoods with their additive price effects (dollars).
pub const NEIGHBORHOODS: [(&str, f64); 8] = [
    ("tribeca", 95.0),
    ("west village", 80.0),
    ("williamsburg", 55.0),
    ("park slope", 45.0),
    ("astoria", 25.0),
    ("harlem", 15.0),
    ("bushwick", 10.0),
    ("flatbush", 0.0),
];

/// Room types with their additive price effects.
pub const ROOM_TYPES: [(&str, f64); 3] =
    [("entire home", 60.0), ("private room", 25.0), ("shared room", 0.0)];

const ADJECTIVES: [&str; 8] =
    ["Cozy", "Sunny", "Charming", "Modern", "Spacious", "Quiet", "Stylish", "Bright"];

/// Format `days` since 2015-01-01 as an ISO date string (civil arithmetic,
/// good for the 2015–2024 range we generate).
fn iso_date(days_since_2015: i64) -> String {
    let mut y = 2015i64;
    let mut d = days_since_2015;
    loop {
        let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
        let len = if leap { 366 } else { 365 };
        if d < len {
            break;
        }
        d -= len;
        y += 1;
    }
    let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    let month_lens = [31, if leap { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut m = 0usize;
    while d >= month_lens[m] {
        d -= month_lens[m];
        m += 1;
    }
    format!("{y:04}-{:02}-{:02}", m + 1, d + 1)
}

/// Generate the listings relation.
///
/// Schema: `id:int, name:str, neighbourhood:str, room_type:str,
/// first_review:str, last_review:str, reviews_per_month:float?,
/// minimum_nights:int, availability_365:int, cleaning_fee:float, price:float`.
pub fn generate_airbnb(cfg: &AirbnbConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.rows;

    let mut id = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut neigh = Vec::with_capacity(n);
    let mut room = Vec::with_capacity(n);
    let mut first_review = Vec::with_capacity(n);
    let mut last_review = Vec::with_capacity(n);
    let mut rpm: Vec<Option<f64>> = Vec::with_capacity(n);
    let mut min_nights = Vec::with_capacity(n);
    let mut avail = Vec::with_capacity(n);
    let mut fee = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);

    for i in 0..n {
        let bedrooms = rng.gen_range(1..=4i64);
        let (nb, nb_eff) = NEIGHBORHOODS[rng.gen_range(0..NEIGHBORHOODS.len())];
        let (rt, rt_eff) = ROOM_TYPES[rng.gen_range(0..ROOM_TYPES.len())];
        let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];

        let start = rng.gen_range(0..3000i64);
        let duration = rng.gen_range(30..2000i64);
        let end = (start + duration).min(3500);
        let tenure = end - start;

        // Missing reviews ⇒ newer/less active listing ⇒ small discount,
        // so the missingness indicator itself is predictive.
        let has_reviews = rng.gen::<f64>() < 0.8;
        let reviews_pm = if has_reviews { Some(rng.gen_range(0.1..9.0)) } else { None };

        // Log-normal-ish cleaning fee: raw value skewed, log is linear.
        let log_fee: f64 = rng.gen_range(1.0..5.0);
        let fee_v = log_fee.exp(); // ~ 2.7 .. 148 dollars

        let mn = rng.gen_range(1..=30i64);
        let av = rng.gen_range(0..=365i64);

        let noise = {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let p = 20.0
            + 30.0 * bedrooms as f64
            + nb_eff
            + rt_eff
            + 0.02 * tenure as f64
            + 8.0 * log_fee
            + if has_reviews { 6.0 } else { 0.0 }
            // Raw numerics contribute only marginally:
            + 0.15 * mn as f64
            + 0.01 * av as f64
            + cfg.noise * noise;

        id.push(i as i64);
        name.push(format!("{adj} {bedrooms}BR in {nb}"));
        neigh.push(nb.to_string());
        room.push(rt.to_string());
        first_review.push(iso_date(start));
        last_review.push(iso_date(end));
        rpm.push(reviews_pm);
        min_nights.push(mn);
        avail.push(av);
        fee.push(fee_v);
        price.push(p.max(10.0));
    }

    RelationBuilder::new("airbnb")
        .int_col("id", &id)
        .col("name", Column::from_strs(&name))
        .col("neighbourhood", Column::from_strs(&neigh))
        .col("room_type", Column::from_strs(&room))
        .col("first_review", Column::from_strs(&first_review))
        .col("last_review", Column::from_strs(&last_review))
        .opt_float_col("reviews_per_month", &rpm)
        .int_col("minimum_nights", &min_nights)
        .int_col("availability_365", &avail)
        .float_col("cleaning_fee", &fee)
        .float_col("price", &price)
        .build()
        .expect("valid airbnb relation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_ml::{LinearModel, Regressor, RidgeConfig};

    #[test]
    fn shape_and_determinism() {
        let cfg = AirbnbConfig { rows: 100, ..Default::default() };
        let a = generate_airbnb(&cfg);
        let b = generate_airbnb(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 100);
        assert_eq!(a.num_columns(), 11);
        // Titles carry the bedroom signal.
        let title = a.value(0, "name").unwrap().to_string();
        assert!(title.contains("BR in"), "{title}");
    }

    #[test]
    fn iso_dates_valid() {
        assert_eq!(iso_date(0), "2015-01-01");
        assert_eq!(iso_date(31), "2015-02-01");
        assert_eq!(iso_date(365), "2016-01-01");
        // 2016 is a leap year: 2016-02-29 exists.
        assert_eq!(iso_date(365 + 31 + 28), "2016-02-29");
        assert_eq!(iso_date(365 + 366), "2017-01-01");
    }

    #[test]
    fn missingness_rate_reasonable() {
        let r = generate_airbnb(&AirbnbConfig { rows: 1000, ..Default::default() });
        let nulls = r.column("reviews_per_month").unwrap().null_count();
        assert!(nulls > 100 && nulls < 350, "{nulls}");
    }

    #[test]
    fn raw_numerics_are_weak_predictors() {
        // The core premise of Figure 6b: raw numeric columns alone leave
        // most of the price variance unexplained.
        let r = generate_airbnb(&AirbnbConfig { rows: 1500, ..Default::default() });
        let (train, test) = r.train_test_split(0.3, 5);
        let cols = ["minimum_nights", "availability_365", "cleaning_fee"];
        let mut m = LinearModel::new(RidgeConfig::default());
        let r2 = m
            .fit_evaluate(
                &train.to_xy(&cols, "price").unwrap(),
                &test.to_xy(&cols, "price").unwrap(),
            )
            .unwrap();
        assert!(r2 < 0.45, "raw-numeric R² should be weak, got {r2}");
        assert!(r2 > -0.2, "but not absurd, got {r2}");
    }

    #[test]
    fn prices_positive() {
        let r = generate_airbnb(&AirbnbConfig { rows: 500, ..Default::default() });
        let (lo, _) = r.column("price").unwrap().min_max().unwrap();
        assert!(lo >= 10.0);
    }
}
