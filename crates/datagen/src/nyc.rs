//! NYC-Open-Data-like corpus generator.
//!
//! Generative model: a latent factor `z_k(zone)` per signal table over a
//! shared `zone` key domain. The requester's target is
//!
//! `y = β₀ + β_b·base_x + Σ_k β_k·z_k(zone) + γ·z₀(zone)² + ε`
//!
//! so (a) joining the right provider tables adds the `z_k` features and
//! lifts test R² step by step, (b) a mild quadratic term leaves headroom
//! that only a non-linear model (AutoML on the materialized augmented data)
//! can capture — reproducing Figure 4's "Mileena ≈ 0.7 fast, then AutoML
//! → 0.82" shape. Distractor tables join but don't help; novelty traps
//! carry deliberately exotic values with no signal (they seduce the Novelty
//! baseline); union tables extend the training sample.
//!
//! All features live in `[-1, 1]` so DP clipping at `B = 1` is lossless.

use mileena_relation::{Relation, RelationBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Corpus generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Total provider datasets (the paper's headline corpus has 517).
    pub num_datasets: usize,
    /// Join-augmentable tables carrying true signal.
    pub num_signal: usize,
    /// Union-compatible tables extending the training sample.
    pub num_union: usize,
    /// Novelty traps (exotic values, zero signal).
    pub num_novelty_traps: usize,
    /// Requester training rows.
    pub train_rows: usize,
    /// Requester test rows.
    pub test_rows: usize,
    /// Rows per provider table (signal tables use the key domain size).
    pub provider_rows: usize,
    /// Join key domain size `d` (distinct zones).
    pub key_domain: usize,
    /// Rows per key in signal tables. 1 = dimension table (the Figure 4
    /// regime); larger values produce "measurement" tables whose per-key
    /// group mass keeps DP noise survivable (the Figure 5 regime — NYC
    /// datasets have thousands of rows per borough/zone). Uniform per key,
    /// so the join fan-out is a harmless constant re-weighting.
    pub signal_rows_per_key: usize,
    /// Std of the irreducible target noise ε.
    pub noise: f64,
    /// Coefficient of the quadratic term (AutoML headroom); 0 disables.
    pub nonlinear_strength: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_datasets: 100,
            num_signal: 6,
            num_union: 4,
            num_novelty_traps: 8,
            train_rows: 400,
            test_rows: 400,
            provider_rows: 300,
            key_domain: 150,
            signal_rows_per_key: 1,
            noise: 0.25,
            nonlinear_strength: 0.35,
            seed: 42,
        }
    }
}

impl CorpusConfig {
    /// The paper's headline setting: 517 datasets (Figure 4).
    pub fn paper_scale(seed: u64) -> Self {
        CorpusConfig {
            num_datasets: 517,
            num_signal: 8,
            num_union: 6,
            num_novelty_traps: 20,
            train_rows: 2000,
            test_rows: 1000,
            provider_rows: 600,
            key_domain: 200,
            signal_rows_per_key: 1,
            noise: 0.2,
            nonlinear_strength: 0.5,
            seed,
        }
    }

    /// The Figure 5 regime: fewer, heavier keys so DP noise is survivable,
    /// and measurement-style signal tables (many rows per key).
    pub fn privacy_scale(num_datasets: usize, seed: u64) -> Self {
        CorpusConfig {
            num_datasets,
            num_signal: 4.min(num_datasets / 3).max(1),
            num_union: 2.min(num_datasets / 5),
            num_novelty_traps: 2.min(num_datasets / 5),
            train_rows: 2000,
            test_rows: 1000,
            provider_rows: 800,
            key_domain: 20,
            signal_rows_per_key: 40,
            noise: 0.35,
            nonlinear_strength: 0.0,
            seed,
        }
    }
}

/// What the generator planted — used by harnesses to score search quality,
/// never shown to the search itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Names of join-signal datasets, strongest first.
    pub signal_datasets: Vec<String>,
    /// Names of union-helpful datasets.
    pub union_datasets: Vec<String>,
    /// Names of the novelty traps.
    pub trap_datasets: Vec<String>,
    /// Signal coefficients β_k aligned with `signal_datasets`.
    pub betas: Vec<f64>,
}

/// A generated corpus: the requester's task plus the provider relations.
#[derive(Debug, Clone)]
pub struct NycCorpus {
    /// Requester training relation `[zone, week, base_x, y]`.
    pub train: Relation,
    /// Requester test relation (same schema).
    pub test: Relation,
    /// Provider relations, shuffled (signal positions are random).
    pub providers: Vec<Relation>,
    /// The planted truth.
    pub ground_truth: GroundTruth,
    /// The config used.
    pub config: CorpusConfig,
}

impl NycCorpus {
    /// Feature columns of the requester relations.
    pub fn feature_columns() -> Vec<&'static str> {
        vec!["base_x", "y"]
    }

    /// The task's target column.
    pub fn target_column() -> &'static str {
        "y"
    }
}

fn uniform_pm1(rng: &mut StdRng) -> f64 {
    rng.gen_range(-1.0..1.0)
}

/// Build one requester relation of `n` rows.
#[allow(clippy::too_many_arguments)]
fn requester_relation(
    name: &str,
    n: usize,
    latents: &[Vec<f64>],
    betas: &[f64],
    cfg: &CorpusConfig,
    beta_base: f64,
    rng: &mut StdRng,
) -> Relation {
    let mut zone = Vec::with_capacity(n);
    let mut week = Vec::with_capacity(n);
    let mut base_x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let z = rng.gen_range(0..cfg.key_domain);
        let w = rng.gen_range(0..52i64);
        let bx = uniform_pm1(rng);
        let mut target = beta_base * bx;
        for (k, lat) in latents.iter().enumerate() {
            target += betas[k] * lat[z];
        }
        if cfg.nonlinear_strength > 0.0 {
            target += cfg.nonlinear_strength * (latents[0][z] * latents[0][z] - 0.5);
        }
        target += cfg.noise * {
            // Box–Muller normal from the corpus rng.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        zone.push(z as i64);
        week.push(w);
        base_x.push(bx);
        y.push(target.clamp(-1.0, 1.0));
    }
    RelationBuilder::new(name)
        .int_col("zone", &zone)
        .int_col("week", &week)
        .float_col("base_x", &base_x)
        .float_col("y", &y)
        .build()
        .expect("valid requester relation")
}

/// Generate the corpus.
#[allow(clippy::needless_range_loop)] // zone/slot loops index several parallel arrays
pub fn generate_corpus(cfg: &CorpusConfig) -> NycCorpus {
    assert!(
        cfg.num_signal + cfg.num_union + cfg.num_novelty_traps <= cfg.num_datasets,
        "special datasets exceed corpus size"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Latent factors per signal table, over the zone domain.
    let latents: Vec<Vec<f64>> = (0..cfg.num_signal)
        .map(|_| (0..cfg.key_domain).map(|_| uniform_pm1(&mut rng)).collect())
        .collect();
    // Decaying signal coefficients: strongest-first greedy order is planted.
    let betas: Vec<f64> = (0..cfg.num_signal).map(|k| 0.55 * 0.82f64.powi(k as i32)).collect();
    let beta_base = 0.15;

    let train =
        requester_relation("train", cfg.train_rows, &latents, &betas, cfg, beta_base, &mut rng);
    let test =
        requester_relation("test", cfg.test_rows, &latents, &betas, cfg, beta_base, &mut rng);

    // Assign provider roles to shuffled slots.
    let mut roles: Vec<usize> = (0..cfg.num_datasets).collect();
    use rand::seq::SliceRandom;
    roles.shuffle(&mut rng);
    let signal_slots = &roles[..cfg.num_signal];
    let union_slots = &roles[cfg.num_signal..cfg.num_signal + cfg.num_union];
    let trap_slots = &roles
        [cfg.num_signal + cfg.num_union..cfg.num_signal + cfg.num_union + cfg.num_novelty_traps];

    let mut providers: Vec<Option<Relation>> = (0..cfg.num_datasets).map(|_| None).collect();
    let mut gt = GroundTruth {
        signal_datasets: Vec::new(),
        union_datasets: Vec::new(),
        trap_datasets: Vec::new(),
        betas: betas.clone(),
    };

    // Signal tables: zone → z_k(zone) + small measurement noise; partial
    // key coverage (85–100%) for realism. With `signal_rows_per_key > 1`
    // each covered key carries that many noisy measurements (uniform per
    // key, so join fan-out is a constant re-weighting).
    for (k, &slot) in signal_slots.iter().enumerate() {
        let name = format!("dataset_{slot:04}");
        gt.signal_datasets.push(name.clone());
        let coverage = rng.gen_range(0.85..1.0);
        let per_key = cfg.signal_rows_per_key.max(1);
        let mut zones = Vec::new();
        let mut feat = Vec::new();
        for z in 0..cfg.key_domain {
            if rng.gen::<f64>() <= coverage {
                for _ in 0..per_key {
                    zones.push(z as i64);
                    feat.push((latents[k][z] + 0.05 * uniform_pm1(&mut rng)).clamp(-1.0, 1.0));
                }
            }
        }
        providers[slot] = Some(
            RelationBuilder::new(&name)
                .int_col("zone", &zones)
                .float_col(&format!("feat_{k}"), &feat)
                .build()
                .expect("valid signal relation"),
        );
    }

    // Union tables: same schema and distribution as train.
    for &slot in union_slots {
        let name = format!("dataset_{slot:04}");
        gt.union_datasets.push(name.clone());
        let r = requester_relation(
            &name,
            cfg.provider_rows,
            &latents,
            &betas,
            cfg,
            beta_base,
            &mut rng,
        );
        providers[slot] = Some(r);
    }

    // Novelty traps: zone-keyed (N:1, so they survive join guards), with
    // feature values in an exotic range far outside anything the training
    // data has seen — maximally "novel", zero signal.
    for &slot in trap_slots {
        let name = format!("dataset_{slot:04}");
        gt.trap_datasets.push(name.clone());
        let mut zones = Vec::new();
        let mut feat = Vec::new();
        for z in 0..cfg.key_domain {
            zones.push(z as i64);
            feat.push(rng.gen_range(5.0..10.0));
        }
        providers[slot] = Some(
            RelationBuilder::new(&name)
                .int_col("zone", &zones)
                .float_col("trapfeat", &feat)
                .build()
                .expect("valid trap relation"),
        );
    }

    // Everything else: distractors. Half join-compatible (one row per zone,
    // random features — discovery loves them, utility rejects them), half
    // foreign (disjoint key domain, never joinable).
    for slot in 0..cfg.num_datasets {
        if providers[slot].is_some() {
            continue;
        }
        let name = format!("dataset_{slot:04}");
        let joinable = rng.gen::<bool>();
        let mut keys = Vec::new();
        let mut f1 = Vec::new();
        let mut f2 = Vec::new();
        if joinable {
            for z in 0..cfg.key_domain {
                keys.push(z as i64);
                f1.push(uniform_pm1(&mut rng));
                f2.push(uniform_pm1(&mut rng));
            }
        } else {
            for _ in 0..cfg.provider_rows {
                keys.push(rng.gen_range(10_000..20_000) as i64);
                f1.push(uniform_pm1(&mut rng));
                f2.push(uniform_pm1(&mut rng));
            }
        }
        providers[slot] = Some(
            RelationBuilder::new(&name)
                .int_col("zone", &keys)
                .float_col("m1", &f1)
                .float_col("m2", &f2)
                .build()
                .expect("valid distractor relation"),
        );
    }

    NycCorpus {
        train,
        test,
        providers: providers.into_iter().map(|p| p.expect("all slots filled")).collect(),
        ground_truth: gt,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mileena_ml::{LinearModel, Regressor, RidgeConfig};

    fn small() -> CorpusConfig {
        CorpusConfig {
            num_datasets: 20,
            num_signal: 3,
            num_union: 2,
            num_novelty_traps: 2,
            train_rows: 300,
            test_rows: 300,
            provider_rows: 150,
            key_domain: 80,
            signal_rows_per_key: 1,
            noise: 0.1,
            nonlinear_strength: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn corpus_shape() {
        let c = generate_corpus(&small());
        assert_eq!(c.providers.len(), 20);
        assert_eq!(c.train.num_rows(), 300);
        assert_eq!(c.ground_truth.signal_datasets.len(), 3);
        // Names unique.
        let mut names: Vec<&str> = c.providers.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate_corpus(&small());
        let b = generate_corpus(&small());
        assert_eq!(a.train, b.train);
        assert_eq!(a.providers[5], b.providers[5]);
        let mut cfg = small();
        cfg.seed = 8;
        let c = generate_corpus(&cfg);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn values_bounded_for_dp() {
        let c = generate_corpus(&small());
        for col in ["base_x", "y"] {
            let (lo, hi) = c.train.column(col).unwrap().min_max().unwrap();
            assert!(lo >= -1.0 && hi <= 1.0, "{col}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn signal_join_improves_linear_model() {
        // The planted contract: joining the strongest signal table must
        // raise test R² substantially over the base features alone.
        let c = generate_corpus(&small());
        let base_train = c.train.to_xy(&["base_x"], "y").unwrap();
        let base_test = c.test.to_xy(&["base_x"], "y").unwrap();
        let mut m = LinearModel::new(RidgeConfig::default());
        let r2_base = m.fit_evaluate(&base_train, &base_test).unwrap();

        let sig_name = &c.ground_truth.signal_datasets[0];
        let sig = c.providers.iter().find(|p| p.name() == sig_name).unwrap();
        let feat_col = sig.schema().names()[1].to_string();
        let jtrain = c.train.hash_join(sig, &["zone"], &["zone"]).unwrap();
        let jtest = c.test.hash_join(sig, &["zone"], &["zone"]).unwrap();
        let aug_train = jtrain.to_xy(&["base_x", &feat_col], "y").unwrap();
        let aug_test = jtest.to_xy(&["base_x", &feat_col], "y").unwrap();
        let mut m2 = LinearModel::new(RidgeConfig::default());
        let r2_aug = m2.fit_evaluate(&aug_train, &aug_test).unwrap();
        assert!(
            r2_aug > r2_base + 0.1,
            "join should help: base {r2_base:.3}, augmented {r2_aug:.3}"
        );
    }

    #[test]
    fn distractor_join_does_not_help() {
        let c = generate_corpus(&small());
        let special: std::collections::HashSet<&str> = c
            .ground_truth
            .signal_datasets
            .iter()
            .chain(&c.ground_truth.union_datasets)
            .chain(&c.ground_truth.trap_datasets)
            .map(|s| s.as_str())
            .collect();
        let distractor = c
            .providers
            .iter()
            .find(|p| !special.contains(p.name()) && p.schema().contains("m1"))
            .expect("some joinable distractor exists");
        let jtrain = c.train.hash_join(distractor, &["zone"], &["zone"]).unwrap();
        let jtest = c.test.hash_join(distractor, &["zone"], &["zone"]).unwrap();
        if jtrain.num_rows() == 0 || jtest.num_rows() == 0 {
            return; // foreign-key distractor: join empty, trivially unhelpful
        }
        let base_train = c.train.to_xy(&["base_x"], "y").unwrap();
        let base_test = c.test.to_xy(&["base_x"], "y").unwrap();
        let mut m = LinearModel::new(RidgeConfig::default());
        let r2_base = m.fit_evaluate(&base_train, &base_test).unwrap();
        let aug_train = jtrain.to_xy(&["base_x", "m1", "m2"], "y").unwrap();
        let aug_test = jtest.to_xy(&["base_x", "m1", "m2"], "y").unwrap();
        let mut m2 = LinearModel::new(RidgeConfig::default());
        let r2_aug = m2.fit_evaluate(&aug_train, &aug_test).unwrap();
        assert!(r2_aug < r2_base + 0.05, "distractor must not help: {r2_base} → {r2_aug}");
    }

    #[test]
    fn union_table_is_schema_compatible() {
        let c = generate_corpus(&small());
        let un = &c.ground_truth.union_datasets[0];
        let u = c.providers.iter().find(|p| p.name() == un).unwrap();
        assert!(c.train.union(u).is_ok());
    }

    #[test]
    #[should_panic(expected = "special datasets exceed corpus size")]
    fn rejects_overfull_config() {
        let mut cfg = small();
        cfg.num_datasets = 4;
        generate_corpus(&cfg);
    }
}
