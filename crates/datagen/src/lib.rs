//! Synthetic data generators standing in for the paper's gated corpora
//! (DESIGN.md §3 documents each substitution):
//!
//! - [`nyc`] — an NYC-Open-Data-like corpus for the search experiments
//!   (Figures 4 and 5): a requester task plus hundreds of provider
//!   relations, a few of which genuinely improve the task via joins or
//!   unions, most of which are realistic distractors;
//! - [`airbnb`] — a Kaggle-Airbnb-like listings table for the
//!   transformation experiment (Figure 6b): the price signal is only
//!   recoverable through string/date feature engineering;
//! - [`causal`] — the 3-relation structural causal model of the §4.2
//!   treatment-effect experiment.
//!
//! Everything is deterministic given the config seed.

pub mod airbnb;
pub mod causal;
pub mod nyc;

pub use airbnb::{generate_airbnb, AirbnbConfig};
pub use causal::{generate_causal, CausalConfig, CausalData};
pub use nyc::{generate_corpus, CorpusConfig, NycCorpus};
