//! Structural-causal-model generator for the §4.2 treatment-effect
//! experiment: three relations over one population with a known ATE.
//!
//! SCM (all binary; `B(p)` = Bernoulli):
//!
//! ```text
//! D ~ B(0.5)                      (latent confounder, in no relation)
//! T ~ B(t0 + t_d·D)               (treatment: student qualification)
//! P ~ B(p0 + p_t·T)               (participation)
//! A ~ B(a0 + a_p·P)               (assignment completion)
//! Y ~ B(y0 + y_a·A + y_d·D)       (overall score)
//! G ~ B(0.5)                      (gender; causally inert)
//! ```
//!
//! Relations (1-to-1 via the shared `id`): `R1(id, T, Y)`, `R2(id, T, G)`,
//! `R3(id, P, A, Y)` — exactly the paper's setup. The true
//! `ATE = E[Y|do(T=1)] − E[Y|do(T=0)] = y_a·a_p·p_t` is returned in closed
//! form for harnesses to score estimators against.

use mileena_relation::{Relation, RelationBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SCM parameters. Defaults are tuned so the observational (confounded)
/// estimate is off by ≈10% relative — the regime of the paper's comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CausalConfig {
    /// Population size.
    pub rows: usize,
    /// Base treatment rate.
    pub t0: f64,
    /// Confounder → treatment strength.
    pub t_d: f64,
    /// Base participation rate.
    pub p0: f64,
    /// Treatment → participation strength.
    pub p_t: f64,
    /// Base completion rate.
    pub a0: f64,
    /// Participation → completion strength.
    pub a_p: f64,
    /// Base score rate.
    pub y0: f64,
    /// Completion → score strength.
    pub y_a: f64,
    /// Confounder → score strength (drives backdoor bias).
    pub y_d: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CausalConfig {
    fn default() -> Self {
        CausalConfig {
            rows: 20_000,
            t0: 0.25,
            t_d: 0.5,
            p0: 0.2,
            p_t: 0.6,
            a0: 0.25,
            a_p: 0.5,
            y0: 0.15,
            y_a: 0.5,
            y_d: 0.03,
            seed: 23,
        }
    }
}

impl CausalConfig {
    /// Closed-form `E[Y | do(T=t)]`.
    pub fn expected_y_do(&self, t: i64) -> f64 {
        let p1 = self.p0 + self.p_t * t as f64;
        let a1 = self.a0 + self.a_p * p1;
        self.y0 + self.y_a * a1 + self.y_d * 0.5
    }

    /// Closed-form average treatment effect `y_a · a_p · p_t`.
    pub fn true_ate(&self) -> f64 {
        self.y_a * self.a_p * self.p_t
    }

    /// Closed-form *observational* difference `E[Y|T=1] − E[Y|T=0]`,
    /// which includes the confounding bias through D.
    pub fn observational_diff(&self) -> f64 {
        // P(D=1|T=t) by Bayes with P(D)=0.5.
        let p_t1_d1 = self.t0 + self.t_d;
        let p_t1_d0 = self.t0;
        let p_t1 = 0.5 * (p_t1_d1 + p_t1_d0);
        let p_d1_given_t1 = 0.5 * p_t1_d1 / p_t1;
        let p_d1_given_t0 = 0.5 * (1.0 - p_t1_d1) / (1.0 - p_t1);
        self.true_ate() + self.y_d * (p_d1_given_t1 - p_d1_given_t0)
    }
}

/// The generated population and its three projected relations.
#[derive(Debug, Clone)]
pub struct CausalData {
    /// Full population `[id, D, T, G, P, A, Y]` (the "oracle" view; the
    /// estimators never see D).
    pub population: Relation,
    /// `R1(id, T, Y)`.
    pub r1: Relation,
    /// `R2(id, T, G)`.
    pub r2: Relation,
    /// `R3(id, P, A, Y)`.
    pub r3: Relation,
    /// Closed-form ATE.
    pub true_ate: f64,
    /// Config used.
    pub config: CausalConfig,
}

/// Sample the SCM and project the three relations.
pub fn generate_causal(cfg: &CausalConfig) -> CausalData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.rows;
    let mut id = Vec::with_capacity(n);
    let (mut d, mut t, mut g, mut p, mut a, mut y) = (
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    );
    let bern = |prob: f64, rng: &mut StdRng| i64::from(rng.gen::<f64>() < prob);
    for i in 0..n {
        let di = bern(0.5, &mut rng);
        let ti = bern(cfg.t0 + cfg.t_d * di as f64, &mut rng);
        let gi = bern(0.5, &mut rng);
        let pi = bern(cfg.p0 + cfg.p_t * ti as f64, &mut rng);
        let ai = bern(cfg.a0 + cfg.a_p * pi as f64, &mut rng);
        let yi = bern(cfg.y0 + cfg.y_a * ai as f64 + cfg.y_d * di as f64, &mut rng);
        id.push(i as i64);
        d.push(di);
        t.push(ti);
        g.push(gi);
        p.push(pi);
        a.push(ai);
        y.push(yi);
    }
    let population = RelationBuilder::new("population")
        .int_col("id", &id)
        .int_col("D", &d)
        .int_col("T", &t)
        .int_col("G", &g)
        .int_col("P", &p)
        .int_col("A", &a)
        .int_col("Y", &y)
        .build()
        .expect("valid population");
    let r1 = population.project(&["id", "T", "Y"]).unwrap().with_name("R1");
    let r2 = population.project(&["id", "T", "G"]).unwrap().with_name("R2");
    let r3 = population.project(&["id", "P", "A", "Y"]).unwrap().with_name("R3");
    CausalData { population, r1, r2, r3, true_ate: cfg.true_ate(), config: cfg.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms() {
        let cfg = CausalConfig::default();
        // ATE = 0.5 · 0.5 · 0.6 = 0.15
        assert!((cfg.true_ate() - 0.15).abs() < 1e-12);
        assert!((cfg.expected_y_do(1) - cfg.expected_y_do(0) - cfg.true_ate()).abs() < 1e-12);
        // Default bias keeps observational error near 10% relative.
        let rel_err = (cfg.observational_diff() - cfg.true_ate()).abs() / cfg.true_ate();
        assert!(rel_err > 0.05 && rel_err < 0.2, "{rel_err}");
    }

    #[test]
    fn empirical_matches_closed_form() {
        let cfg = CausalConfig { rows: 60_000, ..Default::default() };
        let data = generate_causal(&cfg);
        // Empirical E[Y|T=t] from the population should match the
        // observational closed form within sampling error.
        let tcol = data.population.column("T").unwrap();
        let ycol = data.population.column("Y").unwrap();
        let mut sums = [0.0f64; 2];
        let mut cnts = [0.0f64; 2];
        for i in 0..data.population.num_rows() {
            let t = tcol.f64_at(i).unwrap() as usize;
            sums[t] += ycol.f64_at(i).unwrap();
            cnts[t] += 1.0;
        }
        let emp_diff = sums[1] / cnts[1] - sums[0] / cnts[0];
        assert!(
            (emp_diff - cfg.observational_diff()).abs() < 0.02,
            "emp {emp_diff} vs closed {}",
            cfg.observational_diff()
        );
    }

    #[test]
    fn projections_are_one_to_one() {
        let data = generate_causal(&CausalConfig { rows: 500, ..Default::default() });
        assert_eq!(data.r1.schema().names(), vec!["id", "T", "Y"]);
        assert_eq!(data.r2.schema().names(), vec!["id", "T", "G"]);
        assert_eq!(data.r3.schema().names(), vec!["id", "P", "A", "Y"]);
        let j = data.r1.hash_join(&data.r2, &["id"], &["id"]).unwrap();
        assert_eq!(j.num_rows(), 500); // 1-to-1
    }

    #[test]
    fn deterministic() {
        let cfg = CausalConfig { rows: 200, ..Default::default() };
        assert_eq!(generate_causal(&cfg).population, generate_causal(&cfg).population);
    }
}
