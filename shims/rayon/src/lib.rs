//! In-tree shim of `rayon`'s parallel-iterator surface (the subset this
//! workspace uses: `par_iter().map(..).collect()`, optionally with
//! `enumerate`). Scheduling is dynamic work-claiming: worker threads pull
//! the next item index from a shared atomic counter, so an expensive item
//! never pins a whole pre-chunked shard on one thread (the failure mode of
//! hand-rolled `chunks(n)` parallelism this replaces).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: Sync + 'data;
    /// Start a parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

/// Enumerated variant.
pub struct ParEnumerate<'data, T> {
    slice: &'data [T],
}

/// Mapped, ready to collect.
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    enumerated: bool,
    f: F,
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> ParEnumerate<'data, T> {
        ParEnumerate { slice: self.slice }
    }

    /// Apply `f` to each element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, ItemFn<F>>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap { slice: self.slice, enumerated: false, f: ItemFn(f) }
    }
}

impl<'data, T: Sync> ParEnumerate<'data, T> {
    /// Apply `f` to each `(index, element)` pair in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, PairFn<F>>
    where
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        ParMap { slice: self.slice, enumerated: true, f: PairFn(f) }
    }
}

/// Adapter: closure over a bare item.
pub struct ItemFn<F>(F);
/// Adapter: closure over an `(index, item)` pair.
pub struct PairFn<F>(F);

/// Internal: apply the stored closure to the item at `i`.
pub trait IndexedCall<'data, T>: Sync {
    /// Result type.
    type Out: Send;
    /// Call for slice index `i`.
    fn call(&self, i: usize, item: &'data T) -> Self::Out;
}

impl<'data, T: Sync + 'data, R: Send, F: Fn(&'data T) -> R + Sync> IndexedCall<'data, T>
    for ItemFn<F>
{
    type Out = R;
    fn call(&self, _i: usize, item: &'data T) -> R {
        (self.0)(item)
    }
}

impl<'data, T: Sync + 'data, R: Send, F: Fn((usize, &'data T)) -> R + Sync> IndexedCall<'data, T>
    for PairFn<F>
{
    type Out = R;
    fn call(&self, i: usize, item: &'data T) -> R {
        (self.0)((i, item))
    }
}

impl<'data, T: Sync, F: IndexedCall<'data, T>> ParMap<'data, T, F> {
    /// Run the map across the pool and collect results in slice order.
    pub fn collect<C: From<Vec<F::Out>>>(self) -> C {
        let _ = self.enumerated; // encoded in the adapter; kept for clarity
        C::from(run_indexed(self.slice, &self.f))
    }
}

/// Number of worker threads to use for `n` items.
fn pool_size(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    hw.min(n)
}

fn run_indexed<'data, T: Sync, F: IndexedCall<'data, T>>(slice: &'data [T], f: &F) -> Vec<F::Out> {
    let n = slice.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = pool_size(n);
    if threads <= 1 {
        return slice.iter().enumerate().map(|(i, item)| f.call(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, F::Out)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f.call(i, &slice[i])));
                }
                out.lock().expect("rayon shim: worker poisoned the sink").extend(local);
            });
        }
    });
    let mut pairs = out.into_inner().expect("rayon shim: sink poisoned");
    pairs.sort_unstable_by_key(|p| p.0);
    pairs.into_iter().map(|p| p.1).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = data.par_iter().map(|v| v * 2).collect();
        assert_eq!(doubled, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_passes_true_indices() {
        let data = vec!["a", "b", "c"];
        let tagged: Vec<(usize, &str)> =
            data.par_iter().enumerate().map(|(i, s)| (i, *s)).collect();
        assert_eq!(tagged, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete correctly.
        let data: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = data
            .par_iter()
            .map(|&v| {
                let spins = if v % 16 == 0 { 200_000 } else { 10 };
                let mut acc = v;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                v
            })
            .collect();
        assert_eq!(out, data);
    }

    #[test]
    fn empty_input() {
        let data: Vec<u64> = Vec::new();
        let out: Vec<u64> = data.par_iter().map(|v| *v).collect();
        assert!(out.is_empty());
    }
}
