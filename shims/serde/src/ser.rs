//! Serialization half of the shim.

use std::fmt::Display;

/// Error constructor hook, mirroring `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can serialize itself to any [`Serializer`].
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Sequence sub-serializer (mirrors `serde::ser::SerializeSeq`).
pub trait SerializeSeq {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer (mirrors `serde::ser::SerializeStruct`).
pub trait SerializeStruct {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer (string keys only — all this workspace needs).
pub trait SerializeMap {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one `key: value` entry.
    fn serialize_entry<V: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// The output format driver (single implementation: the JSON shim).
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit (`null`).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None` (`null`).
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a struct (object with known fields).
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Serialize a unit enum variant (externally tagged: just the name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant (externally tagged: `{name: value}`).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a struct enum variant (externally tagged: `{name: {...}}`).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

// ---------------------------------------------------------------------------
// Blanket / container impls.

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}
impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}
impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(3))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

/// Maps serialize with **sorted** keys so output is byte-deterministic
/// (stronger than real serde_json, which follows hash iteration order).
impl<V: Serialize, H: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, H>
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for k in keys {
            map.serialize_entry(k, &self[k])?;
        }
        map.end()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
