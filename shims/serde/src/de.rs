//! Deserialization half of the shim.
//!
//! Unlike real serde this is a *direct-decode* model: `Deserializer` exposes
//! typed `decode_*` methods (the only backend is the JSON value tree), plus a
//! minimal `Visitor`/`SeqAccess` path for streaming sequence formats.

use std::fmt::Display;

/// Error constructor hook, mirroring `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can construct itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Sequence access (mirrors `serde::de::SeqAccess`).
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Sub-deserializer for one element.
    type De: Deserializer<'de, Error = Self::Error>;
    /// The next element's deserializer, or `None` at the end.
    fn next_de(&mut self) -> Option<Self::De>;
    /// Decode the next element, or `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_de().map(T::deserialize).transpose()
    }
    /// Remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Struct (object) access by field name.
pub trait StructAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Sub-deserializer for one field.
    type De: Deserializer<'de, Error = Self::Error>;
    /// Deserializer for a named field (error if absent).
    fn field_de(&mut self, name: &'static str) -> Result<Self::De, Self::Error>;
    /// Deserializer for a named field, or `None` when the field is absent
    /// from the input. Drives `#[serde(default)]`: the derive falls back to
    /// `Default::default()` on `None` instead of erroring, which is how new
    /// reply fields stay readable against old-schema peers.
    fn field_opt_de(&mut self, name: &'static str) -> Result<Option<Self::De>, Self::Error>;
    /// Decode a named field.
    fn field<T: Deserialize<'de>>(&mut self, name: &'static str) -> Result<T, Self::Error> {
        T::deserialize(self.field_de(name)?)
    }
}

/// Map access as (key, value) entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Decode the next entry, or `None` at the end.
    fn next_entry<V: Deserialize<'de>>(&mut self) -> Result<Option<(String, V)>, Self::Error>;
}

/// Access to an externally-tagged enum variant's payload.
pub trait VariantAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Sub-deserializer for a newtype payload.
    type De: Deserializer<'de, Error = Self::Error>;
    /// Struct access for a struct-variant payload.
    type Struct: StructAccess<'de, Error = Self::Error>;
    /// Expect a unit variant (no payload).
    fn unit(self) -> Result<(), Self::Error>;
    /// Expect a newtype payload.
    fn newtype_de(self) -> Result<Self::De, Self::Error>;
    /// Expect a struct payload.
    fn struct_access(self, fields: &'static [&'static str]) -> Result<Self::Struct, Self::Error>;
}

/// Streaming visitor (sequence-only subset of `serde::de::Visitor`).
pub trait Visitor<'de>: Sized {
    /// The produced value.
    type Value;
    /// Human description of the expected input, for errors.
    fn expecting(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result;
    /// Visit a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        struct Exp<'a, V>(&'a V);
        impl<'de, V: Visitor<'de>> Display for Exp<'_, V> {
            fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
                self.0.expecting(f)
            }
        }
        Err(A::Error::custom(format!("unexpected sequence, wanted {}", Exp(&self))))
    }
}

/// The input format driver (single implementation: the JSON shim).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Sequence access type.
    type Seq: SeqAccess<'de, Error = Self::Error>;
    /// Struct access type.
    type Struct: StructAccess<'de, Error = Self::Error>;
    /// Map access type.
    type Map: MapAccess<'de, Error = Self::Error>;
    /// Enum variant access type.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Decode a boolean.
    fn decode_bool(self) -> Result<bool, Self::Error>;
    /// Decode a signed integer.
    fn decode_i64(self) -> Result<i64, Self::Error>;
    /// Decode an unsigned integer.
    fn decode_u64(self) -> Result<u64, Self::Error>;
    /// Decode a float (integers widen).
    fn decode_f64(self) -> Result<f64, Self::Error>;
    /// Decode a string.
    fn decode_string(self) -> Result<String, Self::Error>;
    /// Whether the current value is `null` (drives `Option`).
    fn is_null(&self) -> bool;
    /// Begin sequence access.
    fn decode_seq(self) -> Result<Self::Seq, Self::Error>;
    /// Begin struct access.
    fn decode_struct(self, fields: &'static [&'static str]) -> Result<Self::Struct, Self::Error>;
    /// Begin map access.
    fn decode_map(self) -> Result<Self::Map, Self::Error>;
    /// Decode an externally-tagged enum: `(variant name, payload access)`.
    fn decode_enum(self) -> Result<(String, Self::Variant), Self::Error>;
    /// Visitor-driven sequence decoding (streaming wire formats).
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        visitor.visit_seq(self.decode_seq()?)
    }
}

// ---------------------------------------------------------------------------
// Primitive / container impls.

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.decode_i64()?;
                <$t>::try_from(v).map_err(|_| D::Error::custom(
                    format!("integer {v} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.decode_u64()?;
                <$t>::try_from(v).map_err(|_| D::Error::custom(
                    format!("integer {v} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);
de_uint!(u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.decode_f64()
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(d.decode_f64()? as f32)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.decode_bool()
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.decode_string()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        if d.is_null() {
            Ok(None)
        } else {
            T::deserialize(d).map(Some)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut seq = d.decode_seq()?;
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
        while let Some(v) = seq.next_element()? {
            out.push(v);
        }
        Ok(out)
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut seq = d.decode_seq()?;
        let missing = || D::Error::custom("tuple of 2: missing element");
        let a = seq.next_element()?.ok_or_else(missing)?;
        let b = seq.next_element()?.ok_or_else(missing)?;
        Ok((a, b))
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut seq = d.decode_seq()?;
        let missing = || D::Error::custom("tuple of 3: missing element");
        let a = seq.next_element()?.ok_or_else(missing)?;
        let b = seq.next_element()?.ok_or_else(missing)?;
        let c = seq.next_element()?.ok_or_else(missing)?;
        Ok((a, b, c))
    }
}

impl<'de, V: Deserialize<'de>, H: std::hash::BuildHasher + Default> Deserialize<'de>
    for std::collections::HashMap<String, V, H>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut map = d.decode_map()?;
        let mut out = Self::default();
        while let Some((k, v)) = map.next_entry()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut map = d.decode_map()?;
        let mut out = Self::new();
        while let Some((k, v)) = map.next_entry()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}
