//! In-tree shim of the `serde` facade: the trait subset this workspace uses,
//! shaped for a single JSON backend (`serde_json` shim). The build
//! environment is offline, so the real crates cannot be fetched; this shim
//! keeps the familiar `#[derive(Serialize, Deserialize)]` surface working.
//!
//! Deliberate simplifications vs real serde:
//! - the `Deserializer` trait is *direct-decode* (no visitor dance) except
//!   for a small `Visitor`/`SeqAccess` path kept for streaming sequence
//!   formats (the sketch wire format uses it);
//! - maps serialize with sorted keys so output is byte-deterministic.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
