//! In-tree shim of the `criterion` API subset this workspace's benches use.
//!
//! Each `Bencher::iter` measurement runs a short warmup, then timed samples,
//! and records the per-iteration mean. Results print to stdout and are
//! written as JSON to `target/criterion-mini/<bench>.json` (override the
//! directory with `CRITERION_OUT_DIR`) so `scripts/bench_snapshot.sh` can
//! track the perf trajectory across PRs.
//!
//! Tuning: `MILEENA_BENCH_MS` (default 200) bounds the measuring time per
//! benchmark, so full suites stay fast on CI.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier "function/parameter" for parameterized benches.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("label", param)` → `"label/param"`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    bench: String,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 10 }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, &mut f);
        group.finish();
    }

    /// Write the JSON report. Called by `criterion_main!`.
    pub fn finalize(&self) {
        let dir = std::env::var("CRITERION_OUT_DIR")
            .unwrap_or_else(|_| "target/criterion-mini".to_string());
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let exe = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "bench".to_string());
        // Cargo suffixes bench executables with a metadata hash: strip it.
        let stem = match exe.rsplit_once('-') {
            Some((base, hash))
                if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
            {
                base.to_string()
            }
            _ => exe,
        };
        let mut json = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"mean_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}}}",
                r.group, r.bench, r.mean_ns, r.samples, r.iters_per_sample,
            ));
        }
        json.push_str("\n]\n");
        let _ = std::fs::write(format!("{dir}/{stem}.json"), json);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        self.run(name.to_string(), &mut f);
    }

    /// Run a parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.id, &mut |b| f(b, input));
    }

    /// Flush the group (printing happens as benches run).
    pub fn finish(self) {}

    fn run(&mut self, bench: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { samples: self.sample_size, result: None };
        f(&mut bencher);
        let Some((mean_ns, samples, iters)) = bencher.result else { return };
        let label =
            if self.name.is_empty() { bench.clone() } else { format!("{}/{}", self.name, bench) };
        println!("bench {label:<50} {:>12.2} µs/iter ({samples} samples)", mean_ns / 1e3);
        self.criterion.records.push(Record {
            group: self.name.clone(),
            bench,
            mean_ns,
            samples,
            iters_per_sample: iters,
        });
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    samples: usize,
    result: Option<(f64, usize, u64)>,
}

impl Bencher {
    /// Measure `routine`: mean wall-clock per call over timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget_ms: u64 =
            std::env::var("MILEENA_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
        let budget = Duration::from_millis(budget_ms);

        // Warmup + cost estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(50));

        // Pick iterations per sample so one sample ≈ budget / samples.
        let per_sample = budget / (self.samples as u32);
        let iters: u64 = (per_sample.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        let mut samples_done = 0usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += t.elapsed();
            total_iters += iters;
            samples_done += 1;
            // Hard cap: never exceed ~2× the budget even if the estimate
            // was off (first call often hits cold caches).
            if run_start.elapsed() > budget * 2 {
                break;
            }
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        self.result = Some((mean_ns, samples_done, iters));
    }
}

/// Define a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Define `main` for a bench binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes bench targets with `--test`: nothing to do.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}
