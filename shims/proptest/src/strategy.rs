//! Strategies: typed random-value generators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}
impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad-magnitude floats (whole-bitspace would mostly be
        // NaN/subnormal noise for numeric code).
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.below(41) as i32) - 20;
        (mantissa * 2.0 - 1.0) * (2f64).powi(exp)
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
