//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable size specifications for [`vec`]: an exact length or a range.
pub trait IntoSize {
    /// Draw a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSize for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}
impl IntoSize for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}
impl IntoSize for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy producing `Vec`s of a given element strategy and size spec.
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}
