//! In-tree shim of `proptest`: the `proptest!` macro, range/tuple/vec/map
//! strategies, and `prop_assert*` — enough to run this workspace's property
//! tests. Cases are generated from a per-test deterministic seed (derived
//! from the test name), so failures reproduce; there is no shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __cfg.cases, e,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failures report the condition and case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both were {:?}", l);
    }};
}
