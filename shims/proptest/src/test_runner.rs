//! Config, deterministic RNG, and the error type carried by `prop_assert*`.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: env_case_floor(64) }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count. `MILEENA_PROPTEST_CASES` acts
    /// as a floor so CI can widen every property suite without touching
    /// in-source counts (mirrors `MILEENA_CHAOS_SEEDS`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: env_case_floor(cases) }
    }
}

fn env_case_floor(cases: u32) -> u32 {
    std::env::var("MILEENA_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map_or(cases, |floor| floor.max(cases))
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for TestCaseError {}

/// splitmix64 generator, seeded from the test name so each property has a
/// stable, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}
