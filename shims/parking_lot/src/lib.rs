//! In-tree shim of `parking_lot`: the `Mutex`/`RwLock` API this workspace
//! uses, backed by `std::sync`. Poisoning is swallowed (parking_lot has no
//! poisoning), so a panic while holding a lock does not cascade.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with `lock()` returning the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
