//! In-tree shim of `rand` 0.8: `StdRng`, `SeedableRng`, `Rng::gen` /
//! `gen_range`, and `seq::SliceRandom::shuffle` — everything this workspace
//! touches. The generator is xoshiro256** seeded via splitmix64 (not the
//! real `StdRng` stream; all in-tree consumers only need determinism per
//! seed, not stream compatibility).

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Derive a full state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from raw bits via the `Rng::gen` shorthand.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform integer in `[0, span)` by widening rejection-free multiply.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // 64-bit multiply-shift is enough: spans here are far below 2^64.
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}
impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start() + u * (self.end() - self.start())
    }
}

/// The user-facing sampling surface, blanket-implemented for all cores.
pub trait Rng: RngCore {
    /// Sample a `Standard` value (`rng.gen::<f64>()` → uniform [0,1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — splitmix64-seeded, fast, and solid for simulation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Shuffle/choose extensions on slices (subset of rand's trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.gen::<f64>(), b.gen::<f64>(), c.gen::<f64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..5);
            assert!((-3..5).contains(&v));
            let w = rng.gen_range(1..=4i64);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
        // Both range ends are reachable.
        let hits: std::collections::HashSet<i64> =
            (0..200).map(|_| rng.gen_range(0..=3i64)).collect();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }
}
