//! Streaming JSON serializer: writes straight into a `String` buffer with
//! no intermediate tree, so serializing borrowed data allocates nothing
//! beyond the output itself.

use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct, Serializer};
use serde::Serialize;

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::with_capacity(128);
    value.serialize(JsonSer { out: &mut out })?;
    Ok(out)
}

/// Borrowing serializer over a shared output buffer.
pub struct JsonSer<'a> {
    out: &'a mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest round-trip; integral values
        // print without a fraction and parse back as JSON integers, which
        // decode_f64 widens again — lossless either way.
        out.push_str(&v.to_string());
    } else {
        // Mirrors real serde_json's only representable choice.
        out.push_str("null");
    }
}

/// Writes `[a,b,...]`.
pub struct JsonSeqSer<'a> {
    out: &'a mut String,
    first: bool,
}

/// Writes `{"k":v,...}` (optionally nested one level for struct variants).
pub struct JsonObjSer<'a> {
    out: &'a mut String,
    first: bool,
    /// Struct variants wrap the object in `{"Variant": ... }`.
    close_variant: bool,
}

impl<'a> Serializer for JsonSer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = JsonSeqSer<'a>;
    type SerializeStruct = JsonObjSer<'a>;
    type SerializeMap = JsonObjSer<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }
    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeqSer<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeqSer { out: self.out, first: true })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonObjSer<'a>, Error> {
        self.out.push('{');
        Ok(JsonObjSer { out: self.out, first: true, close_variant: false })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<JsonObjSer<'a>, Error> {
        self.out.push('{');
        Ok(JsonObjSer { out: self.out, first: true, close_variant: false })
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant: &'static str,
    ) -> Result<(), Error> {
        write_escaped(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(JsonSer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant: &'static str,
        _len: usize,
    ) -> Result<JsonObjSer<'a>, Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(JsonObjSer { out: self.out, first: true, close_variant: true })
    }
}

impl SerializeSeq for JsonSeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        Ok(())
    }
}

impl SerializeStruct for JsonObjSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        if self.close_variant {
            self.out.push('}');
        }
        Ok(())
    }
}

impl SerializeMap for JsonObjSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_entry<V: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &V,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        if self.close_variant {
            self.out.push('}');
        }
        Ok(())
    }
}
