//! In-tree shim of `serde_json`: `to_string` / `from_str` over the serde
//! shim's traits. Serialization streams straight into a `String`;
//! deserialization parses to a [`Value`] tree and decodes from borrowed
//! nodes (zero clones of the tree during decoding).
//!
//! Format notes (self-consistent; mirrors real serde_json where it matters):
//! - structs/maps → objects; maps emit **sorted** keys (determinism);
//! - enums are externally tagged: `"Variant"`, `{"Variant": payload}`;
//! - integers print without a fraction, floats use Rust's shortest
//!   round-trip formatting; non-finite floats serialize as `null`.

mod parse;
mod ser;
mod value;

pub use parse::from_str;
pub use ser::to_string;
pub use value::Value;

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}
impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
