//! Recursive-descent JSON parser into the [`Value`] tree.

use crate::value::{Value, ValueDe};
use crate::Error;
use serde::de::Error as DeError;

/// Parse a JSON document and deserialize `T` from it. `T` must be owned
/// (`for<'de> Deserialize<'de>`, i.e. serde's `DeserializeOwned`): the tree
/// lives only for the duration of this call.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let value = parse_document(input)?;
    // The tree outlives the deserializer only within this call; decoding
    // clones out whatever it keeps, so the borrow never escapes.
    T::deserialize(ValueDe(&value))
}

fn parse_document(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!("expected `{}` at byte {}", ch as char, pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("bad array at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom(format!("bad object at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("bad literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        // Bulk fast path: copy the maximal escape-free run in one
        // `push_str` instead of per-char pushes (`"` and `\` are ASCII, so
        // byte scanning can't split a UTF-8 sequence). This is the hot
        // loop of snapshot recovery — string content dominates the bytes
        // of a serialized sketch corpus.
        let run_start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            *pos += 1;
        }
        if *pos > run_start {
            let run = &bytes[run_start..*pos];
            // Input arrived as &str, and the run ends before an ASCII
            // delimiter, so it sits on UTF-8 boundaries.
            out.push_str(unsafe { std::str::from_utf8_unchecked(run) });
        }
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        // Surrogate pairs: decode the low half if present.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            let rest = bytes.get(*pos + 5..*pos + 11);
                            let (lo, consumed) = match rest {
                                Some([b'\\', b'u', h @ ..]) if h.len() == 4 => {
                                    let h = std::str::from_utf8(h)
                                        .map_err(|_| Error::custom("bad surrogate"))?;
                                    let lo = u32::from_str_radix(h, 16)
                                        .map_err(|_| Error::custom("bad surrogate"))?;
                                    (lo, 6)
                                }
                                _ => return Err(Error::custom("lone high surrogate")),
                            };
                            *pos += consumed;
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| Error::custom("bad surrogate"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| Error::custom("bad codepoint"))?
                        };
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("bad escape")),
                }
                *pos += 1;
            }
            // Unreachable: the bulk scan above stops only at `"`, `\`, or
            // end of input.
            Some(_) => unreachable!("bulk scan consumes unescaped bytes"),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Int(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::UInt(v));
        }
    }
    text.parse::<f64>().map(Value::Float).map_err(|_| Error::custom(format!("bad number `{text}`")))
}
