//! The parsed JSON tree and its deserializer implementation.

use crate::Error;
use serde::de::{
    Deserializer, Error as DeError, MapAccess, SeqAccess, StructAccess, VariantAccess,
};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (no fraction/exponent in the literal, fits i64).
    Int(i64),
    /// Unsigned integer too large for i64.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Borrowed-node deserializer.
pub struct ValueDe<'a>(pub(crate) &'a Value);

/// Sequence access over an array node.
pub struct SeqDe<'a> {
    items: std::slice::Iter<'a, Value>,
}

/// Struct access over an object node.
pub struct StructDe<'a> {
    entries: &'a [(String, Value)],
}

/// Map access over an object node.
pub struct MapDe<'a> {
    entries: std::slice::Iter<'a, (String, Value)>,
}

/// Variant payload access.
pub struct VariantDe<'a>(Option<&'a Value>);

impl<'de> Deserializer<'de> for ValueDe<'de> {
    type Error = Error;
    type Seq = SeqDe<'de>;
    type Struct = StructDe<'de>;
    type Map = MapDe<'de>;
    type Variant = VariantDe<'de>;

    fn decode_bool(self) -> Result<bool, Error> {
        match self.0 {
            Value::Bool(b) => Ok(*b),
            v => Err(Error::custom(format!("expected bool, got {}", v.kind()))),
        }
    }

    fn decode_i64(self) -> Result<i64, Error> {
        match self.0 {
            Value::Int(v) => Ok(*v),
            Value::UInt(v) => {
                i64::try_from(*v).map_err(|_| Error::custom(format!("unsigned {v} exceeds i64")))
            }
            v => Err(Error::custom(format!("expected integer, got {}", v.kind()))),
        }
    }

    fn decode_u64(self) -> Result<u64, Error> {
        match self.0 {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) => u64::try_from(*v)
                .map_err(|_| Error::custom(format!("negative {v} is not unsigned"))),
            v => Err(Error::custom(format!("expected integer, got {}", v.kind()))),
        }
    }

    fn decode_f64(self) -> Result<f64, Error> {
        match self.0 {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            // Real serde_json can't represent non-finite floats either; the
            // serializer writes them as null, so accept null back as NaN.
            Value::Null => Ok(f64::NAN),
            v => Err(Error::custom(format!("expected number, got {}", v.kind()))),
        }
    }

    fn decode_string(self) -> Result<String, Error> {
        match self.0 {
            Value::Str(s) => Ok(s.clone()),
            v => Err(Error::custom(format!("expected string, got {}", v.kind()))),
        }
    }

    fn is_null(&self) -> bool {
        matches!(self.0, Value::Null)
    }

    fn decode_seq(self) -> Result<SeqDe<'de>, Error> {
        match self.0 {
            Value::Array(items) => Ok(SeqDe { items: items.iter() }),
            v => Err(Error::custom(format!("expected array, got {}", v.kind()))),
        }
    }

    fn decode_struct(self, _fields: &'static [&'static str]) -> Result<StructDe<'de>, Error> {
        match self.0 {
            Value::Object(entries) => Ok(StructDe { entries }),
            v => Err(Error::custom(format!("expected object, got {}", v.kind()))),
        }
    }

    fn decode_map(self) -> Result<MapDe<'de>, Error> {
        match self.0 {
            Value::Object(entries) => Ok(MapDe { entries: entries.iter() }),
            v => Err(Error::custom(format!("expected object, got {}", v.kind()))),
        }
    }

    fn decode_enum(self) -> Result<(String, VariantDe<'de>), Error> {
        match self.0 {
            // Unit variant: bare string tag.
            Value::Str(tag) => Ok((tag.clone(), VariantDe(None))),
            // Tagged variant: single-entry object.
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.clone(), VariantDe(Some(&entries[0].1))))
            }
            v => Err(Error::custom(format!(
                "expected enum (string or 1-entry object), got {}",
                v.kind()
            ))),
        }
    }
}

impl<'de> SeqAccess<'de> for SeqDe<'de> {
    type Error = Error;
    type De = ValueDe<'de>;
    fn next_de(&mut self) -> Option<ValueDe<'de>> {
        self.items.next().map(ValueDe)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

impl<'de> StructAccess<'de> for StructDe<'de> {
    type Error = Error;
    type De = ValueDe<'de>;
    fn field_de(&mut self, name: &'static str) -> Result<ValueDe<'de>, Error> {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| ValueDe(v))
            .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
    }
    fn field_opt_de(&mut self, name: &'static str) -> Result<Option<ValueDe<'de>>, Error> {
        Ok(self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| ValueDe(v)))
    }
}

impl<'de> MapAccess<'de> for MapDe<'de> {
    type Error = Error;
    fn next_entry<V: serde::de::Deserialize<'de>>(&mut self) -> Result<Option<(String, V)>, Error> {
        match self.entries.next() {
            None => Ok(None),
            Some((k, v)) => Ok(Some((k.clone(), V::deserialize(ValueDe(v))?))),
        }
    }
}

impl<'de> VariantAccess<'de> for VariantDe<'de> {
    type Error = Error;
    type De = ValueDe<'de>;
    type Struct = StructDe<'de>;

    fn unit(self) -> Result<(), Error> {
        match self.0 {
            None | Some(Value::Null) => Ok(()),
            Some(v) => Err(Error::custom(format!("unit variant has payload {}", v.kind()))),
        }
    }

    fn newtype_de(self) -> Result<ValueDe<'de>, Error> {
        self.0.map(ValueDe).ok_or_else(|| Error::custom("newtype variant missing payload"))
    }

    fn struct_access(self, fields: &'static [&'static str]) -> Result<StructDe<'de>, Error> {
        match self.0 {
            Some(v) => ValueDe(v).decode_struct(fields),
            None => Err(Error::custom("struct variant missing payload")),
        }
    }
}
