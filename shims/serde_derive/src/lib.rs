//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Supports exactly the shapes this workspace uses: non-generic named-field
//! structs and enums whose variants are unit, one-field tuple ("newtype"),
//! or named-field structs. Two field attributes are honored:
//! `#[serde(with = "module")]`, delegating to `module::{serialize,
//! deserialize}`, and `#[serde(default)]`, which substitutes
//! `Default::default()` when the field is absent from the input (the
//! schema-evolution hook for additive wire fields). Anything else fails
//! loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    with: Option<String>,
    default: bool,
}

/// Parsed `#[serde(...)]` field attributes.
#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    /// One-field tuple struct, serialized transparently as its inner value.
    NewtypeStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_ser_struct(name, fields),
        Item::NewtypeStruct { name } => gen_ser_newtype(name),
        Item::Enum { name, variants } => gen_ser_enum(name, variants),
    };
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_de_struct(name, fields),
        Item::NewtypeStruct { name } => gen_de_newtype(name),
        Item::Enum { name, variants } => gen_de_enum(name, variants),
    };
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip attributes, accumulating any `#[serde(...)]` field options found.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde_derive: `#` not followed by attribute group");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        parse_serde_args(args.stream(), &mut attrs);
                    }
                }
            }
        }
        attrs
    }

    /// Skip `pub`, `pub(crate)` etc.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

fn parse_serde_args(args: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match (toks.get(i), toks.get(i + 1), toks.get(i + 2)) {
            (
                Some(TokenTree::Ident(key)),
                Some(TokenTree::Punct(eq)),
                Some(TokenTree::Literal(lit)),
            ) if key.to_string() == "with" && eq.as_char() == '=' => {
                let s = lit.to_string();
                attrs.with = Some(s.trim_matches('"').to_string());
                i += 3;
            }
            (Some(TokenTree::Ident(key)), _, _) if key.to_string() == "default" => {
                attrs.default = true;
                i += 1;
            }
            _ => panic!(
                "serde_derive: only `#[serde(with = \"module\")]` and `#[serde(default)]` \
                 are supported"
            ),
        }
        // Optional comma between options.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();
    let kind = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type {name})");
    }
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => match kind.as_str() {
            "struct" => Item::Struct { name, fields: parse_fields(g.stream()) },
            "enum" => Item::Enum { name, variants: parse_variants(g.stream()) },
            other => panic!("serde_derive: cannot derive for `{other}` items"),
        },
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Item::NewtypeStruct { name }
        }
        other => panic!("serde_derive: expected body for {name}, got {other:?}"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field {name}, got {other:?}"),
        }
        // Collect the type up to a top-level comma (angle-bracket aware).
        let mut depth = 0i32;
        let mut ty = String::new();
        while let Some(tok) = cur.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        cur.next();
                        break;
                    }
                    _ => {}
                }
            }
            let tok = cur.next().unwrap();
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tok.to_string());
        }
        fields.push(Field { name, ty, with: attrs.with, default: attrs.default });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(body);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                let has_comma = {
                    let mut depth = 0i32;
                    let mut comma = false;
                    for t in g.clone() {
                        if let TokenTree::Punct(p) = &t {
                            match p.as_char() {
                                '<' => depth += 1,
                                '>' => depth -= 1,
                                ',' if depth == 0 => comma = true,
                                _ => {}
                            }
                        }
                    }
                    comma
                };
                if has_comma {
                    panic!("serde_derive: multi-field tuple variants unsupported ({name})");
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                cur.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Trailing comma between variants.
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize

fn ser_field(target: &str, f: &Field, value_expr: &str) -> String {
    match &f.with {
        None => format!(
            "::serde::ser::SerializeStruct::serialize_field(&mut {target}, \"{n}\", {v})?;\n",
            n = f.name,
            v = value_expr,
        ),
        Some(with) => format!(
            "{{
                struct __SerdeWith<'__a>(&'__a {ty});
                impl ::serde::ser::Serialize for __SerdeWith<'_> {{
                    fn serialize<__S2: ::serde::ser::Serializer>(
                        &self, __s2: __S2,
                    ) -> ::std::result::Result<__S2::Ok, __S2::Error> {{
                        {with}::serialize(self.0, __s2)
                    }}
                }}
                ::serde::ser::SerializeStruct::serialize_field(
                    &mut {target}, \"{n}\", &__SerdeWith({v}),
                )?;
            }}\n",
            ty = f.ty,
            n = f.name,
            v = value_expr,
        ),
    }
}

fn gen_ser_struct(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&ser_field("__st", f, &format!("&self.{}", f.name)));
    }
    format!(
        "#[automatically_derived]
        impl ::serde::ser::Serialize for {name} {{
            fn serialize<__S: ::serde::ser::Serializer>(
                &self, __s: __S,
            ) -> ::std::result::Result<__S::Ok, __S::Error> {{
                #[allow(unused_mut)]
                let mut __st = ::serde::ser::Serializer::serialize_struct(__s, \"{name}\", {len})?;
                {body}
                ::serde::ser::SerializeStruct::end(__st)
            }}
        }}",
        len = fields.len(),
    )
}

fn gen_ser_newtype(name: &str) -> String {
    format!(
        "#[automatically_derived]
        impl ::serde::ser::Serialize for {name} {{
            fn serialize<__S: ::serde::ser::Serializer>(
                &self, __s: __S,
            ) -> ::std::result::Result<__S::Ok, __S::Error> {{
                ::serde::ser::Serialize::serialize(&self.0, __s)
            }}
        }}",
    )
}

fn gen_de_newtype(name: &str) -> String {
    format!(
        "#[automatically_derived]
        impl<'de> ::serde::de::Deserialize<'de> for {name} {{
            fn deserialize<__D: ::serde::de::Deserializer<'de>>(
                __d: __D,
            ) -> ::std::result::Result<Self, __D::Error> {{
                ::std::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))
            }}
        }}",
    )
}

fn gen_ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::ser::Serializer::serialize_unit_variant(__s, \"{name}\", \"{vn}\"),\n",
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "{name}::{vn}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__s, \"{name}\", \"{vn}\", __f0),\n",
            )),
            VariantKind::Struct(fields) => {
                let bind: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut body = String::new();
                for f in fields {
                    body.push_str(&ser_field("__sv", f, &f.name));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{
                        #[allow(unused_mut)]
                        let mut __sv = ::serde::ser::Serializer::serialize_struct_variant(__s, \"{name}\", \"{vn}\", {len})?;
                        {body}
                        ::serde::ser::SerializeStruct::end(__sv)
                    }}\n",
                    binds = bind.join(", "),
                    len = fields.len(),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]
        impl ::serde::ser::Serialize for {name} {{
            fn serialize<__S: ::serde::ser::Serializer>(
                &self, __s: __S,
            ) -> ::std::result::Result<__S::Ok, __S::Error> {{
                match self {{
                    {arms}
                }}
            }}
        }}",
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize

fn de_field(f: &Field) -> String {
    match (&f.with, f.default) {
        (None, false) => format!(
            "{n}: ::serde::de::StructAccess::field(&mut __st, \"{n}\")?,\n",
            n = f.name,
        ),
        (Some(with), false) => format!(
            "{n}: {with}::deserialize(::serde::de::StructAccess::field_de(&mut __st, \"{n}\")?)?,\n",
            n = f.name,
        ),
        (None, true) => format!(
            "{n}: match ::serde::de::StructAccess::field_opt_de(&mut __st, \"{n}\")? {{
                ::std::option::Option::Some(__de) => ::serde::de::Deserialize::deserialize(__de)?,
                ::std::option::Option::None => ::std::default::Default::default(),
            }},\n",
            n = f.name,
        ),
        (Some(with), true) => format!(
            "{n}: match ::serde::de::StructAccess::field_opt_de(&mut __st, \"{n}\")? {{
                ::std::option::Option::Some(__de) => {with}::deserialize(__de)?,
                ::std::option::Option::None => ::std::default::Default::default(),
            }},\n",
            n = f.name,
        ),
    }
}

fn field_name_list(fields: &[Field]) -> String {
    fields.iter().map(|f| format!("\"{}\"", f.name)).collect::<Vec<_>>().join(", ")
}

fn gen_de_struct(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&de_field(f));
    }
    format!(
        "#[automatically_derived]
        impl<'de> ::serde::de::Deserialize<'de> for {name} {{
            fn deserialize<__D: ::serde::de::Deserializer<'de>>(
                __d: __D,
            ) -> ::std::result::Result<Self, __D::Error> {{
                #[allow(unused_mut)]
                let mut __st = ::serde::de::Deserializer::decode_struct(__d, &[{names}])?;
                ::std::result::Result::Ok({name} {{ {body} }})
            }}
        }}",
        names = field_name_list(fields),
    )
}

fn gen_de_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "\"{vn}\" => {{
                    ::serde::de::VariantAccess::unit(__var)?;
                    ::std::result::Result::Ok({name}::{vn})
                }}\n",
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(
                    ::serde::de::Deserialize::deserialize(
                        ::serde::de::VariantAccess::newtype_de(__var)?,
                    )?,
                )),\n",
            )),
            VariantKind::Struct(fields) => {
                let mut body = String::new();
                for f in fields {
                    body.push_str(&de_field(f));
                }
                arms.push_str(&format!(
                    "\"{vn}\" => {{
                        #[allow(unused_mut)]
                        let mut __st = ::serde::de::VariantAccess::struct_access(__var, &[{names}])?;
                        ::std::result::Result::Ok({name}::{vn} {{ {body} }})
                    }}\n",
                    names = field_name_list(fields),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]
        impl<'de> ::serde::de::Deserialize<'de> for {name} {{
            fn deserialize<__D: ::serde::de::Deserializer<'de>>(
                __d: __D,
            ) -> ::std::result::Result<Self, __D::Error> {{
                let (__tag, __var) = ::serde::de::Deserializer::decode_enum(__d)?;
                match __tag.as_str() {{
                    {arms}
                    __other => ::std::result::Result::Err(
                        <__D::Error as ::serde::de::Error>::custom(
                            format!(\"unknown variant `{{}}` for {name}\", __other),
                        ),
                    ),
                }}
            }}
        }}",
    )
}
