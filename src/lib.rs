//! # Mileena — fast, private, task-based dataset search
//!
//! A from-scratch Rust implementation of the system described in
//! *"The Fast and the Private: Task-based Dataset Search"* (CIDR 2024):
//! given an ML task (training/test relations + model + privacy budget),
//! find the datasets in a corpus whose join or union most improves the
//! model — evaluating each candidate in milliseconds via pre-computed
//! semi-ring sketches, under differential privacy via the Factorized
//! Privacy Mechanism.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`relation`] | `mileena-relation` | columnar relations, join/union/group-by |
//! | [`semiring`] | `mileena-semiring` | covariance semi-ring, aggregation pushdown |
//! | [`sketch`] | `mileena-sketch` | pre-computed per-dataset/per-key sketches |
//! | [`discovery`] | `mileena-discovery` | MinHash/TF-IDF join & union candidates |
//! | [`ml`] | `mileena-ml` | ridge LR over sufficient stats, GBDT, MLP, kNN, AutoML |
//! | [`privacy`] | `mileena-privacy` | (ε,δ) accounting, FPM, APM/TPM baselines |
//! | [`search`] | `mileena-search` | greedy proxy search, ARDA/Novelty baselines |
//! | [`transform`] | `mileena-transform` | EDA/Coder/Debugger/Reviewer agents |
//! | [`causal`] | `mileena-causal` | direction tests, skeletons, DP ATE |
//! | [`datagen`] | `mileena-datagen` | NYC-like corpus, Airbnb-like table, SCM |
//! | [`storage`] | `mileena-storage` | WAL + snapshot engine (crash recovery, checkpoints) |
//! | [`core`] | `mileena-core` | LocalDataStore + CentralPlatform + `PlatformService` (versioned wire protocol, sessions, durability) |
//!
//! The service boundary is sketches-only: requesters sketch locally
//! (`core::SearchRequestBuilder`) and talk to the platform through a
//! `core::PlatformService` transport (`InProcess` or `JsonWire`); raw
//! relations cannot cross (see DESIGN.md, "Service boundary & wire
//! protocol").
//!
//! See `examples/quickstart.rs` for the five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

pub use mileena_causal as causal;
pub use mileena_core as core;
pub use mileena_datagen as datagen;
pub use mileena_discovery as discovery;
pub use mileena_ml as ml;
pub use mileena_privacy as privacy;
pub use mileena_relation as relation;
pub use mileena_search as search;
pub use mileena_semiring as semiring;
pub use mileena_sketch as sketch;
pub use mileena_storage as storage;
pub use mileena_transform as transform;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_subsystems() {
        // Compile-time smoke test that the re-exports resolve.
        let _ = crate::relation::RelationBuilder::new("t");
        let _ = crate::semiring::CovarTriple::one();
        assert!(!crate::VERSION.is_empty());
    }
}
