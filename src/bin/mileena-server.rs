//! `mileena-server` — the platform behind a real TCP socket.
//!
//! Boots a [`CentralPlatform`] (or, with `--shards` above 1, a
//! [`ShardedPlatform`]), optionally durable under `--dir`, and serves the
//! length-prefixed
//! JSON frame protocol of `mileena_core::net` until stdin closes or a
//! `shutdown` line arrives. Shutdown is graceful: the listener stops
//! accepting, in-flight sessions drain and flush their results, storage is
//! checkpointed, the slow-search log is flushed, and the process exits 0.
//!
//! ```text
//! mileena-server [--addr 127.0.0.1:0] [--dir PATH] [--shards N]
//!                [--queue-depth N] [--max-sessions N]
//!                [--slow-search-ms MS] [--metrics-interval SECS]
//! ```
//!
//! The bound address is printed to stdout as `listening on <addr>` (with
//! the OS-assigned port when `--addr` ends in `:0`), so harnesses can
//! parse it.
//!
//! **Telemetry surface.**
//!
//! - `--slow-search-ms MS` (default 500; 0 disables): searches whose total
//!   wall clock crossed the threshold emit one JSONL record to stderr with
//!   the session id, the wire `request_id`, and the full per-stage span
//!   breakdown.
//! - `--metrics-interval SECS` (default 0 = off): dump the Prometheus-style
//!   metrics text to stderr every SECS seconds.
//! - The stdin line `metrics` dumps the same text to stdout on demand,
//!   terminated by an `# EOF` line so harnesses know where it ends.
//!
//! **Chaos drill surface.** `--chaos-shard-permille P` arms a
//! deterministic shard-call fault plan (crash faults at P‰ per shard
//! call; seed from the first `MILEENA_CHAOS_SEEDS` entry, default 11) so
//! harnesses can rehearse shard loss against the real binary. The stdin
//! lines `chaos off` / `chaos on` disarm/re-arm the plan at runtime —
//! each is acknowledged on stdout (`chaos off` / `chaos on`) so scripts
//! can sequence the drill. Quarantined shards then heal through the
//! supervised-recovery path on the next strict search.

use mileena_core::{
    CentralPlatform, PlatformConfig, PlatformService, ShardedPlatform, StoragePolicy, TcpServer,
    TcpServerConfig,
};
use mileena_obs::{render_prometheus, SlowSearchLog};
use mileena_storage::{FaultKind, FaultPlan, FaultSite};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    dir: Option<std::path::PathBuf>,
    shards: usize,
    queue_depth: Option<usize>,
    max_sessions: Option<usize>,
    /// Slow-search threshold, milliseconds; 0 disables the log.
    slow_search_ms: u64,
    /// Periodic metrics-dump interval, seconds; 0 disables the dump.
    metrics_interval: u64,
    /// Shard-call crash-fault rate, permille; 0 disables the chaos plan.
    chaos_shard_permille: u16,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        dir: None,
        shards: 1,
        queue_depth: None,
        max_sessions: None,
        slow_search_ms: 500,
        metrics_interval: 0,
        chaos_shard_permille: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--dir" => args.dir = Some(value("--dir")?.into()),
            "--shards" => {
                args.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth = Some(
                    value("--queue-depth")?.parse().map_err(|e| format!("--queue-depth: {e}"))?,
                )
            }
            "--max-sessions" => {
                args.max_sessions = Some(
                    value("--max-sessions")?.parse().map_err(|e| format!("--max-sessions: {e}"))?,
                )
            }
            "--slow-search-ms" => {
                args.slow_search_ms = value("--slow-search-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-search-ms: {e}"))?
            }
            "--metrics-interval" => {
                args.metrics_interval = value("--metrics-interval")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval: {e}"))?
            }
            "--chaos-shard-permille" => {
                args.chaos_shard_permille = value("--chaos-shard-permille")?
                    .parse()
                    .map_err(|e| format!("--chaos-shard-permille: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: mileena-server [--addr A] [--dir P] [--shards N] \
                            [--queue-depth N] [--max-sessions N] [--slow-search-ms MS] \
                            [--metrics-interval SECS] [--chaos-shard-permille P]"
                    .to_string())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// The deterministic shard-kill plan behind `--chaos-shard-permille`:
/// crash faults on the shard-call site, seeded from the first
/// `MILEENA_CHAOS_SEEDS` entry (default 11). Armed at boot.
fn chaos_plan(permille: u16) -> Option<Arc<FaultPlan>> {
    if permille == 0 {
        return None;
    }
    let seed = std::env::var("MILEENA_CHAOS_SEEDS")
        .ok()
        .and_then(|raw| raw.split(',').next().and_then(|s| s.trim().parse().ok()))
        .unwrap_or(11);
    let plan = Arc::new(FaultPlan::new(seed).with(
        FaultSite::ShardCall,
        FaultKind::Panic,
        u64::from(permille),
    ));
    plan.arm();
    Some(plan)
}

/// The platform, durable if `--dir` was given, sharded if `--shards` > 1.
fn build_service(
    args: &Args,
    plan: Option<Arc<FaultPlan>>,
) -> Result<Arc<dyn PlatformService + Send + Sync>, String> {
    let mut config = PlatformConfig { shards: args.shards, ..Default::default() };
    if let Some(depth) = args.queue_depth {
        config.scheduler.queue_depth = depth;
    }
    if let Some(max) = args.max_sessions {
        config.max_concurrent_sessions = max;
    }
    if let Some(dir) = &args.dir {
        config.storage = Some(StoragePolicy::at(dir));
    }
    config.scheduler.faults = plan;
    if args.shards > 1 {
        let platform = if config.storage.is_some() {
            ShardedPlatform::open_with(config).map_err(|e| e.to_string())?
        } else {
            ShardedPlatform::new(config)
        };
        restart_report(platform.recovery_report(), platform.num_datasets());
        Ok(Arc::new(platform))
    } else {
        let platform = if config.storage.is_some() {
            CentralPlatform::open_with(config).map_err(|e| e.to_string())?
        } else {
            CentralPlatform::new(config)
        };
        restart_report(platform.recovery_report(), platform.num_datasets());
        Ok(Arc::new(platform))
    }
}

/// One-line restart report on stderr (stdout's first line must stay the
/// `listening on` banner harnesses parse). Printed once recovery's eager
/// phase is done — lazy sketches keep hydrating after this line while the
/// server already answers searches.
fn restart_report(recovery: Option<mileena_core::RecoveryReport>, datasets: usize) {
    let Some(r) = recovery else { return };
    eprintln!(
        "restart: snapshot seq {} + {} delta(s), {} bytes, {datasets} dataset(s) \
         ({} lazy), replayed {} record(s), eager {} ms (replay {} ms)",
        r.snapshot_seq.map_or_else(|| "none".to_string(), |s| s.to_string()),
        r.delta_links,
        r.snapshot_bytes,
        r.lazy_datasets,
        r.replayed_records,
        r.eager_ms,
        r.replay_ms,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let plan = chaos_plan(args.chaos_shard_permille);
    let service = match build_service(&args, plan.clone()) {
        Ok(service) => service,
        Err(msg) => {
            eprintln!("mileena-server: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let slow_log = (args.slow_search_ms > 0).then(|| {
        Arc::new(SlowSearchLog::new(
            args.slow_search_ms.saturating_mul(1_000_000),
            Box::new(std::io::stderr()),
        ))
    });
    let server_config = TcpServerConfig { slow_log: slow_log.clone(), ..Default::default() };
    let server = match TcpServer::bind(args.addr.as_str(), Arc::clone(&service), server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mileena-server: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Periodic Prometheus-style dump to stderr, when asked for.
    let stop_dumper = Arc::new(AtomicBool::new(false));
    let dumper = (args.metrics_interval > 0).then(|| {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop_dumper);
        let interval = Duration::from_secs(args.metrics_interval);
        std::thread::spawn(move || {
            // Tick in short slices so shutdown never waits a full interval.
            let slice = Duration::from_millis(50);
            let mut elapsed = Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(slice);
                elapsed += slice;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    if let Ok(report) = service.metrics() {
                        eprint!("{}", render_prometheus(&report));
                    }
                }
            }
        })
    });

    // Serve until the operator says stop: a "shutdown" line or stdin EOF
    // (so a dying supervisor takes the server down with it). A "metrics"
    // line dumps the current metrics to stdout, on demand.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(cmd) if cmd.trim() == "shutdown" => break,
            Ok(cmd) if cmd.trim() == "metrics" => {
                match service.metrics() {
                    Ok(report) => print!("{}", render_prometheus(&report)),
                    Err(e) => eprintln!("mileena-server: metrics: {e}"),
                }
                println!("# EOF");
                let _ = std::io::stdout().flush();
            }
            // Chaos drill control: flip the fault plan at runtime and ack
            // on stdout so harnesses can sequence around the change.
            Ok(cmd) if cmd.trim() == "chaos off" => {
                if let Some(plan) = &plan {
                    plan.disarm();
                }
                println!("chaos off");
                let _ = std::io::stdout().flush();
            }
            Ok(cmd) if cmd.trim() == "chaos on" => {
                if let Some(plan) = &plan {
                    plan.arm();
                }
                println!("chaos on");
                let _ = std::io::stdout().flush();
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    server.shutdown();
    stop_dumper.store(true, Ordering::SeqCst);
    if let Some(handle) = dumper {
        let _ = handle.join();
    }
    // In-flight work has drained; persist what the WAL holds so a reopen
    // starts from a snapshot instead of a long replay.
    if args.dir.is_some() {
        if let Err(e) = service.checkpoint() {
            eprintln!("mileena-server: final checkpoint failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(log) = &slow_log {
        log.flush();
        eprintln!("slow-search log: {} record(s)", log.logged());
    }
    println!("shutdown complete");
    ExitCode::SUCCESS
}
