#!/usr/bin/env bash
# Run the search-latency benchmark suite and snapshot its results as
# BENCH_search.json so successive PRs can track the perf trajectory.
#
# The in-tree criterion shim writes one JSON file per bench binary into
# $CRITERION_OUT_DIR ([{group, bench, mean_ns, samples, iters_per_sample}]).
# Tune measuring time with MILEENA_BENCH_MS (default 200 ms per benchmark).
set -euo pipefail
cd "$(dirname "$0")/.."

# Bench binaries run with the package directory as CWD: hand them an
# absolute output path so the snapshot lands at the workspace root.
out_dir="${CRITERION_OUT_DIR:-$PWD/target/criterion-mini}"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench search_latency "$@"

snapshot="$out_dir/search_latency.json"
if [[ ! -f "$snapshot" ]]; then
    echo "error: $snapshot not produced" >&2
    exit 1
fi
cp "$snapshot" BENCH_search.json
echo "wrote BENCH_search.json:"
cat BENCH_search.json
