#!/usr/bin/env bash
# Run the search-latency + cold-start benchmark suites and snapshot their
# merged results as BENCH_search.json so successive PRs can track the perf
# trajectory.
#
# The in-tree criterion shim writes one JSON file per bench binary into
# $CRITERION_OUT_DIR ([{group, bench, mean_ns, samples, iters_per_sample}]).
# Tune measuring time with MILEENA_BENCH_MS (default 200 ms per benchmark).
set -euo pipefail
cd "$(dirname "$0")/.."

# Bench binaries run with the package directory as CWD: hand them an
# absolute output path so the snapshot lands at the workspace root.
out_dir="${CRITERION_OUT_DIR:-$PWD/target/criterion-mini}"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench search_latency "$@"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench cold_start "$@"

for name in search_latency cold_start; do
    if [[ ! -f "$out_dir/$name.json" ]]; then
        echo "error: $out_dir/$name.json not produced" >&2
        exit 1
    fi
done
# Merge the two JSON arrays (shim output is one entry per line between
# the bracket lines).
{
    echo "["
    sed '1d;$d' "$out_dir/search_latency.json" | sed '$s/$/,/'
    sed '1d;$d' "$out_dir/cold_start.json"
    echo "]"
} > BENCH_search.json
echo "wrote BENCH_search.json:"
cat BENCH_search.json

# Derived service-layer throughput: the `service/concurrent_search/N` entry
# measures one batch of N parallel sessions, so searches/sec = N*1e9/mean_ns.
# Printed for the log (the raw entry is what lands in BENCH_search.json).
awk '
/"group": "service"/ && /"bench": "concurrent_search\// {
    n = $0; sub(/.*concurrent_search\//, "", n); sub(/".*/, "", n)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "service throughput: %.1f searches/sec at %d parallel requesters\n", n * 1e9 / m, n
}
/"group": "service"/ && /"bench": "search_serial\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "service baseline:   %.1f searches/sec serial\n", 1e9 / m
}
/"group": "cold_start"/ && /"bench": "open_snapshot\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m); snap = m
    printf "cold start (snapshot): %.1f ms\n", snap / 1e6
}
/"group": "cold_start"/ && /"bench": "resketch_raw\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "cold start (re-sketch baseline, 200-row toy providers): %.1f ms", m / 1e6
    if (snap > 0) printf "  (restore/re-sketch ratio %.2f)", snap / m
    printf "\n"
}
' BENCH_search.json
