#!/usr/bin/env bash
# Run the search-latency + cold-start + discovery-scale + overload
# benchmark suites and snapshot their merged results as BENCH_search.json
# so successive PRs can track the perf trajectory.
#
# The in-tree criterion shim writes one JSON file per bench binary into
# $CRITERION_OUT_DIR ([{group, bench, mean_ns, samples, iters_per_sample}]).
# Tuning:
#   MILEENA_BENCH_MS      measuring budget per benchmark (default 200 ms)
#   MILEENA_COLDSTART_MS  budget for the cold_start suite (default 1500 ms —
#                         restarts cost ~hundreds of ms each, so the default
#                         budget yields only 2 samples, far too noisy to
#                         trend; 1500 ms lands ≥5)
#   BENCH_OUT             output path (default BENCH_search.json at the
#                         workspace root; bench_compare.sh points it at a
#                         scratch file)
set -euo pipefail
cd "$(dirname "$0")/.."

# Bench binaries run with the package directory as CWD: hand them an
# absolute output path so the snapshot lands at the workspace root.
out_dir="${CRITERION_OUT_DIR:-$PWD/target/criterion-mini}"
bench_out="${BENCH_OUT:-BENCH_search.json}"
mkdir -p "$(dirname "$bench_out")"
coldstart_ms="${MILEENA_COLDSTART_MS:-1500}"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench search_latency "$@"
CRITERION_OUT_DIR="$out_dir" MILEENA_BENCH_MS="$coldstart_ms" \
    cargo bench -p mileena-bench --bench cold_start "$@"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench discovery_scale "$@"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench overload "$@"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench traffic "$@"
CRITERION_OUT_DIR="$out_dir" cargo bench -p mileena-bench --bench telemetry_overhead "$@"

for name in search_latency cold_start discovery_scale overload traffic telemetry_overhead; do
    if [[ ! -f "$out_dir/$name.json" ]]; then
        echo "error: $out_dir/$name.json not produced" >&2
        exit 1
    fi
done
# Merge the JSON arrays (shim output is one entry per line between the
# bracket lines).
{
    echo "["
    sed '1d;$d' "$out_dir/search_latency.json" | sed '$s/$/,/'
    sed '1d;$d' "$out_dir/cold_start.json" | sed '$s/$/,/'
    sed '1d;$d' "$out_dir/discovery_scale.json" | sed '$s/$/,/'
    sed '1d;$d' "$out_dir/overload.json" | sed '$s/$/,/'
    sed '1d;$d' "$out_dir/traffic.json" | sed '$s/$/,/'
    sed '1d;$d' "$out_dir/telemetry_overhead.json"
    echo "]"
} > "$bench_out"
echo "wrote $bench_out:"
cat "$bench_out"

# Derived service-layer throughput: the `service/concurrent_search/N` entry
# measures one batch of N parallel sessions, so searches/sec = N*1e9/mean_ns.
# Printed for the log (the raw entry is what lands in the snapshot).
awk '
/"group": "service"/ && /"bench": "concurrent_search\// {
    n = $0; sub(/.*concurrent_search\//, "", n); sub(/".*/, "", n)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "service throughput: %.1f searches/sec at %d parallel requesters\n", n * 1e9 / m, n
}
/"group": "service"/ && /"bench": "search_serial\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "service baseline:   %.1f searches/sec serial\n", 1e9 / m
}
/"group": "cold_start"/ && /"bench": "open_snapshot\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m); snap = m
    printf "cold start (snapshot): %.1f ms\n", snap / 1e6
}
/"group": "cold_start"/ && /"bench": "first_search\// {
    n = $0; sub(/.*first_search\//, "", n); sub(/".*/, "", n)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    fs[n + 0] = m
    printf "cold start (time-to-first-search, %d-dataset registry): %.1f ms  (%.1f µs/dataset)\n", n, m / 1e6, m / 1e3 / n
}
/"group": "cold_start"/ && /"bench": "resketch_raw\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "cold start (re-sketch baseline, 200-row toy providers): %.1f ms", m / 1e6
    if (snap > 0) printf "  (restore/re-sketch ratio %.2f)", snap / m
    printf "\n"
}
/"bench": "pruned_round\// {
    g = $0; sub(/.*"group": "/, "", g); sub(/".*/, "", g)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "%s pruned round: %.2f ms\n", g, m / 1e6
}
/"group": "overload"/ && /"bench": "typed_shed\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "overload shed fast path: %.1f µs to a typed Overloaded reply\n", m / 1e3
}
/"group": "overload"/ && /"bench": "burst_retry\// {
    n = $0; sub(/.*burst_retry\//, "", n); sub(/".*/, "", n)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "overload burst drain: %.1f ms for %d sessions with shed-and-retry\n", m / 1e6, n
}
/"group": "traffic"/ && /"bench": "tcp_search_serial\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "tcp serial:         %.1f searches/sec over one pooled connection\n", 1e9 / m
}
/"group": "traffic"/ && /"bench": "concurrent_tcp\// {
    n = $0; sub(/.*concurrent_tcp\//, "", n); sub(/".*/, "", n)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "tcp throughput:     %.1f searches/sec at %d concurrent connections\n", n * 1e9 / m, n
}
/"group": "traffic"/ && /"bench": "degraded_search\// {
    n = $0; sub(/.*degraded_search\//, "", n); sub(/".*/, "", n)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    printf "degraded search:    %.1f searches/sec at %d connections with a latency-bombed shard (hedged deadlines)\n", n * 1e9 / m, n
}
/"group": "telemetry"/ && /"bench": "search_instrumented\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m); tele_on = m
}
/"group": "telemetry"/ && /"bench": "search_disabled\// {
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m); tele_off = m
}
/"group": "discovery_20k"/ {
    b = $0; sub(/.*"bench": "/, "", b); sub(/".*/, "", b)
    m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
    if (b == "join_candidates") { dj = m }
    if (b == "union_candidates") { du = m }
    if (b == "join_candidates_linear") { lj = m }
    if (b == "union_candidates_linear") { lu = m }
}
END {
    if (tele_on > 0 && tele_off > 0) {
        printf "telemetry overhead: %+.2f%% (instrumented %.2f ms vs disabled %.2f ms; budget <3%%)\n",
            (tele_on / tele_off - 1.0) * 100.0, tele_on / 1e6, tele_off / 1e6
    }
    if (fs[500] > 0 && fs[20000] > 0) {
        printf "cold start scaling: 40x registry (500 -> 20k) costs %.1fx time-to-first-search\n",
            fs[20000] / fs[500]
    }
    if (dj > 0 && du > 0) {
        printf "discovery @20k (join+union query): %.3f ms indexed", (dj + du) / 1e6
        if (lj > 0 && lu > 0) printf "  vs %.1f ms linear (%.0fx)", (lj + lu) / 1e6, (lj + lu) / (dj + du)
        printf "\n"
    }
}
' "$bench_out"
