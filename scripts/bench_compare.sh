#!/usr/bin/env bash
# Informational perf gate: take a fresh benchmark snapshot and diff it
# against the committed BENCH_search.json, flagging any (group, bench)
# entry whose mean regressed by more than the threshold.
#
#   ./scripts/bench_compare.sh            # report, always exit 0
#   ./scripts/bench_compare.sh --strict   # exit 1 when a regression is found
#
# Tuning:
#   BENCH_REGRESSION_PCT  flag threshold, percent (default 15)
#   BENCH_BASELINE        committed snapshot to compare against
#                         (default BENCH_search.json)
#   BENCH_FRESH           reuse an existing fresh snapshot instead of
#                         re-running the benches (useful in CI pipelines
#                         that already called bench_snapshot.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

strict=0
for arg in "$@"; do
    case "$arg" in
        --strict) strict=1 ;;
        *) echo "usage: $0 [--strict]" >&2; exit 2 ;;
    esac
done

threshold="${BENCH_REGRESSION_PCT:-15}"
baseline="${BENCH_BASELINE:-BENCH_search.json}"
if [[ ! -f "$baseline" ]]; then
    echo "error: baseline $baseline not found" >&2
    exit 2
fi

fresh="${BENCH_FRESH:-}"
if [[ -z "$fresh" ]]; then
    fresh="target/bench-compare/BENCH_fresh.json"
    mkdir -p "$(dirname "$fresh")"
    BENCH_OUT="$fresh" ./scripts/bench_snapshot.sh >/dev/null
fi
if [[ ! -f "$fresh" ]]; then
    echo "error: fresh snapshot $fresh not found" >&2
    exit 2
fi

# Flatten one snapshot into "group/bench mean_ns" lines.
flatten() {
    awk '
    /"group":/ {
        g = $0; sub(/.*"group": "/, "", g); sub(/".*/, "", g)
        b = $0; sub(/.*"bench": "/, "", b); sub(/".*/, "", b)
        m = $0; sub(/.*"mean_ns": /, "", m); sub(/,.*/, "", m)
        print g "/" b, m
    }' "$1"
}

echo "comparing $fresh against $baseline (threshold ${threshold}%)"
regressions=$(
    join <(flatten "$baseline" | sort) <(flatten "$fresh" | sort) |
    awk -v thr="$threshold" '
    {
        base = $2; now = $3
        delta = (now - base) / base * 100.0
        status = "ok"
        if (delta > thr) { status = "REGRESSED"; bad++ }
        else if (delta < -thr) { status = "improved" }
        printf "%-55s %12.0f -> %12.0f ns  %+7.1f%%  %s\n", $1, base, now, delta, status
    }
    END { exit bad > 0 ? 1 : 0 }
'
) && rc=0 || rc=$?
echo "$regressions"

new_entries=$(comm -13 <(flatten "$baseline" | cut -d' ' -f1 | sort) \
                       <(flatten "$fresh" | cut -d' ' -f1 | sort))
if [[ -n "$new_entries" ]]; then
    echo "new entries (no baseline): "
    echo "$new_entries" | sed 's/^/  /'
fi

if [[ $rc -ne 0 ]]; then
    echo "perf: at least one group regressed >${threshold}% (informational)"
    [[ $strict -eq 1 ]] && exit 1
fi
exit 0
