#!/usr/bin/env bash
# CI smoke test for the mileena-server binary: boot it on loopback, drive
# a registration + search through the TCP client, and assert a clean
# graceful shutdown (exit code 0).
#
# Three passes:
#   1. A bare boot/shutdown cycle of the release binary — the "listening
#      on <addr>" banner must appear, the "metrics" stdin command must
#      answer with a Prometheus-style dump carrying the core series and a
#      "# EOF" terminator, "shutdown" on stdin must drain and print
#      "shutdown complete", and the process must exit 0.
#   2. The end-to-end pass through the real binary: register + search over
#      TCP, a hard kill, bit-identical recovery from the WAL, then a
#      reboot from the binary snapshot with the background hydrator held
#      off (MILEENA_NO_BG_HYDRATION=1) proving a correct search is served
#      *before* full sketch hydration completes — reusing the integration
#      test that already spawns the binary via CARGO_BIN_EXE, in release
#      mode.
#   3. The telemetry pass: boot with --slow-search-ms 1, drive a search
#      tagged with wire request_id 0xBEEF (48879), scrape the metrics dump
#      for non-zero search/series counts, and assert the slow-search JSONL
#      log correlates the same request_id.
#   4. The shard-kill drill: boot a 3-shard durable binary with the
#      deterministic shard-call fault plan armed (--chaos-shard-permille,
#      seeded via MILEENA_CHAOS_SEEDS), assert a strict search fails with
#      the typed shard error, a degraded_ok search answers labeled with
#      its missing-shard list, and after "chaos off" the supervised
#      recovery path reopens the quarantined shards from their WALs and a
#      strict search serves complete, bit-identical results.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin mileena-server

coproc SRV { ./target/release/mileena-server --addr 127.0.0.1:0; }
read -r banner <&"${SRV[0]}"
case "$banner" in
    "listening on "*) echo "boot ok: $banner" ;;
    *)
        echo "error: unexpected server banner: $banner" >&2
        exit 1
        ;;
esac

# On-demand metrics dump: the registry renders even before any traffic,
# so the core series must be present (zero-valued) and EOF-terminated.
echo metrics >&"${SRV[1]}"
dump=""
while read -r line <&"${SRV[0]}"; do
    [[ "$line" == "# EOF" ]] && break
    dump+="$line"$'\n'
done
for series in \
    "mileena_searches_completed" \
    "mileena_net_connections" \
    "# TYPE mileena_search_total_seconds summary" \
    "mileena_search_queue_wait_seconds_count"; do
    if ! grep -qF "$series" <<<"$dump"; then
        echo "error: metrics dump missing series: $series" >&2
        printf '%s' "$dump" >&2
        exit 1
    fi
done
echo "metrics dump ok ($(grep -c '^mileena_' <<<"$dump") sample lines)"

echo shutdown >&"${SRV[1]}"
read -r bye <&"${SRV[0]}"
if [[ "$bye" != "shutdown complete" ]]; then
    echo "error: missing shutdown banner, got: $bye" >&2
    exit 1
fi
wait "$SRV_PID" # non-zero exit fails the script via `set -e`
echo "graceful shutdown ok (exit 0)"

cargo test --release -q --test tcp_server \
    server_binary_survives_kill_and_recovers_bit_identically
echo "kill/recover ok (bit-identical, search served before full hydration)"

# Telemetry end to end: non-zero metrics after traffic, slow-search log
# correlated by the wire request_id (0xBEEF = 48879; the test prints the
# matched JSONL record via --nocapture so it lands in the CI log).
cargo test --release -q --test telemetry \
    server_binary_serves_metrics_dump_and_slow_search_log -- --nocapture
echo "telemetry smoke ok (request_id 48879 correlated in slow-search log)"

# Shard-kill drill against the real binary: degraded search labels
# itself under the armed fault plan, and recovery serves a complete,
# bit-identical search once the storm passes.
MILEENA_CHAOS_SEEDS="${MILEENA_CHAOS_SEEDS:-11}" \
cargo test --release -q --test tcp_server \
    server_binary_shard_kill_drill_degrades_then_recovers
echo "shard-kill drill ok (degraded labeled, recovery bit-identical)"

echo "server smoke passed"
