#!/usr/bin/env bash
# CI smoke test for the mileena-server binary: boot it on loopback, drive
# a registration + search through the TCP client, and assert a clean
# graceful shutdown (exit code 0).
#
# Two passes:
#   1. A bare boot/shutdown cycle of the release binary — the "listening
#      on <addr>" banner must appear, "shutdown" on stdin must drain and
#      print "shutdown complete", and the process must exit 0.
#   2. The end-to-end pass through the real binary: register + search over
#      TCP, a hard kill, bit-identical recovery from the WAL, then a
#      graceful shutdown — reusing the integration test that already
#      spawns the binary via CARGO_BIN_EXE, in release mode.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin mileena-server

coproc SRV { ./target/release/mileena-server --addr 127.0.0.1:0; }
read -r banner <&"${SRV[0]}"
case "$banner" in
    "listening on "*) echo "boot ok: $banner" ;;
    *)
        echo "error: unexpected server banner: $banner" >&2
        exit 1
        ;;
esac
echo shutdown >&"${SRV[1]}"
read -r bye <&"${SRV[0]}"
if [[ "$bye" != "shutdown complete" ]]; then
    echo "error: missing shutdown banner, got: $bye" >&2
    exit 1
fi
wait "$SRV_PID" # non-zero exit fails the script via `set -e`
echo "graceful shutdown ok (exit 0)"

cargo test --release -q --test tcp_server \
    server_binary_survives_kill_and_recovers_bit_identically

echo "server smoke passed"
